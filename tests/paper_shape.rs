//! The paper's headline qualitative results, asserted at a moderate scale.
//!
//! These are *shape* checks, not absolute-number checks (DESIGN.md,
//! "Calibration stance"): orderings and rough factors that must hold for
//! the reproduction to be faithful.

use dimm_link::config::{IdcKind, PollingStrategy, SyncScheme, SystemConfig};
use dimm_link::runner::{host_baseline, simulate};
use dl_noc::TopologyKind;
use dl_workloads::{synth, WorkloadKind, WorkloadParams};

fn params16(scale: u32) -> WorkloadParams {
    WorkloadParams {
        scale,
        ..WorkloadParams::small(16)
    }
}

/// Fig. 10: on IDC-heavy graph workloads at 16D-8C, DIMM-Link beats AIM
/// beats MCN, and DIMM-Link beats the 16-core host.
#[test]
fn fig10_shape_graph_workloads() {
    for kind in [WorkloadKind::Pagerank, WorkloadKind::Sssp] {
        let wl = kind.build(&params16(11));
        let host = host_baseline(kind, 11, 42).elapsed;
        let dl = simulate(&wl, &SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink)).elapsed;
        let aim = simulate(
            &wl,
            &SystemConfig::nmp(16, 8).with_idc(IdcKind::DedicatedBus),
        )
        .elapsed;
        let mcn = simulate(
            &wl,
            &SystemConfig::nmp(16, 8).with_idc(IdcKind::CpuForwarding),
        )
        .elapsed;
        assert!(dl < aim, "{kind}: DL {dl} !< AIM {aim}");
        assert!(aim < mcn, "{kind}: AIM {aim} !< MCN {mcn}");
        assert!(dl < host, "{kind}: DL {dl} !< host {host}");
    }
}

/// Fig. 12: broadcast ordering — DIMM-Link beats ABC-DIMM beats MCN-BC;
/// the idealized AIM-BC is fastest.
#[test]
fn fig12_shape_broadcast() {
    let params = WorkloadParams {
        scale: 10,
        broadcast: true,
        ..WorkloadParams::small(16)
    };
    let wl = WorkloadKind::Pagerank.build(&params);
    let mcn = simulate(
        &wl,
        &SystemConfig::nmp(16, 8).with_idc(IdcKind::CpuForwarding),
    )
    .elapsed;
    let abc = simulate(&wl, &SystemConfig::nmp(16, 8).with_idc(IdcKind::AbcDimm)).elapsed;
    let dl = simulate(&wl, &SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink)).elapsed;
    let aim = simulate(
        &wl,
        &SystemConfig::nmp(16, 8).with_idc(IdcKind::DedicatedBus),
    )
    .elapsed;
    assert!(dl < abc, "DL {dl} !< ABC {abc}");
    assert!(abc < mcn, "ABC {abc} !< MCN {mcn}");
    // The idealized single-transaction AIM-BC is at least competitive with
    // DIMM-Link (the paper shows it ahead; our AIM also pays central-sync
    // serialization, which can bring the two within a few percent).
    assert!(
        aim.as_ps() as f64 <= dl.as_ps() as f64 * 1.1,
        "idealized AIM-BC {aim} should be within 10% of DL {dl}"
    );
}

/// Fig. 13: MCN burns more energy than DIMM-Link on IDC-heavy work.
#[test]
fn fig13_shape_energy() {
    let wl = WorkloadKind::Sssp.build(&params16(10));
    let dl = simulate(&wl, &SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink));
    let mcn = simulate(
        &wl,
        &SystemConfig::nmp(16, 8).with_idc(IdcKind::CpuForwarding),
    );
    assert!(
        mcn.energy.total() > dl.energy.total(),
        "MCN {} J !> DL {} J",
        mcn.energy.total(),
        dl.energy.total()
    );
}

/// Fig. 14-a: hierarchical synchronization beats the baselines, and the gap
/// widens as the synchronization interval shrinks.
#[test]
fn fig14_shape_sync() {
    let run = |interval: u32, cfg: &SystemConfig| {
        let params = params16(8);
        let wl = synth::sync_sweep(&params, interval, 60);
        simulate(&wl, cfg).elapsed.as_ps() as f64
    };
    let hier = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
    let mcn = SystemConfig::nmp(16, 8).with_idc(IdcKind::CpuForwarding);

    let tight = run(500, &mcn) / run(500, &hier);
    let loose = run(10_000, &mcn) / run(10_000, &hier);
    assert!(
        tight > 1.5,
        "hier should clearly win at tight intervals: {tight:.2}"
    );
    assert!(
        tight > loose,
        "gap must widen as sync gets denser: {tight:.2} vs {loose:.2}"
    );

    // Hierarchical vs central on the same hardware.
    let mut central = hier.clone();
    central.sync = SyncScheme::Central;
    let ratio = run(500, &central) / run(500, &hier);
    assert!(ratio > 1.0, "hierarchical !> central: {ratio:.2}");
}

/// Fig. 15-b: bus-occupation ordering Base > Proxy > Proxy+Interrupt.
#[test]
fn fig15_shape_polling_occupancy() {
    let wl = WorkloadKind::Sssp.build(&params16(9));
    let occ = |strat: PollingStrategy| {
        let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
        cfg.polling = strat;
        simulate(&wl, &cfg).bus_occupancy()
    };
    let base = occ(PollingStrategy::Base);
    let proxy = occ(PollingStrategy::Proxy);
    let proxy_itr = occ(PollingStrategy::ProxyInterrupt);
    assert!(base > 0.25, "base polling should occupy ~30%: {base:.3}");
    assert!(proxy < base / 2.0, "proxy {proxy:.3} !<< base {base:.3}");
    assert!(
        proxy_itr < proxy,
        "proxy+itrpt {proxy_itr:.3} !< proxy {proxy:.3}"
    );
}

/// Fig. 16: more link bandwidth helps, monotonically, and more at 16D than
/// at 4D.
#[test]
fn fig16_shape_bandwidth() {
    let run = |dimms: usize, channels: usize, gb: u64| {
        let params = WorkloadParams {
            scale: 10,
            ..WorkloadParams::small(dimms)
        };
        let wl = WorkloadKind::Pagerank.build(&params);
        let mut cfg = SystemConfig::nmp(dimms, channels).with_idc(IdcKind::DimmLink);
        cfg.link = cfg.link.with_bandwidth(gb * 1_000_000_000);
        simulate(&wl, &cfg).elapsed.as_ps() as f64
    };
    let gain16 = run(16, 8, 4) / run(16, 8, 64);
    let gain4 = run(4, 2, 4) / run(4, 2, 64);
    assert!(gain16 > 1.0, "bandwidth should help at 16D: {gain16:.2}");
    assert!(
        gain16 > gain4,
        "bandwidth should help more at 16D ({gain16:.2}) than 4D ({gain4:.2})"
    );
}

/// Fig. 17: richer topologies beat the chain on P2P-heavy work.
#[test]
fn fig17_shape_topology() {
    let wl = WorkloadKind::Pagerank.build(&params16(10));
    let run = |topo: TopologyKind| {
        let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
        cfg.topology = topo;
        simulate(&wl, &cfg).elapsed.as_ps() as f64
    };
    let chain = run(TopologyKind::Chain);
    let torus = run(TopologyKind::Torus);
    // At this scale the two are close enough that scheduling noise from the
    // workload's RNG stream can put torus a percent or two behind; the shape
    // claim is that torus does not lose *materially* to chain.
    assert!(
        torus <= chain * 1.05,
        "torus ({torus}) should not materially lose to chain ({chain})"
    );
}
