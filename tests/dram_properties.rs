//! Property-based tests of the DDR4 memory-controller model.

use dl_engine::Ps;
use dl_mem::{AccessKind, DimmAddressMap, DramConfig, MemController, MemRequest};
use proptest::prelude::*;

fn drain(mc: &mut MemController, n: usize) -> Vec<dl_mem::Completion> {
    let mut done = mc.service(Ps::ZERO);
    let mut guard = 0;
    while done.len() < n {
        let now = mc.next_wake().expect("work pending but controller idle");
        done.extend(mc.service(now));
        guard += 1;
        assert!(guard < 10_000_000, "runaway drain");
    }
    done
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request completes exactly once, regardless of the mix.
    #[test]
    fn conservation(
        offsets in prop::collection::vec(0u64..(1 << 24), 1..120),
        write_mask in any::<u64>(),
    ) {
        let cfg = DramConfig::ddr4_2400_lrdimm();
        let map = DimmAddressMap::new(&cfg);
        let mut mc = MemController::new("p", &cfg);
        for (i, &off) in offsets.iter().enumerate() {
            let kind = if (write_mask >> (i % 64)) & 1 == 1 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            mc.enqueue(Ps::ZERO, MemRequest::new(i as u64, kind, map.decode(off * 64)));
        }
        let done = drain(&mut mc, offsets.len());
        let mut ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), offsets.len(), "lost or duplicated completions");
        prop_assert_eq!(mc.inflight(), 0);
        prop_assert_eq!(mc.reads() + mc.writes(), offsets.len() as u64);
    }

    /// Latency lower bound: nothing completes faster than a row-hit read.
    #[test]
    fn latency_lower_bound(offsets in prop::collection::vec(0u64..(1 << 20), 1..60)) {
        let cfg = DramConfig::ddr4_2400_lrdimm();
        let t = cfg.timing;
        let map = DimmAddressMap::new(&cfg);
        let mut mc = MemController::new("p", &cfg);
        for (i, &off) in offsets.iter().enumerate() {
            mc.enqueue(Ps::ZERO, MemRequest::new(i as u64, AccessKind::Read, map.decode(off * 64)));
        }
        let done = drain(&mut mc, offsets.len());
        // CL + BL is the absolute floor (an open-row CAS).
        let floor = t.t(t.cl + t.bl);
        for c in &done {
            prop_assert!(c.at >= floor, "completion {} under the CAS floor {}", c.at, floor);
        }
    }

    /// Throughput upper bound: data cannot exceed the aggregate rank
    /// bandwidth.
    #[test]
    fn bandwidth_upper_bound(seed in any::<u64>(), n in 32usize..200) {
        let cfg = DramConfig::ddr4_2400_lrdimm();
        let map = DimmAddressMap::new(&cfg);
        let mut rng = dl_engine::DetRng::seed(seed);
        let mut mc = MemController::new("p", &cfg);
        for i in 0..n {
            let off = rng.below(1 << 22) * 64;
            mc.enqueue(Ps::ZERO, MemRequest::new(i as u64, AccessKind::Read, map.decode(off)));
        }
        let done = drain(&mut mc, n);
        let end = done.iter().map(|c| c.at).max().unwrap();
        let bytes = 64 * n as u64;
        let peak = cfg.timing.peak_bandwidth(64) as f64 * cfg.ranks as f64;
        let achieved = bytes as f64 / end.as_secs_f64();
        prop_assert!(
            achieved <= peak * 1.001,
            "achieved {achieved:.2e} B/s exceeds aggregate peak {peak:.2e}"
        );
    }

    /// The address map is a bijection at line granularity.
    #[test]
    fn address_map_bijective(offsets in prop::collection::vec(0u64..(1u64 << 33), 1..200)) {
        let cfg = DramConfig::ddr4_2400_lrdimm();
        let map = DimmAddressMap::new(&cfg);
        for &off in &offsets {
            let line = (off / 64) * 64 % map.capacity_bytes();
            let a = map.decode(line);
            prop_assert_eq!(map.encode(a), line);
        }
    }
}
