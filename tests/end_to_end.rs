//! Cross-crate integration tests: full-system runs over every workload and
//! IDC mechanism, checking structural invariants and determinism.

use dimm_link::config::{IdcKind, SystemConfig};
use dimm_link::runner::{host_baseline, simulate, simulate_optimized};
use dl_engine::Ps;
use dl_workloads::{WorkloadKind, WorkloadParams};

const ALL_IDC: [IdcKind; 4] = [
    IdcKind::CpuForwarding,
    IdcKind::DedicatedBus,
    IdcKind::AbcDimm,
    IdcKind::DimmLink,
];

fn small_params(dimms: usize) -> WorkloadParams {
    WorkloadParams {
        scale: 8,
        ..WorkloadParams::small(dimms)
    }
}

#[test]
fn every_workload_runs_on_every_mechanism() {
    let params = small_params(8);
    for kind in WorkloadKind::P2P_SET {
        let wl = kind.build(&params);
        for idc in ALL_IDC {
            let cfg = SystemConfig::nmp(8, 4).with_idc(idc);
            let r = simulate(&wl, &cfg);
            assert!(r.elapsed > Ps::ZERO, "{kind}/{idc}");
            assert!(r.energy.total() > 0.0, "{kind}/{idc}");
            // Stall fractions are fractions.
            for key in ["idc_stall_frac", "mem_stall_frac", "sync_stall_frac"] {
                let v = r.stats.get(key).unwrap();
                assert!((0.0..=1.0).contains(&v), "{kind}/{idc}: {key}={v}");
            }
        }
    }
}

#[test]
fn simulations_are_deterministic() {
    let params = small_params(8);
    let wl = WorkloadKind::Sssp.build(&params);
    let cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
    let a = simulate(&wl, &cfg);
    let b = simulate(&wl, &cfg);
    assert_eq!(a.elapsed, b.elapsed);
    assert_eq!(a.stats.get("remote_reads"), b.stats.get("remote_reads"));
    assert_eq!(a.stats.get("dram.activates"), b.stats.get("dram.activates"));
}

#[test]
fn traffic_conservation_remote_ops_mean_remote_bytes() {
    let params = small_params(8);
    let wl = WorkloadKind::Pagerank.build(&params);
    for idc in ALL_IDC {
        let cfg = SystemConfig::nmp(8, 4).with_idc(idc);
        let r = simulate(&wl, &cfg);
        let remote = r.stats.get("remote_reads").unwrap() + r.stats.get("remote_writes").unwrap();
        let idc_bytes = r.stats.get("traffic.link_bytes").unwrap()
            + r.stats.get("traffic.fwd_bytes").unwrap()
            + r.stats.get("traffic.bus_bytes").unwrap();
        if remote > 0.0 {
            // Every remote operation puts at least one flit on some medium.
            assert!(
                idc_bytes >= remote * 16.0,
                "{idc}: {idc_bytes} bytes for {remote} ops"
            );
        }
    }
}

#[test]
fn mechanisms_route_on_their_own_media() {
    let params = small_params(8);
    let wl = WorkloadKind::Sssp.build(&params);
    // MCN: everything host-forwarded, nothing on links or bus.
    let mcn = simulate(
        &wl,
        &SystemConfig::nmp(8, 4).with_idc(IdcKind::CpuForwarding),
    );
    assert_eq!(mcn.stats.get("traffic.link_bytes"), Some(0.0));
    assert_eq!(mcn.stats.get("traffic.bus_bytes"), Some(0.0));
    assert!(mcn.stats.get("traffic.fwd_bytes").unwrap() > 0.0);
    // AIM: everything on the bus, no host forwarding.
    let aim = simulate(
        &wl,
        &SystemConfig::nmp(8, 4).with_idc(IdcKind::DedicatedBus),
    );
    assert_eq!(aim.stats.get("traffic.fwd_bytes"), Some(0.0));
    assert!(aim.stats.get("traffic.bus_bytes").unwrap() > 0.0);
    assert_eq!(aim.stats.get("host.fwd_packets"), Some(0.0));
    // DIMM-Link at two groups: links carry intra-group, host carries
    // inter-group.
    let dl = simulate(&wl, &SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink));
    assert!(dl.stats.get("traffic.link_bytes").unwrap() > 0.0);
    assert!(dl.stats.get("traffic.fwd_bytes").unwrap() > 0.0);
    assert_eq!(dl.stats.get("traffic.bus_bytes"), Some(0.0));
}

#[test]
fn single_group_dimm_link_never_touches_the_host() {
    let params = small_params(4);
    let wl = WorkloadKind::Pagerank.build(&params);
    let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink); // one group
    let r = simulate(&wl, &cfg);
    assert_eq!(r.stats.get("host.fwd_packets"), Some(0.0));
    assert_eq!(r.stats.get("traffic.fwd_bytes"), Some(0.0));
}

#[test]
fn optimized_placement_never_deadlocks_and_profiles() {
    let params = small_params(8);
    for kind in [
        WorkloadKind::Bfs,
        WorkloadKind::KMeans,
        WorkloadKind::Hotspot,
    ] {
        let wl = kind.build(&params);
        let cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
        let r = simulate_optimized(&wl, &cfg);
        assert!(r.profiling > Ps::ZERO, "{kind}");
        assert!(r.elapsed > r.profiling, "{kind}");
    }
}

#[test]
fn host_baseline_is_workload_sensitive_and_deterministic() {
    let a = host_baseline(WorkloadKind::Pagerank, 8, 42);
    let b = host_baseline(WorkloadKind::Pagerank, 8, 42);
    assert_eq!(a.elapsed, b.elapsed);
    let c = host_baseline(WorkloadKind::Bfs, 8, 42);
    assert_ne!(a.elapsed, c.elapsed);
}

#[test]
fn broadcast_workloads_run_end_to_end_on_all_mechanisms() {
    let params = WorkloadParams {
        scale: 8,
        broadcast: true,
        ..WorkloadParams::small(8)
    };
    for kind in WorkloadKind::BROADCAST_SET {
        let wl = kind.build(&params);
        for idc in ALL_IDC {
            let cfg = SystemConfig::nmp(8, 4).with_idc(idc);
            let r = simulate(&wl, &cfg);
            assert!(r.elapsed > Ps::ZERO, "{kind}-BC/{idc}");
        }
    }
}

#[test]
fn bigger_systems_do_not_slow_down_scalable_mechanisms() {
    // DIMM-Link end-to-end time should not grow when going 4 -> 16 DIMMs
    // on an embarrassingly parallel workload of fixed total size (large
    // enough that per-thread fixed costs amortize).
    let kind = WorkloadKind::KMeans;
    let params = |dimms| WorkloadParams {
        scale: 11,
        ..WorkloadParams::small(dimms)
    };
    let t4 = {
        let wl = kind.build(&params(4));
        simulate(&wl, &SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink)).elapsed
    };
    let t16 = {
        let wl = kind.build(&params(16));
        simulate(&wl, &SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink)).elapsed
    };
    assert!(
        t16 < t4,
        "16 DIMMs ({t16}) should beat 4 DIMMs ({t4}) on fixed total work"
    );
}
