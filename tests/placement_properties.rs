//! Property-based tests of Algorithm 1's min-cost max-flow thread placement.

use dl_placement::{place_threads, place_threads_brute_force, AccessProfile, MinCostFlow};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The flow solver matches an exhaustive search on small instances.
    #[test]
    fn placement_is_optimal(
        threads in 1usize..6,
        dimms in 2usize..5,
        cap in 1usize..3,
        counts in prop::collection::vec(0u64..1000, 30),
    ) {
        prop_assume!(threads <= dimms * cap);
        let mut m = AccessProfile::new(threads, dimms);
        let mut it = counts.into_iter().cycle();
        for t in 0..threads {
            for d in 0..dimms {
                m.record(t, d, it.next().unwrap());
            }
        }
        let dist: Vec<Vec<u64>> = (0..dimms)
            .map(|j| (0..dimms).map(|k| j.abs_diff(k) as u64).collect())
            .collect();
        let fast = place_threads(&m, &dist, cap).unwrap();
        let slow = place_threads_brute_force(&m, &dist, cap).unwrap();
        prop_assert_eq!(fast.total_cost(), slow.total_cost());
    }

    /// Capacity constraints always hold and every thread is placed.
    #[test]
    fn placement_respects_capacity(
        threads in 1usize..20,
        dimms in 1usize..8,
        cap in 1usize..5,
        seed in any::<u64>(),
    ) {
        prop_assume!(threads <= dimms * cap);
        let mut rng = dl_engine::DetRng::seed(seed);
        let mut m = AccessProfile::new(threads, dimms);
        for t in 0..threads {
            for d in 0..dimms {
                m.record(t, d, rng.below(10_000));
            }
        }
        let dist: Vec<Vec<u64>> = (0..dimms)
            .map(|j| (0..dimms).map(|k| j.abs_diff(k) as u64).collect())
            .collect();
        let p = place_threads(&m, &dist, cap).unwrap();
        prop_assert_eq!(p.assignment().len(), threads);
        for d in 0..dimms {
            prop_assert!(p.threads_on(d).len() <= cap, "DIMM {d} over capacity");
        }
        // The reported cost matches the assignment.
        let c = m.cost_table(&dist);
        let manual: u64 = p.assignment().iter().enumerate().map(|(t, &d)| c[t][d]).sum();
        prop_assert_eq!(manual, p.total_cost());
    }

    /// Max-flow never exceeds cut capacities on random bipartite instances.
    #[test]
    fn mcmf_flow_conservation(
        caps in prop::collection::vec(1i64..10, 2..6),
        costs in prop::collection::vec(0i64..100, 2..6),
    ) {
        let n = caps.len().min(costs.len());
        // source(0) -> middle(1..=n) -> sink(n+1)
        let mut g = MinCostFlow::new(n + 2);
        let mut edges = Vec::new();
        for i in 0..n {
            g.add_edge(0, 1 + i, caps[i], 0);
            edges.push(g.add_edge(1 + i, n + 1, caps[i], costs[i]));
        }
        let (flow, cost) = g.solve(0, n + 1);
        let total_cap: i64 = caps[..n].iter().sum();
        prop_assert_eq!(flow, total_cap);
        let manual: i64 = (0..n).map(|i| g.flow_on(edges[i]) * costs[i]).sum();
        prop_assert_eq!(cost, manual);
    }
}
