//! Property-based tests of the DIMM-Link protocol stack (transaction-layer
//! codec and data-link layer) — invariants the FPGA prototype of the paper's
//! Section V-A validates in hardware.

use dl_protocol::{crc32, DimmId, DlCommand, DllEndpoint, DllEvent, Packet, PacketHeader};
use proptest::prelude::*;

fn arb_command() -> impl Strategy<Value = DlCommand> {
    prop_oneof![
        Just(DlCommand::ReadReq),
        Just(DlCommand::ReadResp),
        Just(DlCommand::WriteReq),
        Just(DlCommand::WriteResp),
        Just(DlCommand::Broadcast),
        Just(DlCommand::Sync),
        Just(DlCommand::FwdRegister),
        Just(DlCommand::Atomic),
        Just(DlCommand::AtomicResp),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u8..32,
        0u8..32,
        arb_command(),
        0u64..(1 << 37),
        any::<u8>(),
        prop::collection::vec(any::<u8>(), 0..=16), // payload in flit units
    )
        .prop_map(|(src, dst, cmd, addr, tag, units)| {
            // Flit-aligned payloads up to 256 bytes (the function layer's
            // contract with the codec: pad to 16-byte flits).
            let mut payload = Vec::new();
            for u in units {
                payload.extend_from_slice(&[u; 16]);
            }
            let header = PacketHeader::new(DimmId(src), DimmId(dst), cmd, addr, tag)
                .expect("fields in range");
            Packet::with_payload(header, payload).expect("payload <= 256")
        })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(pkt in arb_packet()) {
        let flits = pkt.encode();
        prop_assert_eq!(flits.len(), pkt.flit_count());
        let decoded = Packet::decode(&flits).expect("self-encoded packet decodes");
        prop_assert_eq!(decoded, pkt);
    }

    #[test]
    fn wire_size_is_flit_aligned_and_minimal(pkt in arb_packet()) {
        let bytes = pkt.wire_bytes();
        prop_assert_eq!(bytes % 16, 0);
        // header(8) + payload + tail(8), rounded up to one flit.
        let lower = (8 + pkt.payload.len() as u64 + 8).div_ceil(16) * 16;
        prop_assert_eq!(bytes, lower);
    }

    #[test]
    fn any_single_byte_corruption_is_detected(
        pkt in arb_packet(),
        byte in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut flits = pkt.encode();
        let total = flits.len() * 16;
        // The last 4 bytes are the DLL field (sequence/credits), which is
        // rewritten by the link layer and intentionally outside the CRC.
        let idx = byte % total.max(1);
        if idx >= total - 4 {
            return Ok(());
        }
        flits[idx / 16][idx % 16] ^= flip;
        prop_assert!(Packet::decode(&flits).is_err(), "corruption at byte {idx} undetected");
    }

    #[test]
    fn crc_differs_for_different_inputs(a in prop::collection::vec(any::<u8>(), 1..64)) {
        let mut b = a.clone();
        b[0] ^= 0x01;
        prop_assert_ne!(crc32(&a), crc32(&b));
    }

    #[test]
    fn dll_delivers_exactly_once_despite_retries(
        n_packets in 1usize..8,
        drop_mask in any::<u16>(),
    ) {
        // Sender transmits n packets; transmissions indicated by drop_mask
        // bits are lost. Timeouts retransmit; the receiver must deliver each
        // packet exactly once, in spite of duplicates.
        let timeout = dl_engine::Ps::from_ns(100);
        let mut tx = DllEndpoint::new(16, timeout);
        let mut rx = DllEndpoint::new(16, timeout);
        let mut wire: Vec<Packet> = Vec::new();
        for i in 0..n_packets {
            let h = PacketHeader::new(DimmId(0), DimmId(1), DlCommand::WriteReq, i as u64, i as u8)
                .unwrap();
            for ev in tx.send(dl_engine::Ps::ZERO, Packet::without_payload(h)) {
                if let DllEvent::Transmit(p) = ev {
                    wire.push(p);
                }
            }
        }
        let mut delivered: Vec<u8> = Vec::new();
        let mut now = dl_engine::Ps::ZERO;
        let mut attempt = 0u32;
        let mut guard = 0;
        while tx.outstanding() > 0 {
            guard += 1;
            prop_assert!(guard < 100, "retry loop did not converge");
            for p in std::mem::take(&mut wire) {
                attempt += 1;
                let lost = (drop_mask >> (attempt % 16)) & 1 == 1 && attempt <= 16;
                if lost {
                    continue;
                }
                for ev in rx.receive(now, &p.encode()).unwrap() {
                    match ev {
                        DllEvent::Deliver(d) => delivered.push(d.header.tag),
                        DllEvent::SendAck { seq } => {
                            tx.on_ack(seq);
                        }
                        DllEvent::Transmit(_) => unreachable!(),
                    }
                }
            }
            now += timeout;
            for ev in tx.poll_timeouts(now) {
                if let DllEvent::Transmit(p) = ev {
                    wire.push(p);
                }
            }
        }
        delivered.sort_unstable();
        let expected: Vec<u8> = (0..n_packets as u8).collect();
        prop_assert_eq!(delivered, expected);
    }
}
