//! Property-based tests of the DIMM-Link protocol stack (transaction-layer
//! codec and data-link layer) — invariants the FPGA prototype of the paper's
//! Section V-A validates in hardware.

use dl_protocol::{
    crc32, DimmId, DlCommand, DllEndpoint, DllEvent, FaultSpec, Packet, PacketHeader, WireHarness,
    WireOutcome,
};
use proptest::prelude::*;

fn arb_command() -> impl Strategy<Value = DlCommand> {
    prop_oneof![
        Just(DlCommand::ReadReq),
        Just(DlCommand::ReadResp),
        Just(DlCommand::WriteReq),
        Just(DlCommand::WriteResp),
        Just(DlCommand::Broadcast),
        Just(DlCommand::Sync),
        Just(DlCommand::FwdRegister),
        Just(DlCommand::Atomic),
        Just(DlCommand::AtomicResp),
    ]
}

fn arb_packet() -> impl Strategy<Value = Packet> {
    (
        0u8..32,
        0u8..32,
        arb_command(),
        0u64..(1 << 37),
        any::<u8>(),
        prop::collection::vec(any::<u8>(), 0..=16), // payload in flit units
    )
        .prop_map(|(src, dst, cmd, addr, tag, units)| {
            // Flit-aligned payloads up to 256 bytes (the function layer's
            // contract with the codec: pad to 16-byte flits).
            let mut payload = Vec::new();
            for u in units {
                payload.extend_from_slice(&[u; 16]);
            }
            let header = PacketHeader::new(DimmId(src), DimmId(dst), cmd, addr, tag)
                .expect("fields in range");
            Packet::with_payload(header, payload).expect("payload <= 256")
        })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(pkt in arb_packet()) {
        let flits = pkt.encode();
        prop_assert_eq!(flits.len(), pkt.flit_count());
        let decoded = Packet::decode(&flits).expect("self-encoded packet decodes");
        prop_assert_eq!(decoded, pkt);
    }

    #[test]
    fn wire_size_is_flit_aligned_and_minimal(pkt in arb_packet()) {
        let bytes = pkt.wire_bytes();
        prop_assert_eq!(bytes % 16, 0);
        // header(8) + payload + tail(8), rounded up to one flit.
        let lower = (8 + pkt.payload.len() as u64 + 8).div_ceil(16) * 16;
        prop_assert_eq!(bytes, lower);
    }

    #[test]
    fn any_single_byte_corruption_is_detected(
        pkt in arb_packet(),
        byte in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let mut flits = pkt.encode();
        let total = flits.len() * 16;
        // Every wire byte is covered: the CRC spans header, payload, and
        // the DLL field (so a corrupted sequence number cannot slip through
        // and break exactly-once delivery).
        let idx = byte % total.max(1);
        flits[idx / 16][idx % 16] ^= flip;
        prop_assert!(Packet::decode(&flits).is_err(), "corruption at byte {idx} undetected");
    }

    #[test]
    fn crc_differs_for_different_inputs(a in prop::collection::vec(any::<u8>(), 1..64)) {
        let mut b = a.clone();
        b[0] ^= 0x01;
        prop_assert_ne!(crc32(&a), crc32(&b));
    }

    #[test]
    fn dll_delivers_exactly_once_despite_retries(
        n_packets in 1usize..8,
        drop_mask in any::<u16>(),
    ) {
        // Sender transmits n packets; transmissions indicated by drop_mask
        // bits are lost. Timeouts retransmit; the receiver must deliver each
        // packet exactly once, in spite of duplicates.
        let timeout = dl_engine::Ps::from_ns(100);
        let mut tx = DllEndpoint::new(16, timeout);
        let mut rx = DllEndpoint::new(16, timeout);
        let mut wire: Vec<Packet> = Vec::new();
        for i in 0..n_packets {
            let h = PacketHeader::new(DimmId(0), DimmId(1), DlCommand::WriteReq, i as u64, i as u8)
                .unwrap();
            for ev in tx.send(dl_engine::Ps::ZERO, Packet::without_payload(h)) {
                if let DllEvent::Transmit(p) = ev {
                    wire.push(p);
                }
            }
        }
        let mut delivered: Vec<u8> = Vec::new();
        let mut now = dl_engine::Ps::ZERO;
        let mut attempt = 0u32;
        let mut guard = 0;
        while tx.outstanding() > 0 {
            guard += 1;
            prop_assert!(guard < 100, "retry loop did not converge");
            for p in std::mem::take(&mut wire) {
                attempt += 1;
                let lost = (drop_mask >> (attempt % 16)) & 1 == 1 && attempt <= 16;
                if lost {
                    continue;
                }
                for ev in rx.receive(now, &p.encode()).unwrap() {
                    match ev {
                        DllEvent::Deliver(d) => delivered.push(d.header.tag),
                        DllEvent::SendAck { seq } => {
                            tx.on_ack(seq);
                        }
                        DllEvent::Transmit(_) | DllEvent::LinkFailed { .. } => unreachable!(),
                    }
                }
            }
            now += timeout;
            for ev in tx.poll_timeouts(now) {
                if let DllEvent::Transmit(p) = ev {
                    wire.push(p);
                }
            }
        }
        delivered.sort_unstable();
        let expected: Vec<u8> = (0..n_packets as u8).collect();
        prop_assert_eq!(delivered, expected);
    }

    #[test]
    fn faulty_wire_preserves_exactly_once_delivery(
        drop_pct in 0u8..=60,
        corrupt_pct in 0u8..=40,
        duplicate_pct in 0u8..=60,
        reorder_pct in 0u8..=100,
        ack_drop_pct in 0u8..=40,
        credits in 1u32..=8,
        count in 1u32..=24,
        seed in any::<u64>(),
    ) {
        // Any mix of drops, corruptions, duplications, reorderings, and
        // lost ACKs: every packet is still delivered exactly once and all
        // credits return to the pool.
        let faults = FaultSpec { drop_pct, corrupt_pct, duplicate_pct, reorder_pct, ack_drop_pct };
        let report = WireHarness::new(credits, faults, seed).run(count);
        prop_assert_eq!(report.outcome, WireOutcome::AllDelivered);
        prop_assert_eq!(report.delivered, count as u64);
        prop_assert_eq!(report.max_deliveries_per_seq, 1);
        prop_assert_eq!(report.credits_available, report.credits_max);
    }

    #[test]
    fn retry_cap_converts_dead_links_into_failures_not_hangs(
        max_retries in 0u32..=4,
        credits in 1u32..=4,
        count in 1u32..=8,
        seed in any::<u64>(),
    ) {
        // A fully dead wire with a retry cap must terminate with every
        // packet accounted for as a link failure — and the abandoned
        // packets must hand their credits back.
        let faults = FaultSpec { drop_pct: 100, ..FaultSpec::NONE };
        let report = WireHarness::new(credits, faults, seed)
            .with_max_retries(max_retries)
            .run(count);
        prop_assert_eq!(report.outcome, WireOutcome::LinkFailed);
        prop_assert_eq!(report.delivered, 0);
        prop_assert_eq!(report.link_failures, count as u64);
        prop_assert_eq!(report.credits_available, report.credits_max);
    }

    #[test]
    fn lossy_wire_with_generous_cap_still_delivers(
        drop_pct in 0u8..=50,
        count in 1u32..=16,
        seed in any::<u64>(),
    ) {
        // With a cap far above the expected retry count for a <=50% lossy
        // wire, the cap must not fire spuriously.
        let faults = FaultSpec { drop_pct, ..FaultSpec::NONE };
        let report = WireHarness::new(4, faults, seed).with_max_retries(64).run(count);
        prop_assert_eq!(report.outcome, WireOutcome::AllDelivered);
        prop_assert_eq!(report.delivered, count as u64);
        prop_assert_eq!(report.max_deliveries_per_seq, 1);
    }
}
