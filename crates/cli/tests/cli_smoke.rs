//! End-to-end smoke tests of the `dlsim` binary.

use std::process::Command;

fn dlsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dlsim"))
}

#[test]
fn help_and_list_exit_zero() {
    let out = dlsim().arg("help").output().expect("spawn dlsim");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = dlsim().arg("list").output().expect("spawn dlsim");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("workloads:"));
}

#[test]
fn bad_flags_exit_nonzero_with_usage() {
    let out = dlsim()
        .args(["run", "--workload", "nonsense"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown workload"));
}

#[test]
fn run_emits_valid_json() {
    let out = dlsim()
        .args([
            "run",
            "--workload",
            "km",
            "--dimms",
            "4",
            "--channels",
            "2",
            "--scale",
            "7",
            "--json",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("stdout must be valid JSON");
    assert!(v["elapsed_ns"].as_f64().unwrap() > 0.0);
    assert!(v["stats"]["barriers"].as_f64().unwrap() > 0.0);
}

#[test]
fn sweep_prints_every_value() {
    let out = dlsim()
        .args([
            "sweep",
            "--workload",
            "hs",
            "--param",
            "dimms",
            "--values",
            "4,8",
            "--scale",
            "7",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains('4') && text.contains('8'));
}
