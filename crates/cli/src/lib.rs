#![forbid(unsafe_code)]
//! # dl-cli
//!
//! `dlsim` — the command-line front end of the DIMM-Link simulator.
//!
//! ```text
//! dlsim run     --workload pr --dimms 16 --channels 8 --idc dimm-link [--opt]
//! dlsim compare --workload sssp --dimms 16 --channels 8
//! dlsim sweep   --workload bfs --param dimms --values 4,8,12,16
//! dlsim sweep   --workload pr --param link-gbps --values 4,8,16,25,64
//! dlsim list
//! ```
//!
//! All subcommands accept `--scale N`, `--seed N`, `--json` (machine-readable
//! output on stdout) and the workload/system flags shown above. The binary
//! is a thin shell over [`dimm_link::runner`]; this library holds the
//! parsing and dispatch logic so it can be unit-tested.

use dimm_link::config::{IdcKind, PollingStrategy, SyncScheme, SystemConfig};
use dimm_link::runner::{host_baseline, simulate_optimized_with, simulate_with, RunResult};
use dl_bench::sweep::{Sweep, SweepOptions};
use dl_noc::TopologyKind;
use dl_workloads::{WorkloadKind, WorkloadParams};
use std::fmt;
use std::path::PathBuf;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one workload on one system configuration.
    Run(RunSpec),
    /// Run one workload on every IDC mechanism plus the host baseline.
    Compare(RunSpec),
    /// Sweep one parameter.
    Sweep {
        /// Base specification.
        spec: RunSpec,
        /// Which parameter to sweep.
        param: SweepParam,
        /// Sweep values.
        values: Vec<u64>,
    },
    /// List available workloads, mechanisms, and knobs.
    List,
    /// Print usage.
    Help,
}

/// What `run`/`compare` execute.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Workload selector.
    pub workload: WorkloadKind,
    /// DIMM count.
    pub dimms: usize,
    /// Channel count.
    pub channels: usize,
    /// IDC mechanism (run only).
    pub idc: IdcKind,
    /// Apply Algorithm 1 (profile + min-cost max-flow placement).
    pub optimized: bool,
    /// Problem scale.
    pub scale: u32,
    /// Input seed.
    pub seed: u64,
    /// Broadcast formulation where supported.
    pub broadcast: bool,
    /// Graph community locality.
    pub locality: f64,
    /// DL-group topology.
    pub topology: TopologyKind,
    /// Polling strategy override.
    pub polling: Option<PollingStrategy>,
    /// Sync scheme override.
    pub sync: Option<SyncScheme>,
    /// Link bandwidth override, GB/s.
    pub link_gbps: Option<u64>,
    /// Emit JSON instead of tables.
    pub json: bool,
    /// Sweep worker threads (sweep only); `None` defers to `DL_THREADS`,
    /// then to `available_parallelism()`.
    pub threads: Option<usize>,
    /// Intra-run DES worker threads (DIMM-partitioned engine). Results are
    /// byte-identical at any value; this is purely a wall-clock knob.
    pub sim_threads: usize,
    /// Sweep artifact directory (sweep only); writes
    /// `<dir>/dlsim_<param>.jsonl` when set.
    pub out_dir: Option<PathBuf>,
    /// Reuse journaled points from an interrupted sweep (sweep only,
    /// requires `--out`).
    pub resume: bool,
    /// Wall-clock watchdog per sweep point, seconds (sweep only).
    pub point_budget_secs: Option<f64>,
    /// Deterministic engine event budget per run.
    pub max_events: Option<u64>,
    /// Deterministic simulated-time budget per run, milliseconds.
    pub max_sim_ms: Option<u64>,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            workload: WorkloadKind::Pagerank,
            dimms: 16,
            channels: 8,
            idc: IdcKind::DimmLink,
            optimized: false,
            scale: 11,
            seed: 42,
            broadcast: false,
            locality: 0.85,
            topology: TopologyKind::Chain,
            polling: None,
            sync: None,
            link_gbps: None,
            json: false,
            threads: None,
            sim_threads: 1,
            out_dir: None,
            resume: false,
            point_budget_secs: None,
            max_events: None,
            max_sim_ms: None,
        }
    }
}

/// Sweepable parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    /// DIMM count (channels scale as dimms/2).
    Dimms,
    /// Link bandwidth in GB/s.
    LinkGbps,
    /// Problem scale.
    Scale,
}

/// Errors from parsing or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Parses a workload name as accepted on the command line.
pub fn parse_workload(s: &str) -> Result<WorkloadKind, CliError> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "bfs" => WorkloadKind::Bfs,
        "hs" | "hotspot" => WorkloadKind::Hotspot,
        "km" | "kmeans" | "k-means" => WorkloadKind::KMeans,
        "nw" | "needleman-wunsch" => WorkloadKind::NeedlemanWunsch,
        "pr" | "pagerank" => WorkloadKind::Pagerank,
        "sssp" => WorkloadKind::Sssp,
        "spmv" => WorkloadKind::Spmv,
        "ts" | "tspow" | "ts.pow" => WorkloadKind::TsPow,
        other => return Err(err(format!("unknown workload '{other}' (try: dlsim list)"))),
    })
}

/// Parses an IDC mechanism name.
pub fn parse_idc(s: &str) -> Result<IdcKind, CliError> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "mcn" | "cpu" | "cpu-forwarding" => IdcKind::CpuForwarding,
        "aim" | "bus" | "dedicated-bus" => IdcKind::DedicatedBus,
        "abc" | "abc-dimm" => IdcKind::AbcDimm,
        "dl" | "dimm-link" | "dimmlink" => IdcKind::DimmLink,
        "cxl" | "dimm-link-cxl" => IdcKind::DimmLinkCxl,
        other => return Err(err(format!("unknown IDC mechanism '{other}'"))),
    })
}

fn parse_topology(s: &str) -> Result<TopologyKind, CliError> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "chain" => TopologyKind::Chain,
        "ring" => TopologyKind::Ring,
        "mesh" => TopologyKind::Mesh,
        "torus" => TopologyKind::Torus,
        other => return Err(err(format!("unknown topology '{other}'"))),
    })
}

fn parse_polling(s: &str) -> Result<PollingStrategy, CliError> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "base" => PollingStrategy::Base,
        "base-interrupt" | "base+itrpt" => PollingStrategy::BaseInterrupt,
        "proxy" | "p-p" => PollingStrategy::Proxy,
        "proxy-interrupt" | "p-p+itrpt" => PollingStrategy::ProxyInterrupt,
        other => return Err(err(format!("unknown polling strategy '{other}'"))),
    })
}

/// Parses the full argument vector (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let Some(sub) = args.first() else {
        return Ok(Command::Help);
    };
    match sub.as_str() {
        "list" => return Ok(Command::List),
        "help" | "--help" | "-h" => return Ok(Command::Help),
        "run" | "compare" | "sweep" => {}
        other => return Err(err(format!("unknown subcommand '{other}'"))),
    }

    let mut spec = RunSpec::default();
    let mut param: Option<SweepParam> = None;
    let mut values: Vec<u64> = Vec::new();
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> Result<&String, CliError> {
            it.next()
                .ok_or_else(|| err(format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--workload" | "-w" => spec.workload = parse_workload(next(a)?)?,
            "--dimms" | "-d" => {
                spec.dimms = next(a)?.parse().map_err(|_| err("--dimms: not a number"))?
            }
            "--channels" | "-c" => {
                spec.channels = next(a)?
                    .parse()
                    .map_err(|_| err("--channels: not a number"))?
            }
            "--idc" | "-i" => spec.idc = parse_idc(next(a)?)?,
            "--opt" => spec.optimized = true,
            "--scale" => spec.scale = next(a)?.parse().map_err(|_| err("--scale: not a number"))?,
            "--seed" => spec.seed = next(a)?.parse().map_err(|_| err("--seed: not a number"))?,
            "--broadcast" => spec.broadcast = true,
            "--locality" => {
                spec.locality = next(a)?
                    .parse()
                    .map_err(|_| err("--locality: not a number"))?;
                if !(0.0..=1.0).contains(&spec.locality) {
                    return Err(err("--locality must be in [0,1]"));
                }
            }
            "--topology" => spec.topology = parse_topology(next(a)?)?,
            "--polling" => spec.polling = Some(parse_polling(next(a)?)?),
            "--sync" => {
                spec.sync = Some(match next(a)?.to_ascii_lowercase().as_str() {
                    "central" => SyncScheme::Central,
                    "hierarchical" | "hier" => SyncScheme::Hierarchical,
                    other => return Err(err(format!("unknown sync scheme '{other}'"))),
                })
            }
            "--link-gbps" => {
                spec.link_gbps = Some(
                    next(a)?
                        .parse()
                        .map_err(|_| err("--link-gbps: not a number"))?,
                )
            }
            "--json" => spec.json = true,
            "--threads" => {
                let n: usize = next(a)?
                    .parse()
                    .map_err(|_| err("--threads: not a number"))?;
                if n == 0 {
                    return Err(err("--threads must be at least 1"));
                }
                spec.threads = Some(n);
            }
            "--sim-threads" => {
                let n: usize = next(a)?
                    .parse()
                    .map_err(|_| err("--sim-threads: not a number"))?;
                if n == 0 {
                    return Err(err("--sim-threads must be at least 1"));
                }
                spec.sim_threads = n;
            }
            "--out" => spec.out_dir = Some(PathBuf::from(next(a)?)),
            "--resume" => spec.resume = true,
            "--point-budget" => {
                let s: f64 = next(a)?
                    .parse()
                    .map_err(|_| err("--point-budget: not a number of seconds"))?;
                if s.is_nan() || s <= 0.0 {
                    return Err(err("--point-budget must be positive"));
                }
                spec.point_budget_secs = Some(s);
            }
            "--max-events" => {
                spec.max_events = Some(
                    next(a)?
                        .parse()
                        .map_err(|_| err("--max-events: not a number"))?,
                )
            }
            "--max-sim-ms" => {
                spec.max_sim_ms = Some(
                    next(a)?
                        .parse()
                        .map_err(|_| err("--max-sim-ms: not a number"))?,
                )
            }
            "--param" => {
                param = Some(match next(a)?.to_ascii_lowercase().as_str() {
                    "dimms" => SweepParam::Dimms,
                    "link-gbps" => SweepParam::LinkGbps,
                    "scale" => SweepParam::Scale,
                    other => return Err(err(format!("unknown sweep parameter '{other}'"))),
                })
            }
            "--values" => {
                values = next(a)?
                    .split(',')
                    .map(|v| v.trim().parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| err("--values: comma-separated numbers expected"))?
            }
            other => return Err(err(format!("unknown flag '{other}'"))),
        }
    }

    match args[0].as_str() {
        "run" => Ok(Command::Run(spec)),
        "compare" => Ok(Command::Compare(spec)),
        "sweep" => {
            let param = param.ok_or_else(|| err("sweep needs --param"))?;
            if values.is_empty() {
                return Err(err("sweep needs --values a,b,c"));
            }
            Ok(Command::Sweep {
                spec,
                param,
                values,
            })
        }
        _ => unreachable!("validated above"),
    }
}

/// Builds the system configuration a spec describes.
pub fn system_of(spec: &RunSpec) -> Result<SystemConfig, CliError> {
    if spec.dimms == 0 || spec.channels == 0 || !spec.dimms.is_multiple_of(spec.channels) {
        return Err(err(format!(
            "dimms ({}) must be a positive multiple of channels ({})",
            spec.dimms, spec.channels
        )));
    }
    let mut cfg = SystemConfig::nmp(spec.dimms, spec.channels).with_idc(spec.idc);
    cfg.topology = spec.topology;
    if let Some(p) = spec.polling {
        cfg.polling = p;
    }
    if let Some(s) = spec.sync {
        cfg.sync = s;
    }
    if let Some(gb) = spec.link_gbps {
        cfg.link = cfg.link.with_bandwidth(gb * 1_000_000_000);
    }
    cfg.validate().map_err(CliError)?;
    Ok(cfg)
}

/// Builds the workload parameters a spec describes.
pub fn params_of(spec: &RunSpec) -> WorkloadParams {
    WorkloadParams {
        dimms: spec.dimms,
        threads_per_dimm: 4,
        scale: spec.scale,
        seed: spec.seed,
        broadcast: spec.broadcast,
        locality: spec.locality,
    }
}

/// Builds the workload a spec describes.
pub fn workload_of(spec: &RunSpec) -> dl_workloads::Workload {
    spec.workload.build(&params_of(spec))
}

/// Runs a spec and returns the result.
pub fn execute_run(spec: &RunSpec) -> Result<RunResult, CliError> {
    let cfg = system_of(spec)?;
    let wl = workload_of(spec);
    Ok(if spec.optimized {
        simulate_optimized_with(&wl, &cfg, spec.sim_threads)
    } else {
        simulate_with(&wl, &cfg, spec.sim_threads)
    })
}

/// One line of `compare` output.
#[derive(Debug, serde::Serialize)]
pub struct CompareRow {
    /// System label.
    pub system: String,
    /// End-to-end time in nanoseconds.
    pub elapsed_ns: f64,
    /// Speedup over the host baseline.
    pub speedup_vs_host: f64,
    /// Non-overlapped IDC stall fraction.
    pub idc_stall_frac: f64,
}

/// Runs the `compare` subcommand: host + all mechanisms + DL-opt.
pub fn execute_compare(spec: &RunSpec) -> Result<Vec<CompareRow>, CliError> {
    let host = host_baseline(spec.workload, spec.scale, spec.seed);
    let host_ns = host.elapsed.as_ns_f64();
    let mut rows = vec![CompareRow {
        system: "host-16core".into(),
        elapsed_ns: host_ns,
        speedup_vs_host: 1.0,
        idc_stall_frac: 0.0,
    }];
    for idc in [
        IdcKind::CpuForwarding,
        IdcKind::DedicatedBus,
        IdcKind::AbcDimm,
        IdcKind::DimmLink,
        IdcKind::DimmLinkCxl,
    ] {
        let mut s = spec.clone();
        s.idc = idc;
        s.polling = None;
        s.sync = None;
        let r = execute_run(&s)?;
        rows.push(CompareRow {
            system: idc.to_string(),
            elapsed_ns: r.elapsed.as_ns_f64(),
            speedup_vs_host: host_ns / r.elapsed.as_ns_f64(),
            idc_stall_frac: r.idc_stall_frac(),
        });
    }
    let mut s = spec.clone();
    s.idc = IdcKind::DimmLink;
    s.optimized = true;
    s.polling = None;
    s.sync = None;
    let r = execute_run(&s)?;
    rows.push(CompareRow {
        system: "DIMM-Link-opt".into(),
        elapsed_ns: r.elapsed.as_ns_f64(),
        speedup_vs_host: host_ns / r.elapsed.as_ns_f64(),
        idc_stall_frac: r.idc_stall_frac(),
    });
    Ok(rows)
}

/// Runs the `sweep` subcommand on the [`dl_bench::sweep`] harness; returns
/// `(value, elapsed_ns)` pairs in submission order. Points fan out over
/// `spec.threads` workers (else `DL_THREADS`, else all cores); when
/// `spec.out_dir` is set the JSON-lines artifact `dlsim_<param>.jsonl` is
/// written there and a summary line goes to stderr.
pub fn execute_sweep(
    spec: &RunSpec,
    param: SweepParam,
    values: &[u64],
) -> Result<Vec<(u64, f64)>, CliError> {
    let name = match param {
        SweepParam::Dimms => "dimms",
        SweepParam::LinkGbps => "link_gbps",
        SweepParam::Scale => "scale",
    };
    let mut sweep = Sweep::new(format!("dlsim_{name}"));
    for &v in values {
        let mut s = spec.clone();
        match param {
            SweepParam::Dimms => {
                s.dimms = v as usize;
                s.channels = (v as usize / 2).max(1);
            }
            SweepParam::LinkGbps => s.link_gbps = Some(v),
            SweepParam::Scale => s.scale = v as u32,
        }
        let cfg = system_of(&s)?; // validate before spawning workers
        let label = format!("{} / {name}={v}", s.workload);
        if s.optimized {
            sweep.simulate_optimized(label, s.workload, params_of(&s), cfg);
        } else {
            sweep.simulate(label, s.workload, params_of(&s), cfg);
        }
    }
    sweep.apply_budget(dl_engine::RunBudget {
        max_events: spec.max_events,
        max_sim_ps: spec.max_sim_ms.map(|ms| ms.saturating_mul(1_000_000_000)),
    });
    if spec.resume && spec.out_dir.is_none() {
        return Err(err("--resume needs --out DIR (the journal lives there)"));
    }
    let opts = SweepOptions {
        threads: spec.threads,
        out_dir: spec.out_dir.clone(),
        // Without --out there is no artifact to announce; keep stderr clean.
        quiet: spec.out_dir.is_none(),
        resume: spec.resume,
        point_budget: spec
            .point_budget_secs
            .map(std::time::Duration::from_secs_f64),
        halt_after: None,
        sim_threads: spec.sim_threads,
    };
    let out = sweep.run_with(&opts).map_err(|e| CliError(e.to_string()))?;
    Ok(values
        .iter()
        .copied()
        .zip(out.records.iter().map(|r| r.elapsed_f64() / 1e3))
        .collect())
}

/// The `list` text.
pub fn listing() -> String {
    "workloads: bfs, hs (hotspot), km (k-means), nw (needleman-wunsch), pr (pagerank), \
     sssp, spmv, ts (ts.pow)\n\
     idc mechanisms: mcn (cpu-forwarding), aim (dedicated-bus), abc (abc-dimm), \
     dl (dimm-link), cxl (dimm-link-cxl)\n\
     topologies: chain, ring, mesh, torus\n\
     polling: base, base-interrupt, proxy, proxy-interrupt\n\
     sync: central, hierarchical\n\
     sweep params: dimms, link-gbps, scale"
        .to_string()
}

/// Usage text.
pub fn usage() -> String {
    "dlsim — DIMM-Link (HPCA'23) system simulator\n\n\
     USAGE:\n\
     \x20 dlsim run     --workload <w> [--dimms N --channels N --idc <m> --opt] [flags]\n\
     \x20 dlsim compare --workload <w> [--dimms N --channels N] [flags]\n\
     \x20 dlsim sweep   --workload <w> --param <p> --values a,b,c [--threads N --out DIR] [flags]\n\
     \x20 dlsim list\n\n\
     FLAGS: --scale N  --seed N  --broadcast  --locality F  --topology <t>\n\
     \x20      --polling <s>  --sync <s>  --link-gbps N  --json\n\
     \x20      --resume  --point-budget SECS  --max-events N  --max-sim-ms N\n\
     \x20      --sim-threads N\n\n\
     Sweeps fan out over --threads workers (default: DL_THREADS, else all\n\
     cores); results are deterministic regardless of thread count. Each\n\
     run can itself be parallelized across its DIMM partitions with\n\
     --sim-threads N — results stay byte-identical at any value. With\n\
     --out DIR the sweep also writes DIR/dlsim_<param>.jsonl, journaling\n\
     each finished point to DIR/dlsim_<param>.journal.jsonl so an\n\
     interrupted sweep restarts where it stopped with --resume.\n\
     --max-events/--max-sim-ms cap each run deterministically inside the\n\
     engine (the record is marked BudgetExceeded); --point-budget is a\n\
     wall-clock watchdog that abandons hung points.\n\n\
     Run `dlsim list` for accepted names."
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run_with_flags() {
        let cmd = parse_args(&sv(&[
            "run",
            "--workload",
            "sssp",
            "--dimms",
            "8",
            "--channels",
            "4",
            "--idc",
            "aim",
            "--scale",
            "9",
            "--json",
        ]))
        .unwrap();
        let Command::Run(spec) = cmd else {
            panic!("expected Run")
        };
        assert_eq!(spec.workload, WorkloadKind::Sssp);
        assert_eq!(spec.dimms, 8);
        assert_eq!(spec.channels, 4);
        assert_eq!(spec.idc, IdcKind::DedicatedBus);
        assert_eq!(spec.scale, 9);
        assert!(spec.json);
    }

    #[test]
    fn parses_sweep() {
        let cmd = parse_args(&sv(&[
            "sweep",
            "--workload",
            "bfs",
            "--param",
            "dimms",
            "--values",
            "4,8,16",
        ]))
        .unwrap();
        let Command::Sweep { param, values, .. } = cmd else {
            panic!()
        };
        assert_eq!(param, SweepParam::Dimms);
        assert_eq!(values, vec![4, 8, 16]);
    }

    #[test]
    fn parses_sweep_harness_knobs() {
        let cmd = parse_args(&sv(&[
            "sweep",
            "--workload",
            "pr",
            "--param",
            "scale",
            "--values",
            "7,8",
            "--threads",
            "2",
            "--out",
            "/tmp/dlsim-artifacts",
        ]))
        .unwrap();
        let Command::Sweep { spec, .. } = cmd else {
            panic!("expected Sweep")
        };
        assert_eq!(spec.threads, Some(2));
        assert_eq!(spec.out_dir, Some(PathBuf::from("/tmp/dlsim-artifacts")));
        assert!(parse_args(&sv(&["sweep", "--threads", "0"])).is_err());
    }

    #[test]
    fn parses_crash_safety_knobs() {
        let cmd = parse_args(&sv(&[
            "sweep",
            "--workload",
            "pr",
            "--param",
            "scale",
            "--values",
            "7,8",
            "--out",
            "/tmp/dlsim-artifacts",
            "--resume",
            "--point-budget",
            "2.5",
            "--max-events",
            "100000",
            "--max-sim-ms",
            "50",
        ]))
        .unwrap();
        let Command::Sweep { spec, .. } = cmd else {
            panic!("expected Sweep")
        };
        assert!(spec.resume);
        assert_eq!(spec.point_budget_secs, Some(2.5));
        assert_eq!(spec.max_events, Some(100_000));
        assert_eq!(spec.max_sim_ms, Some(50));
        assert!(parse_args(&sv(&["sweep", "--point-budget", "0"])).is_err());
        assert!(parse_args(&sv(&["sweep", "--point-budget", "nope"])).is_err());
        assert!(parse_args(&sv(&["sweep", "--max-events", "nope"])).is_err());
    }

    #[test]
    fn parses_sim_threads() {
        let cmd = parse_args(&sv(&["run", "--workload", "bfs", "--sim-threads", "4"])).unwrap();
        let Command::Run(spec) = cmd else {
            panic!("expected Run")
        };
        assert_eq!(spec.sim_threads, 4);
        // Default is sequential.
        assert_eq!(RunSpec::default().sim_threads, 1);
        // 0 threads cannot advance the simulation.
        assert!(parse_args(&sv(&["run", "--sim-threads", "0"])).is_err());
        assert!(parse_args(&sv(&["run", "--sim-threads", "nope"])).is_err());
    }

    #[test]
    fn resume_requires_an_out_dir() {
        let spec = RunSpec {
            workload: WorkloadKind::Hotspot,
            scale: 7,
            resume: true,
            ..RunSpec::default()
        };
        let e = execute_sweep(&spec, SweepParam::Dimms, &[4]).unwrap_err();
        assert!(e.to_string().contains("--out"), "{e}");
    }

    #[test]
    fn rejects_unknowns() {
        assert!(parse_args(&sv(&["frobnicate"])).is_err());
        assert!(parse_args(&sv(&["run", "--workload", "nope"])).is_err());
        assert!(parse_args(&sv(&["run", "--idc", "nope"])).is_err());
        assert!(parse_args(&sv(&["sweep", "--workload", "pr"])).is_err()); // no --param
        assert!(parse_args(&sv(&["run", "--locality", "7"])).is_err());
        assert!(parse_args(&sv(&["run", "--dimms"])).is_err()); // missing value
    }

    #[test]
    fn empty_args_is_help() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&sv(&["list"])).unwrap(), Command::List);
    }

    #[test]
    fn system_of_validates() {
        let mut spec = RunSpec {
            dimms: 10,
            channels: 4,
            ..RunSpec::default()
        };
        assert!(system_of(&spec).is_err());
        spec.dimms = 8;
        assert!(system_of(&spec).is_ok());
    }

    #[test]
    fn run_and_compare_execute() {
        let spec = RunSpec {
            workload: WorkloadKind::KMeans,
            dimms: 4,
            channels: 2,
            scale: 7,
            ..RunSpec::default()
        };
        let r = execute_run(&spec).unwrap();
        assert!(r.elapsed > dl_engine::Ps::ZERO);
        let rows = execute_compare(&spec).unwrap();
        assert_eq!(rows.len(), 7); // host + 5 mechanisms + DL-opt
        assert!(rows.iter().all(|r| r.elapsed_ns > 0.0));
    }

    #[test]
    fn sweep_executes() {
        let spec = RunSpec {
            workload: WorkloadKind::Hotspot,
            scale: 7,
            ..RunSpec::default()
        };
        let out = execute_sweep(&spec, SweepParam::Dimms, &[4, 8]).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out[0].1 > 0.0 && out[1].1 > 0.0);
    }

    #[test]
    fn sweep_is_deterministic_across_thread_counts() {
        let spec = RunSpec {
            workload: WorkloadKind::KMeans,
            scale: 7,
            ..RunSpec::default()
        };
        let serial = execute_sweep(
            &RunSpec {
                threads: Some(1),
                ..spec.clone()
            },
            SweepParam::Dimms,
            &[4, 8],
        )
        .unwrap();
        let parallel = execute_sweep(
            &RunSpec {
                threads: Some(4),
                ..spec
            },
            SweepParam::Dimms,
            &[4, 8],
        )
        .unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn listing_mentions_everything() {
        let l = listing();
        for item in [
            "bfs",
            "pagerank",
            "dimm-link",
            "torus",
            "proxy",
            "hierarchical",
        ] {
            assert!(l.contains(item), "listing missing {item}");
        }
    }
}
