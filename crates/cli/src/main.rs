#![forbid(unsafe_code)]
//! `dlsim` binary: see [`dl_cli`] for the command grammar.

use dl_cli::{execute_compare, execute_run, execute_sweep, listing, parse_args, usage, Command};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            std::process::exit(2);
        }
    };
    let code = match dispatch(cmd) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    };
    std::process::exit(code);
}

fn dispatch(cmd: Command) -> Result<(), dl_cli::CliError> {
    match cmd {
        Command::Help => println!("{}", usage()),
        Command::List => println!("{}", listing()),
        Command::Run(spec) => {
            let r = execute_run(&spec)?;
            if spec.json {
                #[derive(serde::Serialize)]
                struct Out<'a> {
                    elapsed_ns: f64,
                    profiling_ns: f64,
                    idc_stall_frac: f64,
                    bus_occupancy: f64,
                    energy_j: f64,
                    stats: &'a dl_engine::stats::StatSet,
                }
                let out = Out {
                    elapsed_ns: r.elapsed.as_ns_f64(),
                    profiling_ns: r.profiling.as_ns_f64(),
                    idc_stall_frac: r.idc_stall_frac(),
                    bus_occupancy: r.bus_occupancy(),
                    energy_j: r.energy.total(),
                    stats: &r.stats,
                };
                println!(
                    "{}",
                    serde_json::to_string_pretty(&out).expect("serializable")
                );
            } else {
                println!("elapsed          : {}", r.elapsed);
                if r.profiling > dl_engine::Ps::ZERO {
                    println!("  profiling phase: {}", r.profiling);
                }
                println!("IDC stall        : {:.1}%", r.idc_stall_frac() * 100.0);
                println!("bus occupancy    : {:.1}%", r.bus_occupancy() * 100.0);
                let (local, link, fwd, bus) = r.traffic_breakdown();
                println!(
                    "traffic          : {:.0}% local / {:.0}% links / {:.0}% host / {:.0}% bus",
                    local * 100.0,
                    link * 100.0,
                    fwd * 100.0,
                    bus * 100.0
                );
                println!("energy           : {:.3} mJ", r.energy.total() * 1e3);
            }
        }
        Command::Compare(spec) => {
            let rows = execute_compare(&spec)?;
            if spec.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&rows).expect("serializable")
                );
            } else {
                println!(
                    "{:<16} {:>14} {:>10} {:>10}",
                    "system", "elapsed", "speedup", "idc-stall"
                );
                for r in rows {
                    println!(
                        "{:<16} {:>12.1}us {:>9.2}x {:>9.1}%",
                        r.system,
                        r.elapsed_ns / 1e3,
                        r.speedup_vs_host,
                        r.idc_stall_frac * 100.0
                    );
                }
            }
        }
        Command::Sweep {
            spec,
            param,
            values,
        } => {
            let out = execute_sweep(&spec, param, &values)?;
            if spec.json {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&out).expect("serializable")
                );
            } else {
                println!("{:<12} {:>14} {:>10}", "value", "elapsed", "speedup");
                let base = out.first().map(|&(_, ns)| ns).unwrap_or(1.0);
                for (v, ns) in out {
                    println!("{v:<12} {:>12.1}us {:>9.2}x", ns / 1e3, base / ns);
                }
            }
        }
    }
    Ok(())
}
