//! The four inter-DIMM communication mechanisms (paper Table I).
//!
//! All four expose the same interface — deliver a packet of `bytes` from
//! DIMM `src` to DIMM `dst` (or to everyone) starting at `now`, reserving
//! the contended resources along the way and returning the arrival time:
//!
//! * **CPU-forwarding (MCN/UPMEM)** — the request waits to be discovered by
//!   host polling, then crosses the source channel, the host, and the
//!   destination channel.
//! * **Dedicated bus (AIM)** — one shared multi-drop bus; no host
//!   involvement, but every DIMM pair contends for the same β.
//! * **Intra-channel broadcast (ABC-DIMM)** — point-to-point traffic still
//!   goes through the host; broadcasts reach same-channel DIMMs in one
//!   transaction and other channels via one forward + broadcast-write each.
//! * **DIMM-Link** — intra-group packets route over the SerDes chain;
//!   inter-group packets fall back to host forwarding, with the polling
//!   proxy aggregating discovery (Section IV-A).

use crate::config::{IdcKind, PollingStrategy, SystemConfig};
use crate::host::HostPath;
use dl_engine::{BandwidthResource, Ps};

use dl_noc::{PacketNet, Topology};

/// Size of a forwarding-request notification packet (one flit).
pub const NOTIFY_BYTES: u64 = 16;

/// Wire size of a packet carrying `payload` bytes (header + payload + tail,
/// rounded up to whole 16-byte flits; see `dl-protocol`).
pub fn wire_bytes(payload: u64) -> u64 {
    (8 + payload + 8).div_ceil(16) * 16
}

/// Which path a delivery took (drives the Fig. 11 traffic breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Route {
    /// Stayed within one DIMM (no IDC).
    Local,
    /// DIMM-Link SerDes links within a group.
    Link,
    /// Host-CPU forwarding over the memory channels.
    HostForward,
    /// The AIM dedicated bus.
    Bus,
    /// The inter-blade CXL fabric (disaggregated organization).
    Cxl,
    /// ABC-DIMM's multi-drop channel broadcast.
    ChannelBroadcast,
}

/// A CXL-class blade fabric: one full-duplex port per blade plus a switch.
#[derive(Debug)]
pub struct CxlFabric {
    /// Per-blade egress ports (ingress contention is folded into egress of
    /// the sender plus switch latency; CXL links are full-duplex).
    egress: Vec<BandwidthResource>,
    ingress: Vec<BandwidthResource>,
    latency: Ps,
}

impl CxlFabric {
    fn new(blades: usize, bandwidth: u64, latency: Ps) -> Self {
        CxlFabric {
            egress: (0..blades)
                .map(|b| BandwidthResource::new(format!("cxl-egress{b}"), bandwidth))
                .collect(),
            ingress: (0..blades)
                .map(|b| BandwidthResource::new(format!("cxl-ingress{b}"), bandwidth))
                .collect(),
            latency,
        }
    }

    /// Moves `bytes` from blade `src` to blade `dst` starting at `now`.
    fn transfer(&mut self, now: Ps, src: usize, dst: usize, bytes: u64) -> Ps {
        let sent = self.egress[src].transfer(now, bytes);

        self.ingress[dst].transfer(sent + self.latency, bytes)
    }

    fn bytes_moved(&self) -> u64 {
        self.egress.iter().map(|p| p.bytes_moved()).sum()
    }
}

/// DIMM-Link-specific state: groups, per-group networks, proxies.
#[derive(Debug)]
pub struct DlState {
    /// DIMM ids per group, in chain order.
    groups: Vec<Vec<usize>>,
    /// dimm -> (group, index within group).
    of: Vec<(usize, usize)>,
    nets: Vec<PacketNet>,
    /// The proxy / synchronization-master DIMM of each group (the middle
    /// DIMM, per Section III-D's heuristic).
    proxy: Vec<usize>,
    dl_proc: Ps,
    proxy_polling: bool,
    /// CXL fabric for inter-group (inter-blade) packets; `None` uses host
    /// forwarding (the in-server organization).
    cxl: Option<CxlFabric>,
    /// Stage timings of inter-group sends (diagnostics).
    pub notify_wait: dl_engine::stats::Histogram,
    /// Discovery wait (registration to host pickup).
    pub disc_wait: dl_engine::stats::Histogram,
    /// Forward time (pickup to arrival).
    pub fwd_wait: dl_engine::stats::Histogram,
}

impl DlState {
    fn new(cfg: &SystemConfig) -> Self {
        Self::with_fabric(cfg, None)
    }

    fn with_fabric(cfg: &SystemConfig, cxl: Option<CxlFabric>) -> Self {
        let groups: Vec<Vec<usize>> = (0..cfg.groups).map(|g| cfg.group_members(g)).collect();
        let mut of = vec![(0usize, 0usize); cfg.dimms];
        for (g, members) in groups.iter().enumerate() {
            for (i, &d) in members.iter().enumerate() {
                of[d] = (g, i);
            }
        }
        let nets = groups
            .iter()
            .map(|m| PacketNet::new(&Topology::new(cfg.topology, m.len()), cfg.link))
            .collect();
        let proxy = groups.iter().map(|m| m[m.len() / 2]).collect();
        DlState {
            groups,
            of,
            nets,
            proxy,
            cxl,
            notify_wait: dl_engine::stats::Histogram::new(),
            disc_wait: dl_engine::stats::Histogram::new(),
            fwd_wait: dl_engine::stats::Histogram::new(),
            dl_proc: cfg.dl_proc,
            proxy_polling: matches!(
                cfg.polling,
                PollingStrategy::Proxy | PollingStrategy::ProxyInterrupt
            ),
        }
    }

    /// The proxy DIMM of each group.
    pub fn proxies(&self) -> &[usize] {
        &self.proxy
    }

    /// Group of a DIMM.
    pub fn group_of(&self, dimm: usize) -> usize {
        self.of[dimm].0
    }

    /// Intra-group hop distance, or `None` across groups.
    pub fn hop_distance(&self, a: usize, b: usize) -> Option<u32> {
        let (ga, la) = self.of[a];
        let (gb, lb) = self.of[b];
        (ga == gb).then(|| self.nets[ga].topology().distance(la, lb))
    }

    fn send(&mut self, now: Ps, src: usize, dst: usize, bytes: u64) -> Ps {
        let (g, ls) = self.of[src];
        let (gd, ld) = self.of[dst];
        debug_assert_eq!(g, gd, "send() is intra-group only");
        self.nets[g].send(now + self.dl_proc, ls, ld, bytes) + self.dl_proc
    }

    /// Total bytes moved over all links (per-hop).
    pub fn link_bytes(&self) -> u64 {
        self.nets.iter().map(|n| n.link_bytes()).sum()
    }
}

/// Debug instrumentation: tracks out-of-order unicast invocation.
#[derive(Debug, Default)]
pub struct CallOrderStats {
    last: Ps,
    /// Calls whose `now` precedes an earlier call's `now`.
    pub inversions: u64,
    /// Largest backwards jump observed, ps.
    pub max_backjump: u64,
}

impl CallOrderStats {
    /// Records one call at `now`.
    pub fn observe(&mut self, now: Ps) {
        if now < self.last {
            self.inversions += 1;
            self.max_backjump = self.max_backjump.max((self.last - now).as_ps());
        } else {
            self.last = now;
        }
    }
}

/// One of the four IDC mechanisms, holding its private resources.
#[derive(Debug)]
pub enum Interconnect {
    /// MCN / UPMEM style.
    CpuForwarding,
    /// AIM's shared bus.
    DedicatedBus {
        /// The multi-drop bus.
        bus: BandwidthResource,
        /// Arbitration + propagation latency per transaction.
        latency: Ps,
        /// Bus occupancy overhead per transaction (arbitration/turnaround).
        txn_overhead: Ps,
    },
    /// ABC-DIMM.
    AbcDimm,
    /// DIMM-Link. Boxed: the link state dwarfs the other variants.
    DimmLink(Box<DlState>),
}

impl Interconnect {
    /// Builds the mechanism configured in `cfg`.
    pub fn new(cfg: &SystemConfig) -> Self {
        match cfg.idc {
            IdcKind::CpuForwarding => Interconnect::CpuForwarding,
            IdcKind::AbcDimm => Interconnect::AbcDimm,
            IdcKind::DedicatedBus => Interconnect::DedicatedBus {
                bus: BandwidthResource::new("aim-bus", cfg.channel_bandwidth),
                latency: cfg.bus_latency,
                txn_overhead: cfg.bus_txn_overhead,
            },
            IdcKind::DimmLink => Interconnect::DimmLink(Box::new(DlState::new(cfg))),
            IdcKind::DimmLinkCxl => Interconnect::DimmLink(Box::new(DlState::with_fabric(
                cfg,
                Some(CxlFabric::new(
                    cfg.groups,
                    cfg.cxl_bandwidth,
                    cfg.cxl_latency,
                )),
            ))),
        }
    }

    /// The channels hosting polling-proxy DIMMs (for [`HostPath::new`]).
    pub fn proxy_channels(&self, cfg: &SystemConfig) -> Vec<usize> {
        match self {
            Interconnect::DimmLink(dl) if dl.proxy_polling => {
                dl.proxy.iter().map(|&d| cfg.channel_of(d)).collect()
            }
            _ => Vec::new(),
        }
    }

    /// Delivers `bytes` from `src` to `dst`, returning `(arrival, route)`.
    ///
    /// # Panics
    /// Panics if `src == dst` (local traffic never enters the IDC layer).
    pub fn unicast(
        &mut self,
        host: &mut HostPath,
        cfg: &SystemConfig,
        now: Ps,
        src: usize,
        dst: usize,
        bytes: u64,
    ) -> (Ps, Route) {
        self.unicast_inner(host, cfg, now, src, dst, bytes, false)
    }

    /// Like [`Self::unicast`] but for synchronization messages, which pay
    /// the register-level host cost when they cross the host.
    pub fn sync_unicast(
        &mut self,
        host: &mut HostPath,
        cfg: &SystemConfig,
        now: Ps,
        src: usize,
        dst: usize,
        bytes: u64,
    ) -> (Ps, Route) {
        self.unicast_inner(host, cfg, now, src, dst, bytes, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn unicast_inner(
        &mut self,
        host: &mut HostPath,
        cfg: &SystemConfig,
        now: Ps,
        src: usize,
        dst: usize,
        bytes: u64,
        sync: bool,
    ) -> (Ps, Route) {
        assert_ne!(src, dst, "local access must not use the interconnect");
        let fwd = |host: &mut HostPath, t: Ps, a: usize, b: usize| {
            if sync {
                host.forward_sync(t, a, b, bytes)
            } else {
                host.forward(t, a, b, bytes)
            }
        };
        match self {
            Interconnect::CpuForwarding | Interconnect::AbcDimm => {
                let disc = host.discover(now, cfg.channel_of(src), cfg.dimms_per_channel());
                let arrival = fwd(host, disc, cfg.channel_of(src), cfg.channel_of(dst));
                (arrival, Route::HostForward)
            }
            Interconnect::DedicatedBus {
                bus,
                latency,
                txn_overhead,
            } => {
                let data_done = bus.transfer(now, bytes);
                let released = bus.occupy(data_done, *txn_overhead);
                (released + *latency, Route::Bus)
            }
            Interconnect::DimmLink(dl) => {
                let (gs, _) = dl.of[src];
                let (gd, _) = dl.of[dst];
                if gs == gd {
                    (dl.send(now, src, dst, bytes), Route::Link)
                } else if dl.cxl.is_some() {
                    // Disaggregated organization: route to the blade's CXL
                    // port over the links, cross the fabric, then route to
                    // the destination inside its blade. The port sits at the
                    // blade's proxy/master DIMM.
                    let src_port = dl.proxy[gs];
                    let dst_port = dl.proxy[gd];
                    let at_port = if src == src_port {
                        now
                    } else {
                        dl.send(now, src, src_port, bytes)
                    };
                    let fabric = dl.cxl.as_mut().expect("checked is_some");
                    let landed = fabric.transfer(at_port, gs, gd, bytes);
                    let arrival = if dst == dst_port {
                        landed
                    } else {
                        dl.send(landed, dst_port, dst, bytes)
                    };
                    (arrival, Route::Cxl)
                } else {
                    // Inter-group: register, get discovered, be forwarded.
                    let (disc_channel, registered, scan) = if dl.proxy_polling {
                        let proxy = dl.proxy[gs];
                        let reg = if proxy == src {
                            now
                        } else {
                            dl.send(now, src, proxy, NOTIFY_BYTES)
                        };
                        (cfg.channel_of(proxy), reg, 1)
                    } else {
                        (cfg.channel_of(src), now, cfg.dimms_per_channel())
                    };
                    let disc = host.discover(registered, disc_channel, scan);
                    let arrival = fwd(host, disc, cfg.channel_of(src), cfg.channel_of(dst));
                    dl.notify_wait
                        .record((registered.saturating_sub(now)).as_ps());
                    dl.disc_wait
                        .record((disc.saturating_sub(registered)).as_ps());
                    dl.fwd_wait.record((arrival.saturating_sub(disc)).as_ps());
                    (arrival, Route::HostForward)
                }
            }
        }
    }

    /// Broadcasts `bytes` from `src` to every DIMM; returns per-DIMM arrival
    /// times (`arrivals[src] == now`).
    pub fn broadcast(
        &mut self,
        host: &mut HostPath,
        cfg: &SystemConfig,
        now: Ps,
        src: usize,
        bytes: u64,
    ) -> Vec<Ps> {
        let mut arrivals = vec![now; cfg.dimms];
        match self {
            Interconnect::CpuForwarding => {
                // MCN-BC: discover, read once, then write to every other
                // DIMM individually.
                let disc = host.discover(now, cfg.channel_of(src), cfg.dimms_per_channel());
                let read = host.channel_transfer(cfg.channel_of(src), disc, bytes);
                for (d, a) in arrivals.iter_mut().enumerate() {
                    if d != src {
                        let ready = host.host_process(read);
                        *a = host.channel_transfer(cfg.channel_of(d), ready, bytes);
                    }
                }
            }
            Interconnect::AbcDimm => {
                // Broadcast-read reaches same-channel peers in one
                // transaction; each other channel gets one forwarded
                // broadcast-write.
                let disc = host.discover(now, cfg.channel_of(src), cfg.dimms_per_channel());
                let read = host.channel_transfer(cfg.channel_of(src), disc, bytes);
                for (d, a) in arrivals.iter_mut().enumerate() {
                    if d != src && cfg.channel_of(d) == cfg.channel_of(src) {
                        *a = read;
                    }
                }
                for ch in 0..cfg.channels {
                    if ch != cfg.channel_of(src) {
                        let ready = host.host_process(read);
                        let w = host.channel_transfer(ch, ready, bytes);
                        for (d, a) in arrivals.iter_mut().enumerate() {
                            if cfg.channel_of(d) == ch {
                                *a = w;
                            }
                        }
                    }
                }
            }
            Interconnect::DedicatedBus {
                bus,
                latency,
                txn_overhead,
            } => {
                // One multi-drop transaction reaches everyone.
                let data_done = bus.transfer(now, bytes);
                let done = bus.occupy(data_done, *txn_overhead) + *latency;
                for (d, a) in arrivals.iter_mut().enumerate() {
                    if d != src {
                        *a = done;
                    }
                }
            }
            Interconnect::DimmLink(dl) => {
                // Own group over the links.
                let (gs, ls) = dl.of[src];
                let local = dl.nets[gs].broadcast(now + dl.dl_proc, ls, bytes);
                for (i, &d) in dl.groups[gs].clone().iter().enumerate() {
                    if d != src {
                        arrivals[d] = local[i] + dl.dl_proc;
                    }
                }
                // Other groups: ship once to each group's proxy (via CXL in
                // the disaggregated organization, host forwarding
                // otherwise), then broadcast within that group.
                if dl.cxl.is_some() {
                    let src_port = dl.proxy[gs];
                    let at_port = if src == src_port {
                        now
                    } else {
                        dl.send(now, src, src_port, bytes)
                    };
                    for g in 0..dl.groups.len() {
                        if g == gs {
                            continue;
                        }
                        let proxy = dl.proxy[g];
                        let landed = dl
                            .cxl
                            .as_mut()
                            .expect("checked is_some")
                            .transfer(at_port, gs, g, bytes);
                        let (_, lp) = dl.of[proxy];
                        let sub = dl.nets[g].broadcast(landed + dl.dl_proc, lp, bytes);
                        for (i, &d) in dl.groups[g].clone().iter().enumerate() {
                            arrivals[d] = if d == proxy {
                                landed
                            } else {
                                sub[i] + dl.dl_proc
                            };
                        }
                    }
                    return arrivals;
                }
                for g in 0..dl.groups.len() {
                    if g == gs {
                        continue;
                    }
                    let proxy = dl.proxy[g];
                    let (reg, scan_ch, scan) = if dl.proxy_polling {
                        let own_proxy = dl.proxy[gs];
                        let reg = if own_proxy == src {
                            now
                        } else {
                            dl.send(now, src, own_proxy, NOTIFY_BYTES)
                        };
                        (reg, cfg.channel_of(own_proxy), 1)
                    } else {
                        (now, cfg.channel_of(src), cfg.dimms_per_channel())
                    };
                    let disc = host.discover(reg, scan_ch, scan);
                    let at_proxy =
                        host.forward(disc, cfg.channel_of(src), cfg.channel_of(proxy), bytes);
                    let (_, lp) = dl.of[proxy];
                    let sub = dl.nets[g].broadcast(at_proxy + dl.dl_proc, lp, bytes);
                    for (i, &d) in dl.groups[g].clone().iter().enumerate() {
                        arrivals[d] = if d == proxy {
                            at_proxy
                        } else {
                            sub[i] + dl.dl_proc
                        };
                    }
                }
            }
        }
        arrivals
    }

    /// Bytes moved on mechanism-private media (links or dedicated bus).
    pub fn private_bytes(&self) -> u64 {
        match self {
            Interconnect::DimmLink(dl) => {
                dl.link_bytes() + dl.cxl.as_ref().map_or(0, |c| c.bytes_moved())
            }
            Interconnect::DedicatedBus { bus, .. } => bus.bytes_moved(),
            _ => 0,
        }
    }

    /// Access to DIMM-Link state (distance matrices, proxies), if this is a
    /// DIMM-Link interconnect.
    pub fn dimm_link(&self) -> Option<&DlState> {
        match self {
            Interconnect::DimmLink(dl) => Some(dl),
            _ => None,
        }
    }
}

/// The inter-DIMM distance matrix used by Algorithm 1's cost table:
/// intra-group hop counts, with host-forwarded pairs charged a large
/// constant (they are an order of magnitude slower than a link hop).
pub fn distance_matrix(cfg: &SystemConfig, idc: &Interconnect) -> Vec<Vec<u64>> {
    const HOST_PENALTY: u64 = 24;
    let n = cfg.dimms;
    match idc {
        Interconnect::DimmLink(dl) => (0..n)
            .map(|a| {
                (0..n)
                    .map(|b| match dl.hop_distance(a, b) {
                        Some(h) => h as u64,
                        None => HOST_PENALTY,
                    })
                    .collect()
            })
            .collect(),
        // Distance-oblivious mechanisms: every remote DIMM costs the same.
        _ => (0..n)
            .map(|a| (0..n).map(|b| if a == b { 0 } else { 1 }).collect())
            .collect(),
    }
}

/// Conservative lookahead for the parallel engine: a lower bound on the
/// latency of *any* cross-DIMM interaction under `cfg`.
///
/// Two bounds are combined:
///
/// * **Probed unloaded latency** — every ordered DIMM pair is probed once
///   with a minimum-size data packet and once with a synchronization packet
///   on a fresh interconnect and host path. Probes are spaced 100 µs apart
///   (an exact multiple of every poll period in use) so reservations from
///   one probe cannot delay the next; the spacing is subtracted back out.
/// * **Analytic host floor** — interrupt-driven discovery coalesces
///   pending requests, so under load a forwarded packet can skip the
///   discovery wait the unloaded probe observes. The floor charges only
///   what every host-forwarded packet must always pay: two channel
///   crossings, the forwarding CPU occupancy, and the fixed processing
///   latency.
///
/// The result is floored at 1 ns so the epoch width is never degenerate.
/// Correctness of the parallel engine does not depend on this value being
/// a true lower bound — deliveries are additionally clamped to the epoch
/// boundary — but a tight value keeps the model faithful and the epochs
/// wide.
pub fn min_cross_latency(cfg: &SystemConfig) -> Ps {
    let mut idc = Interconnect::new(cfg);
    let mut host = HostPath::new(cfg, &idc.proxy_channels(cfg));
    let spacing = Ps::from_us(100);
    let mut t = spacing;
    let mut min = Ps::MAX;
    for src in 0..cfg.dimms {
        for dst in 0..cfg.dimms {
            if src == dst {
                continue;
            }
            let (data, _) = idc.unicast(&mut host, cfg, t, src, dst, wire_bytes(0));
            min = min.min(data.saturating_sub(t));
            t += spacing;
            let (sync, _) = idc.sync_unicast(&mut host, cfg, t, src, dst, NOTIFY_BYTES);
            min = min.min(sync.saturating_sub(t));
            t += spacing;
        }
    }
    let host_floor = cfg.channel_latency
        + cfg.channel_latency
        + cfg.fwd_proc
        + cfg.fwd_occupancy.min(cfg.sync_fwd_occupancy);
    min.min(host_floor).max(Ps::from_ns(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dl_cfg() -> SystemConfig {
        SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink)
    }

    #[test]
    fn min_cross_latency_is_positive_and_below_any_probe() {
        for kind in [
            IdcKind::CpuForwarding,
            IdcKind::DedicatedBus,
            IdcKind::AbcDimm,
            IdcKind::DimmLink,
            IdcKind::DimmLinkCxl,
        ] {
            let cfg = SystemConfig::nmp(16, 8).with_idc(kind);
            let w = min_cross_latency(&cfg);
            assert!(w >= Ps::from_ns(1), "{kind}: degenerate lookahead {w}");
            // An unloaded minimum-size unicast can never beat the bound.
            let mut idc = Interconnect::new(&cfg);
            let mut host = HostPath::new(&cfg, &idc.proxy_channels(&cfg));
            let (arrival, _) = idc.unicast(&mut host, &cfg, Ps::ZERO, 0, 1, wire_bytes(0));
            assert!(w <= arrival, "{kind}: lookahead {w} above probe {arrival}");
        }
    }

    #[test]
    fn wire_bytes_matches_protocol_flits() {
        assert_eq!(wire_bytes(0), 16); // read request: one flit
        assert_eq!(wire_bytes(64), 80); // one-line payload
        assert_eq!(wire_bytes(256), 272); // max packet: 17 flits
    }

    #[test]
    fn dl_intra_group_avoids_host() {
        let cfg = dl_cfg();
        let mut idc = Interconnect::new(&cfg);
        let mut host = HostPath::new(&cfg, &idc.proxy_channels(&cfg));
        let (arrival, route) = idc.unicast(&mut host, &cfg, Ps::ZERO, 0, 3, 80);
        assert_eq!(route, Route::Link);
        assert!(arrival < Ps::from_ns(100), "link path too slow: {arrival}");
        assert_eq!(host.forwarded_packets(), 0);
    }

    #[test]
    fn dl_inter_group_uses_host() {
        let cfg = dl_cfg();
        let mut idc = Interconnect::new(&cfg);
        let mut host = HostPath::new(&cfg, &idc.proxy_channels(&cfg));
        let (arrival, route) = idc.unicast(&mut host, &cfg, Ps::ZERO, 0, 12, 80);
        assert_eq!(route, Route::HostForward);
        assert!(arrival > Ps::from_ns(200), "host path too fast: {arrival}");
        assert_eq!(host.forwarded_packets(), 1);
    }

    #[test]
    fn mcn_always_pays_discovery_and_two_channels() {
        let cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::CpuForwarding);
        let mut idc = Interconnect::new(&cfg);
        let mut host = HostPath::new(&cfg, &[]);
        let (arrival, route) = idc.unicast(&mut host, &cfg, Ps::ZERO, 0, 1, 80);
        assert_eq!(route, Route::HostForward);
        // Discovery alone is >= poll boundary; total far above a link hop.
        assert!(arrival > Ps::from_ns(150));
    }

    #[test]
    fn aim_bus_serializes_everything() {
        let cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DedicatedBus);
        let mut idc = Interconnect::new(&cfg);
        let mut host = HostPath::new(&cfg, &[]);
        let big = 1_000_000u64;
        let (a, r) = idc.unicast(&mut host, &cfg, Ps::ZERO, 0, 1, big);
        assert_eq!(r, Route::Bus);
        // A disjoint pair still queues behind the first transfer.
        let (b, _) = idc.unicast(&mut host, &cfg, Ps::ZERO, 4, 5, big);
        assert!(b > a, "dedicated bus must serialize disjoint pairs");
        assert_eq!(idc.private_bytes(), 2 * big);
    }

    #[test]
    fn dl_disjoint_pairs_scale_unlike_aim() {
        let cfg = dl_cfg();
        let mut idc = Interconnect::new(&cfg);
        let mut host = HostPath::new(&cfg, &idc.proxy_channels(&cfg));
        let big = 1_000_000u64;
        let (a, _) = idc.unicast(&mut host, &cfg, Ps::ZERO, 0, 1, big);
        let (b, _) = idc.unicast(&mut host, &cfg, Ps::ZERO, 2, 3, big);
        assert_eq!(a, b, "disjoint chain links must not contend");
    }

    #[test]
    fn broadcast_reaches_all_on_every_mechanism() {
        for kind in [
            IdcKind::CpuForwarding,
            IdcKind::DedicatedBus,
            IdcKind::AbcDimm,
            IdcKind::DimmLink,
        ] {
            let cfg = SystemConfig::nmp(16, 8).with_idc(kind);
            let mut idc = Interconnect::new(&cfg);
            let mut host = HostPath::new(&cfg, &idc.proxy_channels(&cfg));
            let arrivals = idc.broadcast(&mut host, &cfg, Ps::ZERO, 2, 272);
            assert_eq!(arrivals.len(), 16);
            for (d, a) in arrivals.iter().enumerate() {
                if d != 2 {
                    assert!(*a > Ps::ZERO, "{kind}: DIMM {d} unreached");
                }
            }
        }
    }

    #[test]
    fn broadcast_throughput_ordering_matches_paper() {
        // Every DIMM broadcasts a burst of packets concurrently (the
        // all-to-all pattern of PR-BC/SSSP-BC). Completion ordering for the
        // last delivery must match Fig. 12: AIM-BC (idealized single-
        // transaction bus) beats DIMM-Link, which beats ABC-DIMM, which
        // beats MCN-BC.
        let mut finish = std::collections::HashMap::new();
        for kind in [
            IdcKind::CpuForwarding,
            IdcKind::DedicatedBus,
            IdcKind::AbcDimm,
            IdcKind::DimmLink,
        ] {
            let cfg = SystemConfig::nmp(16, 8).with_idc(kind);
            let mut idc = Interconnect::new(&cfg);
            let mut host = HostPath::new(&cfg, &idc.proxy_channels(&cfg));
            let mut last = Ps::ZERO;
            for round in 0..8 {
                for src in 0..16 {
                    let arrivals =
                        idc.broadcast(&mut host, &cfg, Ps::from_ns(round * 10), src, 272);
                    last = last.max(arrivals.into_iter().max().unwrap());
                }
            }
            finish.insert(kind, last);
        }
        // AIM-BC (idealized single bus transaction) and DIMM-Link trade
        // latency against aggregate link bandwidth: both must be fast and
        // within 2x of each other; end-to-end ordering is exercised by the
        // fig12 bench.
        let aim = finish[&IdcKind::DedicatedBus].as_ps() as f64;
        let dl = finish[&IdcKind::DimmLink].as_ps() as f64;
        assert!(
            (0.5..=2.0).contains(&(aim / dl)),
            "AIM {} vs DL {} diverged",
            finish[&IdcKind::DedicatedBus],
            finish[&IdcKind::DimmLink]
        );
        assert!(
            finish[&IdcKind::DimmLink] < finish[&IdcKind::AbcDimm],
            "DL {} vs ABC {}",
            finish[&IdcKind::DimmLink],
            finish[&IdcKind::AbcDimm]
        );
        assert!(
            finish[&IdcKind::AbcDimm] <= finish[&IdcKind::CpuForwarding],
            "ABC {} vs MCN {}",
            finish[&IdcKind::AbcDimm],
            finish[&IdcKind::CpuForwarding]
        );
    }

    #[test]
    fn distance_matrix_reflects_topology() {
        let cfg = dl_cfg();
        let idc = Interconnect::new(&cfg);
        let d = distance_matrix(&cfg, &idc);
        assert_eq!(d[0][0], 0);
        assert_eq!(d[0][1], 1);
        assert_eq!(d[0][7], 7);
        assert_eq!(d[0][8], 24); // cross-group penalty
                                 // MCN is distance-oblivious.
        let cfg2 = SystemConfig::nmp(16, 8).with_idc(IdcKind::CpuForwarding);
        let idc2 = Interconnect::new(&cfg2);
        let d2 = distance_matrix(&cfg2, &idc2);
        assert_eq!(d2[0][1], 1);
        assert_eq!(d2[0][15], 1);
    }

    #[test]
    fn proxies_sit_mid_group() {
        let cfg = dl_cfg();
        let idc = Interconnect::new(&cfg);
        let dl = idc.dimm_link().unwrap();
        assert_eq!(dl.proxies(), &[4, 12]);
        assert_eq!(dl.group_of(4), 0);
        assert_eq!(dl.hop_distance(0, 4), Some(4));
        assert_eq!(dl.hop_distance(0, 12), None);
    }
}

#[cfg(test)]
mod cxl_tests {
    use super::*;
    use crate::config::{IdcKind, SystemConfig};

    fn cxl_cfg() -> SystemConfig {
        SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLinkCxl)
    }

    #[test]
    fn inter_blade_avoids_the_host_entirely() {
        let cfg = cxl_cfg();
        let mut idc = Interconnect::new(&cfg);
        let mut host = HostPath::new(&cfg, &idc.proxy_channels(&cfg));
        let (arrival, route) = idc.unicast(&mut host, &cfg, Ps::ZERO, 0, 12, 80);
        assert_eq!(route, Route::Cxl);
        assert_eq!(host.forwarded_packets(), 0);
        // Links to the port + fabric latency + links from the port: well
        // under the host-forwarded path but above an intra-group hop.
        assert!(arrival > Ps::from_ns(250), "{arrival}");
        assert!(arrival < Ps::from_ns(600), "{arrival}");
    }

    #[test]
    fn cxl_beats_host_forwarding_inter_group() {
        let host_based = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
        let mut idc_h = Interconnect::new(&host_based);
        let mut hp = HostPath::new(&host_based, &idc_h.proxy_channels(&host_based));
        let (t_host, _) = idc_h.unicast(&mut hp, &host_based, Ps::ZERO, 0, 12, 80);

        let cfg = cxl_cfg();
        let mut idc_c = Interconnect::new(&cfg);
        let mut hp_c = HostPath::new(&cfg, &idc_c.proxy_channels(&cfg));
        let (t_cxl, _) = idc_c.unicast(&mut hp_c, &cfg, Ps::ZERO, 0, 12, 80);
        assert!(
            t_cxl < t_host,
            "CXL inter-blade ({t_cxl}) should beat host forwarding ({t_host})"
        );
    }

    #[test]
    fn intra_blade_still_uses_links() {
        let cfg = cxl_cfg();
        let mut idc = Interconnect::new(&cfg);
        let mut host = HostPath::new(&cfg, &idc.proxy_channels(&cfg));
        let (_, route) = idc.unicast(&mut host, &cfg, Ps::ZERO, 0, 3, 80);
        assert_eq!(route, Route::Link);
    }

    #[test]
    fn cxl_broadcast_reaches_all_blades() {
        let cfg = cxl_cfg();
        let mut idc = Interconnect::new(&cfg);
        let mut host = HostPath::new(&cfg, &idc.proxy_channels(&cfg));
        let arrivals = idc.broadcast(&mut host, &cfg, Ps::ZERO, 2, 272);
        for (d, a) in arrivals.iter().enumerate() {
            if d != 2 {
                assert!(*a > Ps::ZERO, "DIMM {d} unreached");
            }
        }
        assert_eq!(host.forwarded_packets(), 0);
        assert!(idc.private_bytes() > 0);
    }

    #[test]
    fn cxl_ports_serialize_per_blade() {
        let cfg = cxl_cfg();
        let mut idc = Interconnect::new(&cfg);
        let mut host = HostPath::new(&cfg, &idc.proxy_channels(&cfg));
        let big = 1_000_000u64;
        // Two transfers leaving the same blade contend for its port.
        let (a, _) = idc.unicast(&mut host, &cfg, Ps::ZERO, 4, 12, big);
        let (b, _) = idc.unicast(&mut host, &cfg, Ps::ZERO, 4, 12, big);
        assert!(
            b > a + Ps::from_us(20),
            "port contention missing: {a} then {b}"
        );
    }
}
