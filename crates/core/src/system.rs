//! The DIMM-NMP system simulator: trace-driven NMP cores with bounded
//! memory-level parallelism, private L1s and a shared per-DIMM L2, per-DIMM
//! DDR4 controllers, and one of the four IDC mechanisms for remote traffic.
//!
//! The paper's coarse-grained execution flow is assumed: the host has
//! already loaded data and kernels, DIMMs are in NMP-Access mode, and the
//! host only participates through polling and packet forwarding
//! ([`crate::host::HostPath`]).

use crate::config::{SyncScheme, SystemConfig};
use crate::host::HostPath;
use crate::idc::{distance_matrix, wire_bytes, Interconnect, Route, NOTIFY_BYTES};
use dl_engine::stats::StatSet;
use dl_engine::{EventQueue, Ps, Resource, RunStatus};
use dl_mem::{AccessKind, Cache, CacheOutcome, DimmAddressMap, MemController, MemRequest};
use dl_placement::AccessProfile;
use dl_workloads::{Op, Workload};
use std::collections::BTreeMap;

/// Cycles of local bookkeeping at each synchronization stage.
const SYNC_PROC: Ps = Ps::from_ns(5);
/// Sync message payload (a flag/sequence number): one flit on the wire.
const SYNC_BYTES: u64 = NOTIFY_BYTES;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    /// Window full; resumes on the next completion.
    WaitWindow,
    /// Needs an empty window before executing the op at `pc`.
    WaitDrain,
    /// Blocked on one specific transaction (atomic / broadcast).
    WaitTxn(u64),
    /// Arrived at a barrier, waiting for release.
    WaitBarrier,
    Done,
}

#[derive(Debug)]
struct CoreState {
    pc: usize,
    limit: usize,
    outstanding: Vec<(u64, bool)>,
    status: Status,
    ready_at: Ps,
    blocked_at: Ps,
    idc_stall: Ps,
    mem_stall: Ps,
    sync_stall: Ps,
    finish: Option<Ps>,
}

#[derive(Debug, Clone, Copy)]
enum TxnClass {
    /// A local DRAM access a core is waiting on.
    LocalMem { thread: usize },
    /// DRAM access nobody waits for (writes, writebacks, remote-write
    /// landings).
    Background,
    /// A remote read being serviced at its home DIMM; on completion the
    /// response is sent back.
    RemoteReadAtHome { thread: usize, home: usize },
}

#[derive(Debug, Clone, Copy)]
enum NetThen {
    /// A remote read request arrived at its home DIMM: start the DRAM read.
    StartRemoteRead {
        thread: usize,
        home: usize,
        addr: u64,
    },
    /// A remote write arrived: complete the issuing core's slot and write
    /// DRAM in the background.
    LandRemoteWrite {
        thread: usize,
        home: usize,
        addr: u64,
    },
    /// A read response (or atomic response) arrived back at the core.
    Complete { thread: usize, remote: bool },
    /// An atomic request arrived at its home DIMM: serialize and respond.
    AtomicAtHome {
        thread: usize,
        home: usize,
        addr: u64,
    },
    /// A broadcast finished delivering everywhere.
    BroadcastDone { thread: usize },
}

#[derive(Debug)]
enum Ev {
    Wake(usize),
    MemTick(usize),
    Net(u64),
}

#[derive(Debug, Default)]
struct BarrierGroupAgg {
    arrived: usize,
    ready_at: Ps,
}

#[derive(Debug)]
struct BarrierState {
    /// Threads participating (all of them; traces have balanced barriers).
    total: usize,
    arrived: usize,
    /// Per-DIMM aggregation (hierarchical): count and latest local arrival.
    dimm_agg: BTreeMap<usize, BarrierGroupAgg>,
    /// Per-group aggregation: count of completed DIMMs and latest arrival
    /// at the group master.
    group_agg: BTreeMap<usize, BarrierGroupAgg>,
    /// DIMMs (with ≥1 thread) per group and threads per DIMM, fixed per
    /// placement.
    threads_on_dimm: BTreeMap<usize, usize>,
    dimms_in_group: BTreeMap<usize, usize>,
    /// Completed-group arrivals at the global master.
    global_arrived: usize,
    global_ready: Ps,
    /// Threads waiting for release.
    waiting: Vec<usize>,
}

/// Aggregate outcome of one simulation.
#[derive(Debug, Clone)]
pub struct RawRun {
    /// End-to-end simulated time.
    pub elapsed: Ps,
    /// All counters.
    pub stats: StatSet,
    /// Per-thread × per-DIMM traffic counts (Algorithm 1's `M` table).
    pub profile: AccessProfile,
    /// Whether the run finished or was cut off by the configured
    /// [`dl_engine::RunBudget`].
    pub status: RunStatus,
}

/// The NMP system simulator. Construct with [`NmpSystem::new`], run with
/// [`NmpSystem::run`].
pub struct NmpSystem<'w> {
    cfg: SystemConfig,
    workload: &'w Workload,
    placement: Vec<usize>,
    profiling: bool,
    events: EventQueue<Ev>,
    cores: Vec<CoreState>,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    mcs: Vec<MemController>,
    mc_next: Vec<Ps>,
    map: DimmAddressMap,
    idc: Interconnect,
    host: HostPath,
    atomics: Vec<Resource>,
    /// Per-DIMM synchronization master core: processes one sync message at
    /// a time (the serialization hierarchical sync alleviates).
    sync_units: Vec<Resource>,
    barrier: BarrierState,
    txn_mem: BTreeMap<u64, TxnClass>,
    txn_net: BTreeMap<u64, NetThen>,
    next_txn: u64,
    now: Ps,
    done: usize,
    // traffic counters (bytes)
    local_bytes: u64,
    link_unicast_bytes: u64,
    fwd_unicast_bytes: u64,
    bus_unicast_bytes: u64,
    cxl_unicast_bytes: u64,
    broadcast_bytes: u64,
    remote_reads: u64,
    remote_writes: u64,
    atomic_ops: u64,
    barriers_passed: u64,
    profile: AccessProfile,
    ev_wake: u64,
    ev_mem: u64,
    ev_net: u64,
    remote_issue: BTreeMap<u64, Ps>,
    remote_rtt: dl_engine::stats::Histogram,
    call_order: crate::idc::CallOrderStats,
}

impl<'w> NmpSystem<'w> {
    /// Builds a system running `workload` with threads placed per
    /// `placement` (`placement[t]` = DIMM of thread `t`).
    ///
    /// `limit_ops` truncates each trace (profiling runs); barriers are
    /// treated as local no-ops in that mode since truncated traces are not
    /// barrier-balanced.
    ///
    /// # Panics
    /// Panics if the config is invalid, the placement length mismatches, or
    /// a DIMM is assigned more threads than it has cores.
    pub fn new(
        workload: &'w Workload,
        cfg: &SystemConfig,
        placement: &[usize],
        limit_ops: Option<usize>,
    ) -> Self {
        cfg.validate().expect("invalid system configuration");
        let threads = workload.traces().len();
        assert_eq!(placement.len(), threads, "one DIMM per thread");
        let mut load = vec![0usize; cfg.dimms];
        for &d in placement {
            assert!(d < cfg.dimms, "placement targets DIMM {d} out of range");
            load[d] += 1;
        }
        assert!(
            load.iter().all(|&l| l <= cfg.cores_per_dimm),
            "placement exceeds per-DIMM core count: {load:?}"
        );
        assert!(
            workload.layout().dimms() == cfg.dimms,
            "workload was generated for {} DIMMs, system has {}",
            workload.layout().dimms(),
            cfg.dimms
        );

        let idc = Interconnect::new(cfg);
        let host = HostPath::new(cfg, &idc.proxy_channels(cfg));
        let profiling = limit_ops.is_some();
        let cores = (0..threads)
            .map(|t| {
                let len = workload.traces()[t].len();
                CoreState {
                    pc: 0,
                    limit: limit_ops.map_or(len, |l| l.min(len)),
                    outstanding: Vec::with_capacity(cfg.nmp_mlp),
                    status: Status::Ready,
                    ready_at: Ps::ZERO,
                    blocked_at: Ps::ZERO,
                    idc_stall: Ps::ZERO,
                    mem_stall: Ps::ZERO,
                    sync_stall: Ps::ZERO,
                    finish: None,
                }
            })
            .collect();

        let mut threads_on_dimm = BTreeMap::new();
        for &d in placement {
            *threads_on_dimm.entry(d).or_insert(0) += 1;
        }
        let mut dimms_in_group: BTreeMap<usize, usize> = BTreeMap::new();
        for &d in threads_on_dimm.keys() {
            *dimms_in_group.entry(cfg.group_of(d)).or_insert(0) += 1;
        }

        let mut events = EventQueue::new();
        for t in 0..threads {
            events.push(Ps::ZERO, Ev::Wake(t));
        }

        NmpSystem {
            workload,
            placement: placement.to_vec(),
            profiling,
            events,
            cores,
            l1: (0..threads).map(|_| Cache::new(cfg.nmp_l1)).collect(),
            l2: (0..cfg.dimms).map(|_| Cache::new(cfg.nmp_l2)).collect(),
            mcs: (0..cfg.dimms)
                .map(|d| MemController::new(format!("dimm{d}"), &cfg.dram))
                .collect(),
            mc_next: vec![Ps::MAX; cfg.dimms],
            map: DimmAddressMap::new(&cfg.dram),
            idc,
            host,
            atomics: (0..cfg.dimms)
                .map(|d| Resource::new(format!("dimm{d}.atomic")))
                .collect(),
            sync_units: (0..cfg.dimms)
                .map(|d| Resource::new(format!("dimm{d}.sync-master")))
                .collect(),
            barrier: BarrierState {
                total: threads,
                arrived: 0,
                dimm_agg: BTreeMap::new(),
                group_agg: BTreeMap::new(),
                threads_on_dimm,
                dimms_in_group,
                global_arrived: 0,
                global_ready: Ps::ZERO,
                waiting: Vec::new(),
            },
            txn_mem: BTreeMap::new(),
            txn_net: BTreeMap::new(),
            next_txn: 0,
            now: Ps::ZERO,
            done: 0,
            local_bytes: 0,
            link_unicast_bytes: 0,
            fwd_unicast_bytes: 0,
            bus_unicast_bytes: 0,
            cxl_unicast_bytes: 0,
            broadcast_bytes: 0,
            remote_reads: 0,
            remote_writes: 0,
            atomic_ops: 0,
            barriers_passed: 0,
            profile: AccessProfile::new(threads, cfg.dimms),
            ev_wake: 0,
            ev_mem: 0,
            ev_net: 0,
            remote_issue: BTreeMap::new(),
            remote_rtt: dl_engine::stats::Histogram::new(),
            call_order: crate::idc::CallOrderStats::default(),
            cfg: cfg.clone(),
        }
    }

    /// Runs to completion (or until the configured [`dl_engine::RunBudget`]
    /// is exceeded) and collects results.
    ///
    /// The budget check is deterministic: it reads only the event queue's
    /// scheduled-event counter and the simulated clock, so the same
    /// configuration stops at exactly the same point on every machine.
    ///
    /// # Panics
    /// Panics on deadlock (event queue drained with live threads — e.g.
    /// barrier-unbalanced traces) or if the hard backstop event budget is
    /// exhausted (a runaway simulation with no configured budget).
    pub fn run(mut self) -> RawRun {
        const EVENT_BUDGET: u64 = 2_000_000_000;
        let mut status = RunStatus::Completed;
        while let Some((t, ev)) = self.events.pop() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            match ev {
                Ev::Wake(c) => {
                    self.ev_wake += 1;
                    self.advance_core(c)
                }
                Ev::MemTick(d) => {
                    self.ev_mem += 1;
                    self.mem_tick(d)
                }
                Ev::Net(id) => {
                    self.ev_net += 1;
                    self.net_event(id)
                }
            }
            assert!(
                self.events.total_scheduled() < EVENT_BUDGET,
                "event budget exhausted — runaway simulation"
            );
            if self.done == self.cores.len() {
                break;
            }
            if let Some(kind) = self
                .cfg
                .budget
                .check(self.events.total_scheduled(), self.now)
            {
                status = RunStatus::BudgetExceeded(kind);
                break;
            }
        }
        if status.is_complete() {
            assert_eq!(
                self.done,
                self.cores.len(),
                "deadlock: {} of {} threads finished (unbalanced barriers?)",
                self.done,
                self.cores.len()
            );
        }
        self.collect(status)
    }

    fn alloc_txn(&mut self) -> u64 {
        self.next_txn += 1;
        self.next_txn
    }

    // ------------------------------------------------------------------
    // Core execution
    // ------------------------------------------------------------------

    fn advance_core(&mut self, c: usize) {
        if self.cores[c].status != Status::Ready {
            return; // stale wake
        }
        let mut t = self.now.max(self.cores[c].ready_at);
        let horizon = self.events.peek_time().unwrap_or(Ps::MAX);
        let trace = self.workload.traces()[c].ops();

        let mut horizon = horizon;
        loop {
            // Refresh the horizon: our own issues may have scheduled events.
            horizon = horizon.min(self.events.peek_time().unwrap_or(Ps::MAX));
            // Yield if we have run ahead of the event queue.
            if t > horizon {
                self.cores[c].ready_at = t;
                self.events.push(t, Ev::Wake(c));
                return;
            }
            if self.cores[c].pc >= self.cores[c].limit {
                // Trace finished; drain outstanding requests.
                if self.cores[c].outstanding.is_empty() {
                    self.cores[c].status = Status::Done;
                    self.cores[c].finish = Some(t);
                    self.done += 1;
                } else {
                    self.cores[c].status = Status::WaitDrain;
                    self.cores[c].blocked_at = t;
                }
                return;
            }
            let op = trace[self.cores[c].pc];
            match op {
                Op::Comp(cycles) => {
                    self.cores[c].pc += 1;
                    t += self.cfg.nmp_freq.cycles(cycles as u64);
                }
                Op::Load { addr, cacheable } | Op::Store { addr, cacheable } => {
                    let is_write = matches!(op, Op::Store { .. });
                    self.record_profile(c, addr);
                    if cacheable {
                        match self.cache_access(c, addr, is_write, t) {
                            CacheLookup::Hit(lat) => {
                                self.cores[c].pc += 1;
                                t += lat;
                                continue;
                            }
                            CacheLookup::Miss { writeback } => {
                                if let Some(victim) = writeback {
                                    self.background_write(c, victim, t);
                                }
                                // fall through to the memory issue below
                            }
                        }
                    }
                    if self.cores[c].outstanding.len() >= self.cfg.nmp_mlp {
                        self.cores[c].status = Status::WaitWindow;
                        self.cores[c].blocked_at = t;
                        self.cores[c].ready_at = t;
                        return;
                    }
                    self.cores[c].pc += 1;
                    self.issue_mem(c, addr, is_write, t);
                    t += self.cfg.nmp_freq.cycles(1);
                }
                Op::Atomic { addr } => {
                    if !self.cores[c].outstanding.is_empty() {
                        self.cores[c].status = Status::WaitDrain;
                        self.cores[c].blocked_at = t;
                        self.cores[c].ready_at = t;
                        return;
                    }
                    self.record_profile(c, addr);
                    self.cores[c].pc += 1;
                    self.issue_atomic(c, addr, t);
                    return;
                }
                Op::Broadcast { addr, bytes } => {
                    if self.cores[c].outstanding.len() >= self.cfg.nmp_mlp {
                        self.cores[c].status = Status::WaitWindow;
                        self.cores[c].blocked_at = t;
                        self.cores[c].ready_at = t;
                        return;
                    }
                    self.record_profile(c, addr);
                    self.cores[c].pc += 1;
                    self.issue_broadcast(c, addr, bytes, t);
                    t += self.cfg.nmp_freq.cycles(2);
                }
                Op::Barrier => {
                    if self.profiling {
                        // Barriers are meaningless on truncated traces.
                        self.cores[c].pc += 1;
                        t += self.cfg.nmp_freq.cycles(10);
                        continue;
                    }
                    if !self.cores[c].outstanding.is_empty() {
                        self.cores[c].status = Status::WaitDrain;
                        self.cores[c].blocked_at = t;
                        self.cores[c].ready_at = t;
                        return;
                    }
                    self.cores[c].pc += 1;
                    self.cores[c].status = Status::WaitBarrier;
                    self.cores[c].blocked_at = t;
                    self.barrier_arrive(c, t);
                    return;
                }
            }
        }
    }

    /// Resumes a core after its blocking condition cleared.
    fn unblock(&mut self, c: usize, at: Ps, was_remote: bool) {
        let core = &mut self.cores[c];
        let stall = at.saturating_sub(core.blocked_at);
        match core.status {
            Status::WaitWindow | Status::WaitDrain | Status::WaitTxn(_) => {
                if was_remote {
                    core.idc_stall += stall;
                } else {
                    core.mem_stall += stall;
                }
            }
            Status::WaitBarrier => core.sync_stall += stall,
            _ => {}
        }
        core.status = Status::Ready;
        core.ready_at = at;
        self.events.push(at, Ev::Wake(c));
    }

    // ------------------------------------------------------------------
    // Memory path
    // ------------------------------------------------------------------

    fn cache_access(&mut self, c: usize, addr: u64, is_write: bool, _t: Ps) -> CacheLookup {
        let l1_lat = self
            .cfg
            .nmp_freq
            .cycles(self.l1[c].hit_latency_cycles() as u64);
        match self.l1[c].access(addr, is_write) {
            CacheOutcome::Hit => CacheLookup::Hit(l1_lat),
            CacheOutcome::Miss { writeback } => {
                let dimm = self.placement[c];
                let l2_lat = self
                    .cfg
                    .nmp_freq
                    .cycles(self.l2[dimm].hit_latency_cycles() as u64);
                // L1 victims land in the shared L2.
                let mut victim_to_mem = None;
                if let Some(v) = writeback {
                    if let CacheOutcome::Miss {
                        writeback: Some(v2),
                    } = self.l2[dimm].access(v, true)
                    {
                        victim_to_mem = Some(v2);
                    }
                }
                match self.l2[dimm].access(addr, is_write) {
                    // A victim evicted by the L1-writeback insertion is
                    // absorbed on the hit path (modeling simplification:
                    // its memory write happens off the critical path).
                    CacheOutcome::Hit => CacheLookup::Hit(l1_lat + l2_lat),
                    CacheOutcome::Miss { writeback: wb2 } => CacheLookup::Miss {
                        writeback: wb2.or(victim_to_mem),
                    },
                }
            }
        }
    }

    fn record_profile(&mut self, c: usize, addr: u64) {
        self.profile
            .record(c, self.workload.layout().dimm_of(addr), 1);
    }

    /// All interconnect sends funnel through here so call-time monotonicity
    /// can be checked (FIFO resources assume near-time-ordered reservation).
    fn idc_unicast(&mut self, now: Ps, src: usize, dst: usize, bytes: u64) -> (Ps, Route) {
        self.call_order.observe(now);
        let (arrival, route) = self
            .idc
            .unicast(&mut self.host, &self.cfg, now, src, dst, bytes);
        self.count_route(route, bytes);
        (arrival, route)
    }

    fn count_route(&mut self, route: Route, bytes: u64) {
        match route {
            Route::Link => self.link_unicast_bytes += bytes,
            Route::HostForward => self.fwd_unicast_bytes += bytes,
            Route::Bus => self.bus_unicast_bytes += bytes,
            Route::Cxl => self.cxl_unicast_bytes += bytes,
            Route::Local | Route::ChannelBroadcast => {}
        }
    }

    fn issue_mem(&mut self, c: usize, addr: u64, is_write: bool, t: Ps) {
        let running = self.placement[c];
        let target = self.workload.layout().dimm_of(addr);
        let id = self.alloc_txn();
        if target == running {
            self.local_bytes += 64;
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            self.cores[c].outstanding.push((id, false));
            self.txn_mem.insert(id, TxnClass::LocalMem { thread: c });
            self.mc_enqueue(target, t, MemRequest::new(id, kind, self.decode(addr)));
        } else if is_write {
            self.remote_writes += 1;
            let bytes = wire_bytes(64);
            let (arrival, _) = self.idc_unicast(t, running, target, bytes);
            self.cores[c].outstanding.push((id, true));
            self.txn_net.insert(
                id,
                NetThen::LandRemoteWrite {
                    thread: c,
                    home: target,
                    addr,
                },
            );
            self.events.push(arrival, Ev::Net(id));
        } else {
            self.remote_reads += 1;
            let bytes = wire_bytes(0);
            let (arrival, _) = self.idc_unicast(t, running, target, bytes);
            self.cores[c].outstanding.push((id, true));
            self.remote_issue.insert(id, t);
            self.txn_net.insert(
                id,
                NetThen::StartRemoteRead {
                    thread: c,
                    home: target,
                    addr,
                },
            );
            self.events.push(arrival, Ev::Net(id));
        }
    }

    fn issue_atomic(&mut self, c: usize, addr: u64, t: Ps) {
        self.atomic_ops += 1;
        let running = self.placement[c];
        let target = self.workload.layout().dimm_of(addr);
        let id = self.alloc_txn();
        self.cores[c].status = Status::WaitTxn(id);
        self.cores[c].blocked_at = t;
        if target == running {
            let done = self.atomics[target].reserve(t, self.cfg.atomic_service);
            self.local_bytes += 128; // read + write of the line
            self.background_mem(target, done, addr, AccessKind::Write);
            self.txn_net.insert(
                id,
                NetThen::Complete {
                    thread: c,
                    remote: false,
                },
            );
            self.events.push(done, Ev::Net(id));
        } else {
            let bytes = wire_bytes(8);
            let (arrival, _) = self.idc_unicast(t, running, target, bytes);
            self.txn_net.insert(
                id,
                NetThen::AtomicAtHome {
                    thread: c,
                    home: target,
                    addr,
                },
            );
            self.events.push(arrival, Ev::Net(id));
        }
    }

    fn issue_broadcast(&mut self, c: usize, addr: u64, payload: u32, t: Ps) {
        let src = self.workload.layout().dimm_of(addr);
        let bytes = wire_bytes(payload as u64);
        let arrivals = self.idc.broadcast(&mut self.host, &self.cfg, t, src, bytes);
        self.broadcast_bytes += bytes * (self.cfg.dimms as u64 - 1);
        let done = arrivals.into_iter().max().unwrap_or(t);
        let id = self.alloc_txn();
        self.cores[c].outstanding.push((id, true));
        self.txn_net
            .insert(id, NetThen::BroadcastDone { thread: c });
        self.events.push(done, Ev::Net(id));
    }

    fn background_write(&mut self, c: usize, addr: u64, t: Ps) {
        let running = self.placement[c];
        let target = self.workload.layout().dimm_of(addr);
        if target == running {
            self.local_bytes += 64;
            self.background_mem(target, t, addr, AccessKind::Write);
        } else {
            // Dirty line belonging to a remote DIMM: posted remote write
            // that nobody waits for.
            self.remote_writes += 1;
            let bytes = wire_bytes(64);
            let (arrival, _) = self.idc_unicast(t, running, target, bytes);
            let id = self.alloc_txn();
            self.txn_net.insert(
                id,
                NetThen::LandRemoteWrite {
                    thread: usize::MAX,
                    home: target,
                    addr,
                },
            );
            self.events.push(arrival, Ev::Net(id));
        }
    }

    fn background_mem(&mut self, dimm: usize, at: Ps, addr: u64, kind: AccessKind) {
        let id = self.alloc_txn();
        self.txn_mem.insert(id, TxnClass::Background);
        self.mc_enqueue(dimm, at, MemRequest::new(id, kind, self.decode(addr)));
    }

    fn decode(&self, addr: u64) -> dl_mem::DimmAddr {
        self.map.decode(self.workload.layout().offset_of(addr))
    }

    fn mc_enqueue(&mut self, dimm: usize, at: Ps, req: MemRequest) {
        self.mcs[dimm].enqueue(at, req);
        let wake = at.max(self.now);
        if self.mc_next[dimm] > wake {
            self.mc_next[dimm] = wake;
            self.events.push(wake, Ev::MemTick(dimm));
        }
    }

    fn mem_tick(&mut self, dimm: usize) {
        // Exactly one live event per controller: anything not matching the
        // recorded wake time is a stale duplicate and must not spawn a
        // successor (that would chain events forever).
        if self.now != self.mc_next[dimm] {
            return;
        }
        self.mc_next[dimm] = Ps::MAX;
        let completions = self.mcs[dimm].service(self.now);
        for comp in completions {
            let Some(class) = self.txn_mem.remove(&comp.id) else {
                continue;
            };
            match class {
                TxnClass::Background => {}
                TxnClass::LocalMem { thread } => self.complete_slot(thread, comp.id, comp.at),
                TxnClass::RemoteReadAtHome { thread, home } => {
                    // Ship the data back to the requesting core, keeping the
                    // transaction id so the core's window slot is freed.
                    let running = self.placement[thread];
                    let bytes = wire_bytes(64);
                    let (arrival, _) = self.idc_unicast(comp.at, home, running, bytes);
                    self.txn_net.insert(
                        comp.id,
                        NetThen::Complete {
                            thread,
                            remote: true,
                        },
                    );
                    self.events.push(arrival, Ev::Net(comp.id));
                }
            }
        }
        if let Some(w) = self.mcs[dimm].next_wake() {
            if self.mc_next[dimm] > w {
                self.mc_next[dimm] = w;
                self.events.push(w, Ev::MemTick(dimm));
            }
        }
    }

    fn net_event(&mut self, id: u64) {
        let Some(then) = self.txn_net.remove(&id) else {
            return;
        };
        match then {
            NetThen::StartRemoteRead { thread, home, addr } => {
                self.local_bytes += 64;
                self.txn_mem
                    .insert(id, TxnClass::RemoteReadAtHome { thread, home });
                self.mc_enqueue(
                    home,
                    self.now,
                    MemRequest::new(id, AccessKind::Read, self.decode(addr)),
                );
            }
            NetThen::LandRemoteWrite { thread, home, addr } => {
                self.local_bytes += 64;
                self.background_mem(home, self.now, addr, AccessKind::Write);
                if thread != usize::MAX {
                    self.complete_slot(thread, id, self.now);
                }
            }
            NetThen::Complete { thread, remote } => {
                if let Some(issued) = self.remote_issue.remove(&id) {
                    self.remote_rtt
                        .record((self.now.saturating_sub(issued)).as_ps());
                }
                if let Status::WaitTxn(waited) = self.cores[thread].status {
                    debug_assert_eq!(waited, id);
                    self.unblock(thread, self.now, remote);
                } else {
                    self.complete_slot(thread, id, self.now);
                }
            }
            NetThen::AtomicAtHome { thread, home, addr } => {
                let done = self.atomics[home].reserve(self.now, self.cfg.atomic_service);
                self.local_bytes += 128;
                self.background_mem(home, done, addr, AccessKind::Write);
                let running = self.placement[thread];
                let bytes = wire_bytes(8);
                let (arrival, _) = self.idc_unicast(done, home, running, bytes);
                let rid = self.alloc_txn();
                self.txn_net.insert(
                    rid,
                    NetThen::Complete {
                        thread,
                        remote: true,
                    },
                );
                // Re-point the waiting core at the response transaction.
                if let Status::WaitTxn(_) = self.cores[thread].status {
                    self.cores[thread].status = Status::WaitTxn(rid);
                }
                self.events.push(arrival, Ev::Net(rid));
            }
            NetThen::BroadcastDone { thread } => self.complete_slot(thread, id, self.now),
        }
    }

    /// Frees a window slot and resumes the core if it was blocked.
    fn complete_slot(&mut self, c: usize, id: u64, at: Ps) {
        let core = &mut self.cores[c];
        let Some(pos) = core.outstanding.iter().position(|&(tid, _)| tid == id) else {
            return;
        };
        let (_, remote) = core.outstanding.swap_remove(pos);
        match core.status {
            Status::WaitWindow => self.unblock(c, at, remote),
            Status::WaitDrain if core.outstanding.is_empty() => self.unblock(c, at, remote),
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Barriers
    // ------------------------------------------------------------------

    fn barrier_arrive(&mut self, c: usize, t: Ps) {
        self.barrier.arrived += 1;
        self.barrier.waiting.push(c);
        let dimm = self.placement[c];
        match self.cfg.sync {
            SyncScheme::Central => {
                let master = self.global_master();
                let at_master = self.sync_hop(t, dimm, master);
                let absorbed = self.master_absorb(master, at_master);
                self.barrier.global_ready = self.barrier.global_ready.max(absorbed);
            }
            SyncScheme::Hierarchical => {
                // Stage 1: core -> DIMM master (local, serialized at the
                // master core).
                let local = t + self.cfg.local_sync_latency;
                let absorbed = self.master_absorb(dimm, local);
                let agg = self.barrier.dimm_agg.entry(dimm).or_default();
                agg.arrived += 1;
                agg.ready_at = agg.ready_at.max(absorbed);
                let dimm_threads = self.barrier.threads_on_dimm[&dimm];
                if agg.arrived == dimm_threads {
                    let dimm_done = agg.ready_at + SYNC_PROC;
                    self.barrier.dimm_agg.remove(&dimm);
                    // Stage 2: DIMM master -> group master.
                    let group = self.cfg.group_of(dimm);
                    let gmaster = self.group_master(group);
                    let at_gm = self.sync_hop(dimm_done, dimm, gmaster);
                    let at_gm = self.master_absorb(gmaster, at_gm);
                    let gagg = self.barrier.group_agg.entry(group).or_default();
                    gagg.arrived += 1;
                    gagg.ready_at = gagg.ready_at.max(at_gm);
                    if gagg.arrived == self.barrier.dimms_in_group[&group] {
                        let group_done = gagg.ready_at + SYNC_PROC;
                        self.barrier.group_agg.remove(&group);
                        // Stage 3: group master -> global master.
                        let at_global = self.sync_hop(group_done, gmaster, self.global_master());
                        let at_global = self.master_absorb(self.global_master(), at_global);
                        self.barrier.global_arrived += 1;
                        self.barrier.global_ready = self.barrier.global_ready.max(at_global);
                    }
                }
            }
        }
        if self.barrier.arrived == self.barrier.total {
            self.barrier_release();
        }
    }

    fn barrier_release(&mut self) {
        self.barriers_passed += 1;
        let release_from = self.barrier.global_ready + SYNC_PROC;
        let waiting = std::mem::take(&mut self.barrier.waiting);
        self.barrier.arrived = 0;
        self.barrier.global_arrived = 0;
        self.barrier.global_ready = Ps::ZERO;
        let master = self.global_master();
        match self.cfg.sync {
            SyncScheme::Central => {
                let mut waiting = waiting;
                waiting.sort_unstable();
                for c in waiting {
                    let dimm = self.placement[c];
                    // The master initiates release messages one at a time.
                    let sent = self.master_absorb(master, release_from);
                    let at = self.sync_hop(sent, master, dimm);
                    self.unblock(c, at, false);
                }
            }
            SyncScheme::Hierarchical => {
                // global master -> group masters -> DIMM masters -> cores.
                let mut dimm_release: BTreeMap<usize, Ps> = BTreeMap::new();
                // BTreeMap keys iterate in ascending order, which fixes the
                // resource reservation order without an explicit sort.
                let dimms: Vec<usize> = self.barrier.threads_on_dimm.keys().copied().collect();
                let mut group_release: BTreeMap<usize, Ps> = BTreeMap::new();
                let groups: Vec<usize> = self.barrier.dimms_in_group.keys().copied().collect();
                for g in groups {
                    let gm = self.group_master(g);
                    let sent = self.master_absorb(master, release_from);
                    let at = self.sync_hop(sent, master, gm);
                    group_release.insert(g, at + SYNC_PROC);
                }
                for d in dimms {
                    let g = self.cfg.group_of(d);
                    let gm = self.group_master(g);
                    let sent = self.master_absorb(gm, group_release[&g]);
                    let at = self.sync_hop(sent, gm, d);
                    dimm_release.insert(d, at + SYNC_PROC);
                }
                let mut waiting = waiting;
                waiting.sort_unstable();
                for c in waiting {
                    let d = self.placement[c];
                    let sent = self.master_absorb(d, dimm_release[&d]);
                    let at = sent + self.cfg.local_sync_latency;
                    self.unblock(c, at, false);
                }
            }
        }
    }

    /// Sends a synchronization message from DIMM `a` to DIMM `b`.
    fn sync_hop(&mut self, t: Ps, a: usize, b: usize) -> Ps {
        if a == b {
            return t + SYNC_PROC;
        }
        self.call_order.observe(t);
        let (arrival, route) =
            self.idc
                .sync_unicast(&mut self.host, &self.cfg, t, a, b, SYNC_BYTES);
        self.count_route(route, SYNC_BYTES);
        arrival
    }

    /// The master core on `dimm` processes one sync message arriving at
    /// `at`; returns when it has been absorbed.
    fn master_absorb(&mut self, dimm: usize, at: Ps) -> Ps {
        self.sync_units[dimm].reserve(at, self.cfg.sync_master_proc)
    }

    /// The global synchronization master: the proxy of group 0 for
    /// DIMM-Link, DIMM 0 otherwise.
    fn global_master(&self) -> usize {
        self.idc.dimm_link().map_or(0, |dl| dl.proxies()[0])
    }

    fn group_master(&self, group: usize) -> usize {
        self.idc
            .dimm_link()
            .map_or(0, |dl| dl.proxies().get(group).copied().unwrap_or(0))
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    fn collect(mut self, status: RunStatus) -> RawRun {
        // Cores still running when a budget cut the run short are charged up
        // to the cut-off time; a completed run always has every finish time.
        let elapsed = self
            .cores
            .iter()
            .map(|c| c.finish.unwrap_or(self.now))
            .max()
            .unwrap_or(Ps::ZERO);
        self.host.finalize(elapsed);

        let threads = self.cores.len() as f64;
        let idc_stall: Ps = self.cores.iter().map(|c| c.idc_stall).sum();
        let mem_stall: Ps = self.cores.iter().map(|c| c.mem_stall).sum();
        let sync_stall: Ps = self.cores.iter().map(|c| c.sync_stall).sum();

        let mut s = StatSet::new();
        s.set("elapsed_ps", elapsed.as_ps() as f64);
        s.set("events_scheduled", self.events.total_scheduled() as f64);
        s.set(
            "run.completed",
            if status.is_complete() { 1.0 } else { 0.0 },
        );
        s.set("events.wake", self.ev_wake as f64);
        s.set("events.mem", self.ev_mem as f64);
        s.set("events.net", self.ev_net as f64);
        s.set("remote_read_rtt_mean_ns", self.remote_rtt.mean() / 1e3);
        s.set(
            "remote_read_rtt_p99_ns",
            self.remote_rtt.percentile(0.99) as f64 / 1e3,
        );
        s.set("remote_read_rtt_max_ns", self.remote_rtt.max() as f64 / 1e3);
        s.set("idc.call_inversions", self.call_order.inversions as f64);
        s.set(
            "idc.call_max_backjump_ns",
            self.call_order.max_backjump as f64 / 1e3,
        );
        if let Some(dl) = self.idc.dimm_link() {
            s.set("dl.notify_wait_mean_ns", dl.notify_wait.mean() / 1e3);
            s.set("dl.disc_wait_mean_ns", dl.disc_wait.mean() / 1e3);
            s.set("dl.fwd_wait_mean_ns", dl.fwd_wait.mean() / 1e3);
            s.set("dl.fwd_wait_max_ns", dl.fwd_wait.max() as f64 / 1e3);
            s.set("dl.disc_wait_max_ns", dl.disc_wait.max() as f64 / 1e3);
            s.set("dl.notify_wait_max_ns", dl.notify_wait.max() as f64 / 1e3);
        }
        s.set("threads", threads);
        s.set(
            "idc_stall_frac",
            if elapsed == Ps::ZERO {
                0.0
            } else {
                idc_stall.as_ps() as f64 / (elapsed.as_ps() as f64 * threads)
            },
        );
        s.set(
            "mem_stall_frac",
            if elapsed == Ps::ZERO {
                0.0
            } else {
                mem_stall.as_ps() as f64 / (elapsed.as_ps() as f64 * threads)
            },
        );
        s.set(
            "sync_stall_frac",
            if elapsed == Ps::ZERO {
                0.0
            } else {
                sync_stall.as_ps() as f64 / (elapsed.as_ps() as f64 * threads)
            },
        );
        s.set("traffic.local_bytes", self.local_bytes as f64);
        s.set("traffic.link_bytes", self.link_unicast_bytes as f64);
        s.set("traffic.fwd_bytes", self.fwd_unicast_bytes as f64);
        s.set("traffic.bus_bytes", self.bus_unicast_bytes as f64);
        s.set("traffic.cxl_bytes", self.cxl_unicast_bytes as f64);
        s.set("traffic.broadcast_bytes", self.broadcast_bytes as f64);
        s.set("remote_reads", self.remote_reads as f64);
        s.set("remote_writes", self.remote_writes as f64);
        s.set("atomics", self.atomic_ops as f64);
        s.set("barriers", self.barriers_passed as f64);
        s.set("host.fwd_packets", self.host.forwarded_packets() as f64);
        s.set("host.fwd_bytes", self.host.forwarded_bytes() as f64);
        s.set("host.polls", self.host.polls() as f64);
        s.set("host.interrupts", self.host.interrupts() as f64);
        s.set("host.channel_bytes", self.host.channel_bytes() as f64);
        s.set("host.bus_occupancy", self.host.bus_occupancy(elapsed));
        s.set("idc.private_bytes", self.idc.private_bytes() as f64);

        let mut activates = 0u64;
        let mut dram_reads = 0u64;
        let mut dram_writes = 0u64;
        for mc in &self.mcs {
            activates += mc.activates();
            dram_reads += mc.reads();
            dram_writes += mc.writes();
        }
        s.set("dram.activates", activates as f64);
        for (d, mc) in self.mcs.iter().enumerate() {
            s.set(format!("dram.dimm{d}.reads"), mc.reads() as f64);
            s.set(
                format!("dram.dimm{d}.lat_ns"),
                mc.latency_histogram().mean() / 1e3,
            );
        }
        s.set("dram.reads", dram_reads as f64);
        s.set("dram.writes", dram_writes as f64);
        let mut l1h = 0.0;
        for l1 in &self.l1 {
            l1h += l1.hit_rate();
        }
        s.set("cache.l1_hit_rate_mean", l1h / threads);

        RawRun {
            elapsed,
            stats: s,
            profile: self.profile,
            status,
        }
    }
}

enum CacheLookup {
    Hit(Ps),
    Miss { writeback: Option<u64> },
}

/// Convenience: the natural placement (thread on its data's home DIMM).
pub fn natural_placement(workload: &Workload) -> Vec<usize> {
    workload.home_dimm().to_vec()
}

/// Random placement respecting per-DIMM core capacity (the starting point
/// of the profiling run in Algorithm 1).
pub fn random_placement(workload: &Workload, cfg: &SystemConfig, seed: u64) -> Vec<usize> {
    let threads = workload.traces().len();
    let mut slots: Vec<usize> = (0..cfg.dimms)
        .flat_map(|d| std::iter::repeat_n(d, cfg.cores_per_dimm))
        .collect();
    let mut rng = dl_engine::DetRng::seed(seed).stream("placement");
    rng.shuffle(&mut slots);
    slots.truncate(threads);
    slots
}

/// Runs Algorithm 1 end to end: profile on a random placement, solve the
/// min-cost max-flow, return the optimized placement plus the profiling
/// run's elapsed time (which the paper charges to the end-to-end result).
pub fn optimized_placement(cfg: &SystemConfig, profile_run: &RawRun) -> Vec<usize> {
    let idc = Interconnect::new(cfg);
    let dist = distance_matrix(cfg, &idc);
    dl_placement::place_threads(&profile_run.profile, &dist, cfg.cores_per_dimm)
        .expect("threads fit on cores by construction")
        .assignment()
        .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IdcKind;
    use dl_workloads::{synth, WorkloadParams};

    fn quick_params(dimms: usize) -> WorkloadParams {
        WorkloadParams {
            scale: 8,
            ..WorkloadParams::small(dimms)
        }
    }

    fn run(cfg: &SystemConfig, wl: &Workload) -> RawRun {
        let placement = natural_placement(wl);
        NmpSystem::new(wl, cfg, &placement, None).run()
    }

    #[test]
    fn local_only_workload_has_no_idc() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 200, 0.0);
        let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        let r = run(&cfg, &wl);
        assert!(r.elapsed > Ps::ZERO);
        assert_eq!(r.stats.get("remote_reads"), Some(0.0));
        assert_eq!(r.stats.get("remote_writes"), Some(0.0));
        // Only the final barrier's sync messages ride the links.
        assert!(r.stats.get("traffic.link_bytes").unwrap() < 200.0);
        assert_eq!(r.stats.get("idc_stall_frac"), Some(0.0));
    }

    #[test]
    fn remote_traffic_rides_the_links_for_dimm_link() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 200, 0.8);
        let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        let r = run(&cfg, &wl);
        assert!(r.stats.get("remote_reads").unwrap() > 0.0);
        assert!(r.stats.get("traffic.link_bytes").unwrap() > 0.0);
        // Single group: nothing is host-forwarded.
        assert_eq!(r.stats.get("traffic.fwd_bytes"), Some(0.0));
        assert!(r.stats.get("idc_stall_frac").unwrap() > 0.0);
    }

    #[test]
    fn mcn_is_slower_than_dimm_link_on_remote_traffic() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 300, 0.8);
        let dl = run(&SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink), &wl);
        let mcn = run(
            &SystemConfig::nmp(4, 2).with_idc(IdcKind::CpuForwarding),
            &wl,
        );
        assert!(
            mcn.elapsed.as_ps() > 2 * dl.elapsed.as_ps(),
            "MCN {} vs DIMM-Link {}",
            mcn.elapsed,
            dl.elapsed
        );
    }

    #[test]
    fn barriers_complete_on_all_schemes() {
        let params = quick_params(4);
        let wl = synth::sync_sweep(&params, 1000, 20);
        for idc in [
            IdcKind::CpuForwarding,
            IdcKind::DedicatedBus,
            IdcKind::DimmLink,
        ] {
            let cfg = SystemConfig::nmp(4, 2).with_idc(idc);
            let r = run(&cfg, &wl);
            assert_eq!(r.stats.get("barriers"), Some(20.0), "{idc}");
        }
    }

    #[test]
    fn hierarchical_sync_beats_central_on_dimm_link() {
        let params = quick_params(16);
        let wl = synth::sync_sweep(&params, 500, 30);
        let mut central = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
        central.sync = SyncScheme::Central;
        let mut hier = central.clone();
        hier.sync = SyncScheme::Hierarchical;
        let rc = run(&central, &wl);
        let rh = run(&hier, &wl);
        assert!(
            rh.elapsed < rc.elapsed,
            "hierarchical {} vs central {}",
            rh.elapsed,
            rc.elapsed
        );
    }

    #[test]
    fn profiling_run_is_shorter_and_fills_profile() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 500, 0.5);
        let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        let placement = random_placement(&wl, &cfg, 1);
        let full = NmpSystem::new(&wl, &cfg, &placement, None).run();
        let prof = NmpSystem::new(&wl, &cfg, &placement, Some(50)).run();
        assert!(prof.elapsed < full.elapsed / 2);
        assert!(prof.profile.total() > 0);
    }

    #[test]
    fn optimized_placement_reduces_remote_traffic() {
        let params = quick_params(4);
        // Heavily local workload: random placement scatters threads away
        // from their data; Algorithm 1 must bring them home.
        let wl = synth::uniform_random(&params, 400, 0.1);
        let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        let rand_place = random_placement(&wl, &cfg, 7);
        let prof = NmpSystem::new(&wl, &cfg, &rand_place, Some(100)).run();
        let opt = optimized_placement(&cfg, &prof);
        let r_rand = NmpSystem::new(&wl, &cfg, &rand_place, None).run();
        let r_opt = NmpSystem::new(&wl, &cfg, &opt, None).run();
        let remote = |r: &RawRun| {
            r.stats.get("remote_reads").unwrap() + r.stats.get("remote_writes").unwrap()
        };
        assert!(
            remote(&r_opt) < remote(&r_rand),
            "optimized placement did not reduce remote traffic: {} vs {}",
            remote(&r_opt),
            remote(&r_rand)
        );
        assert!(r_opt.elapsed <= r_rand.elapsed);
    }

    #[test]
    fn random_placement_respects_capacity() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 10, 0.0);
        let cfg = SystemConfig::nmp(4, 2);
        let p = random_placement(&wl, &cfg, 3);
        assert_eq!(p.len(), 16);
        for d in 0..4 {
            assert!(p.iter().filter(|&&x| x == d).count() <= cfg.cores_per_dimm);
        }
    }

    #[test]
    #[should_panic(expected = "placement exceeds")]
    fn overloaded_placement_rejected() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 10, 0.0);
        let cfg = SystemConfig::nmp(4, 2);
        let placement = vec![0; 16]; // 16 threads on DIMM 0's 4 cores
        let _ = NmpSystem::new(&wl, &cfg, &placement, None);
    }
}
