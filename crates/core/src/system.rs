//! The DIMM-NMP system simulator: trace-driven NMP cores with bounded
//! memory-level parallelism, private L1s and a shared per-DIMM L2, per-DIMM
//! DDR4 controllers, and one of the four IDC mechanisms for remote traffic.
//!
//! The paper's coarse-grained execution flow is assumed: the host has
//! already loaded data and kernels, DIMMs are in NMP-Access mode, and the
//! host only participates through polling and packet forwarding
//! ([`crate::host::HostPath`]).
//!
//! # Partitioned engine
//!
//! The simulator is a conservative parallel DES. System state is split into
//! one [`DimmPart`] per DIMM — cores, caches, memory controller, atomic
//! unit, and a local event queue — plus one [`Coordinator`] owning every
//! genuinely shared model (the interconnect, the host path, the sync
//! masters, the barrier). Partitions advance in bounded time *epochs*: each
//! epoch spans `[m, m + W)` where `m` is the earliest pending event across
//! all partitions and `W` is the lookahead
//! ([`crate::idc::min_cross_latency`], the cheapest possible
//! cross-partition message). Within an epoch a partition processes only its
//! own events and stages anything cross-partition as an [`Intent`] in its
//! [`Outbox`]. At the epoch barrier the coordinator merges all outboxes
//! into one total order — `(timestamp, source partition, source sequence)`,
//! see [`dl_engine::epoch::merge_epoch`] — performs the interconnect and
//! host-path reservations in that order, and pushes the resulting
//! deliveries into the target partitions no earlier than the epoch
//! boundary. Every component of that procedure is independent of the OS
//! thread count, so [`NmpSystem::run_with`] produces byte-identical results
//! at any `sim_threads` value; threads only change which OS worker executes
//! which partition.

use crate::config::{SyncScheme, SystemConfig};
use crate::host::HostPath;
use crate::idc::{
    distance_matrix, min_cross_latency, wire_bytes, CallOrderStats, Interconnect, Route,
    NOTIFY_BYTES,
};
use dl_engine::epoch::{merge_epoch, Envelope, Outbox};
use dl_engine::stats::{Histogram, StatSet};
use dl_engine::{BudgetKind, EventQueue, Ps, Resource, RunStatus};
use dl_mem::{AccessKind, Cache, CacheOutcome, DimmAddressMap, MemController, MemRequest};
use dl_placement::AccessProfile;
use dl_workloads::{Op, Workload};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Cycles of local bookkeeping at each synchronization stage.
const SYNC_PROC: Ps = Ps::from_ns(5);
/// Sync message payload (a flag/sequence number): one flit on the wire.
const SYNC_BYTES: u64 = NOTIFY_BYTES;
/// Hard backstop on total scheduled events: catches runaway simulations
/// even when the run's own [`dl_engine::RunBudget`] is unlimited.
const EVENT_BUDGET: u64 = 2_000_000_000;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    /// Window full; resumes on the next completion.
    WaitWindow,
    /// Needs an empty window before executing the op at `pc`.
    WaitDrain,
    /// Blocked on one specific transaction (atomic / broadcast).
    WaitTxn(u64),
    /// Arrived at a barrier, waiting for release.
    WaitBarrier,
    Done,
}

#[derive(Debug)]
struct CoreState {
    pc: usize,
    limit: usize,
    outstanding: Vec<(u64, bool)>,
    status: Status,
    ready_at: Ps,
    blocked_at: Ps,
    idc_stall: Ps,
    mem_stall: Ps,
    sync_stall: Ps,
    finish: Option<Ps>,
}

#[derive(Debug, Clone, Copy)]
enum TxnClass {
    /// A local DRAM access a core is waiting on (`thread` is global).
    LocalMem { thread: usize },
    /// DRAM access nobody waits for (writes, writebacks, remote-write
    /// landings).
    Background,
    /// A remote read being serviced at this (home) DIMM; on completion the
    /// response is sent back to the issuer, which knows the transaction as
    /// `origin`.
    RemoteReadAtHome { thread: usize, origin: u64 },
}

/// A cross-partition event delivered into a partition's local queue.
/// Transaction ids are partition-local, so every variant that must resolve
/// a transaction at the *issuing* partition carries the issuer's id as
/// `origin`.
#[derive(Debug, Clone, Copy)]
enum XEvent {
    /// A remote read request arrived at its home DIMM: start the DRAM read.
    StartRemoteRead {
        thread: usize,
        addr: u64,
        origin: u64,
    },
    /// A remote write arrived at its home DIMM: write DRAM in the
    /// background.
    LandRemoteWrite { addr: u64 },
    /// A response arrived back at the issuing core: free its window slot or
    /// wake it from `WaitTxn`.
    Complete {
        thread: usize,
        origin: u64,
        remote: bool,
    },
    /// An atomic request arrived at its home DIMM: serialize and respond.
    AtomicAtHome {
        thread: usize,
        addr: u64,
        origin: u64,
    },
    /// A broadcast finished delivering everywhere.
    BroadcastDone { thread: usize, origin: u64 },
    /// A barrier release reached this core.
    BarrierRelease { thread: usize },
}

/// What the coordinator should schedule once a unicast's arrival time is
/// known.
#[derive(Debug, Clone, Copy)]
enum Then {
    StartRemoteRead {
        thread: usize,
        addr: u64,
        origin: u64,
    },
    /// `thread == usize::MAX` marks a posted write nobody waits for.
    LandRemoteWrite {
        thread: usize,
        addr: u64,
        origin: u64,
    },
    Complete {
        thread: usize,
        origin: u64,
    },
    AtomicAtHome {
        thread: usize,
        addr: u64,
        origin: u64,
    },
}

/// A cross-partition action staged in a partition's outbox, applied by the
/// coordinator at the epoch barrier in deterministic merged order.
#[derive(Debug, Clone, Copy)]
enum Intent {
    Unicast {
        src: usize,
        dst: usize,
        bytes: u64,
        then: Then,
    },
    Broadcast {
        src: usize,
        thread: usize,
        origin: u64,
        bytes: u64,
    },
    BarrierArrive {
        thread: usize,
    },
}

/// A partition-local event.
#[derive(Debug)]
enum Ev {
    /// Wake global thread `usize` (resident on this partition).
    Wake(usize),
    /// Service this partition's memory controller.
    MemTick,
    /// A cross-partition event (or a local completion modeled as one).
    Deliver(XEvent),
}

#[derive(Debug, Default)]
struct BarrierGroupAgg {
    arrived: usize,
    ready_at: Ps,
}

#[derive(Debug)]
struct BarrierState {
    /// Threads participating (all of them; traces have balanced barriers).
    total: usize,
    arrived: usize,
    /// Per-DIMM aggregation (hierarchical): count and latest local arrival.
    dimm_agg: BTreeMap<usize, BarrierGroupAgg>,
    /// Per-group aggregation: count of completed DIMMs and latest arrival
    /// at the group master.
    group_agg: BTreeMap<usize, BarrierGroupAgg>,
    /// DIMMs (with ≥1 thread) per group and threads per DIMM, fixed per
    /// placement.
    threads_on_dimm: BTreeMap<usize, usize>,
    dimms_in_group: BTreeMap<usize, usize>,
    /// Completed-group arrivals at the global master.
    global_arrived: usize,
    global_ready: Ps,
    /// Threads waiting for release.
    waiting: Vec<usize>,
}

/// What the coordinator decided at the top of an epoch.
enum Plan {
    /// The run is over (completed or out of budget).
    Stop(RunStatus),
    /// The run cannot make progress; the coordinator must fail after
    /// releasing any parked workers.
    Fail(String),
    /// Run one epoch ending (exclusively) at this time.
    Run(Ps),
}

/// Aggregate outcome of one simulation.
#[derive(Debug, Clone)]
pub struct RawRun {
    /// End-to-end simulated time.
    pub elapsed: Ps,
    /// All counters.
    pub stats: StatSet,
    /// Per-thread × per-DIMM traffic counts (Algorithm 1's `M` table).
    pub profile: AccessProfile,
    /// Whether the run finished or was cut off by the configured
    /// [`dl_engine::RunBudget`].
    pub status: RunStatus,
}

/// Read-only state every partition needs: configuration, the workload, and
/// the placement maps. Shared by reference across worker threads.
struct Shared<'w> {
    cfg: SystemConfig,
    workload: &'w Workload,
    /// `placement[t]` = DIMM (partition) of global thread `t`.
    placement: Vec<usize>,
    /// `local_of[t]` = index of thread `t` within its partition's cores.
    local_of: Vec<usize>,
    profiling: bool,
    map: DimmAddressMap,
}

impl Shared<'_> {
    fn decode(&self, addr: u64) -> dl_mem::DimmAddr {
        self.map.decode(self.workload.layout().offset_of(addr))
    }
}

/// One DIMM's slice of the system: its cores, caches, memory controller,
/// atomic unit, local event queue, and outbox. Never touches another
/// partition's state.
struct DimmPart {
    dimm: usize,
    /// Global ids of resident threads, ascending (`cores[local_of[g]]`).
    threads: Vec<usize>,
    cores: Vec<CoreState>,
    l1: Vec<Cache>,
    l2: Cache,
    mc: MemController,
    mc_next: Ps,
    atomic_unit: Resource,
    events: EventQueue<Ev>,
    outbox: Outbox<Intent>,
    txn_mem: BTreeMap<u64, TxnClass>,
    next_txn: u64,
    now: Ps,
    /// Exclusive upper bound on this epoch (cores must not run past it:
    /// cross-partition events may still arrive there).
    horizon: Ps,
    done: usize,
    local_bytes: u64,
    remote_reads: u64,
    remote_writes: u64,
    atomic_ops: u64,
    ev_wake: u64,
    ev_mem: u64,
    ev_net: u64,
    remote_issue: BTreeMap<u64, Ps>,
    remote_rtt: Histogram,
    /// Full-size table; merged across partitions at collection.
    profile: AccessProfile,
}

/// The genuinely shared models, owned by the coordinator and touched only
/// between epochs, in merged deterministic order.
struct Coordinator {
    idc: Interconnect,
    host: HostPath,
    /// Per-DIMM synchronization master core: processes one sync message at
    /// a time (the serialization hierarchical sync alleviates).
    sync_units: Vec<Resource>,
    barrier: BarrierState,
    call_order: CallOrderStats,
    link_unicast_bytes: u64,
    fwd_unicast_bytes: u64,
    bus_unicast_bytes: u64,
    cxl_unicast_bytes: u64,
    broadcast_bytes: u64,
    barriers_passed: u64,
}

/// The NMP system simulator. Construct with [`NmpSystem::new`], run with
/// [`NmpSystem::run`] (sequential) or [`NmpSystem::run_with`] (parallel;
/// byte-identical results at any thread count).
pub struct NmpSystem<'w> {
    shared: Shared<'w>,
    parts: Vec<Mutex<DimmPart>>,
    coord: Coordinator,
    /// Epoch width `W`: the cheapest possible cross-partition latency.
    lookahead: Ps,
}

impl<'w> NmpSystem<'w> {
    /// Builds a system running `workload` with threads placed per
    /// `placement` (`placement[t]` = DIMM of thread `t`).
    ///
    /// `limit_ops` truncates each trace (profiling runs); barriers are
    /// treated as local no-ops in that mode since truncated traces are not
    /// barrier-balanced.
    ///
    /// # Panics
    /// Panics if the config is invalid, the placement length mismatches, or
    /// a DIMM is assigned more threads than it has cores.
    pub fn new(
        workload: &'w Workload,
        cfg: &SystemConfig,
        placement: &[usize],
        limit_ops: Option<usize>,
    ) -> Self {
        cfg.validate().expect("invalid system configuration");
        let threads = workload.traces().len();
        assert_eq!(placement.len(), threads, "one DIMM per thread");
        let mut load = vec![0usize; cfg.dimms];
        for &d in placement {
            assert!(d < cfg.dimms, "placement targets DIMM {d} out of range");
            load[d] += 1;
        }
        assert!(
            load.iter().all(|&l| l <= cfg.cores_per_dimm),
            "placement exceeds per-DIMM core count: {load:?}"
        );
        assert!(
            workload.layout().dimms() == cfg.dimms,
            "workload was generated for {} DIMMs, system has {}",
            workload.layout().dimms(),
            cfg.dimms
        );

        let idc = Interconnect::new(cfg);
        let host = HostPath::new(cfg, &idc.proxy_channels(cfg));
        let profiling = limit_ops.is_some();
        let lookahead = min_cross_latency(cfg);

        // Resident threads per partition, ascending global id; `local_of`
        // is each thread's index within its partition.
        let mut resident: Vec<Vec<usize>> = vec![Vec::new(); cfg.dimms];
        let mut local_of = vec![0usize; threads];
        for (g, &d) in placement.iter().enumerate() {
            local_of[g] = resident[d].len();
            resident[d].push(g);
        }

        let mut threads_on_dimm = BTreeMap::new();
        for &d in placement {
            *threads_on_dimm.entry(d).or_insert(0) += 1;
        }
        let mut dimms_in_group: BTreeMap<usize, usize> = BTreeMap::new();
        for &d in threads_on_dimm.keys() {
            *dimms_in_group.entry(cfg.group_of(d)).or_insert(0) += 1;
        }

        let parts = resident
            .into_iter()
            .enumerate()
            .map(|(d, residents)| {
                let cores = residents
                    .iter()
                    .map(|&g| {
                        let len = workload.traces()[g].len();
                        CoreState {
                            pc: 0,
                            limit: limit_ops.map_or(len, |l| l.min(len)),
                            outstanding: Vec::with_capacity(cfg.nmp_mlp),
                            status: Status::Ready,
                            ready_at: Ps::ZERO,
                            blocked_at: Ps::ZERO,
                            idc_stall: Ps::ZERO,
                            mem_stall: Ps::ZERO,
                            sync_stall: Ps::ZERO,
                            finish: None,
                        }
                    })
                    .collect();
                let mut events = EventQueue::new();
                for &g in &residents {
                    events.push(Ps::ZERO, Ev::Wake(g));
                }
                Mutex::new(DimmPart {
                    dimm: d,
                    l1: residents.iter().map(|_| Cache::new(cfg.nmp_l1)).collect(),
                    threads: residents,
                    cores,
                    l2: Cache::new(cfg.nmp_l2),
                    mc: MemController::new(format!("dimm{d}"), &cfg.dram),
                    mc_next: Ps::MAX,
                    atomic_unit: Resource::new(format!("dimm{d}.atomic")),
                    events,
                    outbox: Outbox::new(d),
                    txn_mem: BTreeMap::new(),
                    next_txn: 0,
                    now: Ps::ZERO,
                    horizon: Ps::ZERO,
                    done: 0,
                    local_bytes: 0,
                    remote_reads: 0,
                    remote_writes: 0,
                    atomic_ops: 0,
                    ev_wake: 0,
                    ev_mem: 0,
                    ev_net: 0,
                    remote_issue: BTreeMap::new(),
                    remote_rtt: Histogram::new(),
                    profile: AccessProfile::new(threads, cfg.dimms),
                })
            })
            .collect();

        NmpSystem {
            shared: Shared {
                cfg: cfg.clone(),
                workload,
                placement: placement.to_vec(),
                local_of,
                profiling,
                map: DimmAddressMap::new(&cfg.dram),
            },
            parts,
            coord: Coordinator {
                idc,
                host,
                sync_units: (0..cfg.dimms)
                    .map(|d| Resource::new(format!("dimm{d}.sync-master")))
                    .collect(),
                barrier: BarrierState {
                    total: threads,
                    arrived: 0,
                    dimm_agg: BTreeMap::new(),
                    group_agg: BTreeMap::new(),
                    threads_on_dimm,
                    dimms_in_group,
                    global_arrived: 0,
                    global_ready: Ps::ZERO,
                    waiting: Vec::new(),
                },
                call_order: CallOrderStats::default(),
                link_unicast_bytes: 0,
                fwd_unicast_bytes: 0,
                bus_unicast_bytes: 0,
                cxl_unicast_bytes: 0,
                broadcast_bytes: 0,
                barriers_passed: 0,
            },
            lookahead,
        }
    }

    /// The epoch width `W` (the minimum cross-partition latency).
    pub fn lookahead(&self) -> Ps {
        self.lookahead
    }

    /// Runs to completion (or until the configured [`dl_engine::RunBudget`]
    /// is exceeded) on the calling thread and collects results. Equivalent
    /// to `run_with(1)`.
    ///
    /// # Panics
    /// Panics on deadlock (all event queues drained with live threads —
    /// e.g. barrier-unbalanced traces).
    pub fn run(self) -> RawRun {
        self.run_with(1)
    }

    /// Runs the simulation with up to `sim_threads` OS worker threads.
    ///
    /// Partitioning is fixed (one partition per DIMM) regardless of
    /// `sim_threads`, and cross-partition effects are applied in a merged
    /// total order at epoch barriers, so the result — every statistic, the
    /// profile, the status — is byte-identical at any thread count. Budgets
    /// are observed deterministically at the top of each epoch (the sum of
    /// per-partition scheduled-event counters and the maximum partition
    /// clock); see [`dl_engine::BudgetKind`] for the overshoot contract. A
    /// runaway run with an unlimited budget stops with
    /// [`BudgetKind::Backstop`] instead of panicking.
    ///
    /// # Panics
    /// Panics if `sim_threads` is zero, or on deadlock (all event queues
    /// drained with live threads — e.g. barrier-unbalanced traces).
    pub fn run_with(mut self, sim_threads: usize) -> RawRun {
        assert!(sim_threads >= 1, "sim_threads must be at least 1");
        let n = sim_threads.min(self.parts.len());
        let status = if n <= 1 {
            self.run_inline()
        } else {
            self.run_parallel(n)
        };
        self.collect(status)
    }

    /// Sequential driver: same epoch structure as the parallel one, with
    /// partitions advanced inline in partition order.
    fn run_inline(&mut self) -> RunStatus {
        loop {
            match epoch_plan(&self.parts, &self.shared.cfg, self.lookahead) {
                Plan::Stop(status) => return status,
                Plan::Fail(msg) => panic!("{msg}"),
                Plan::Run(epoch_end) => {
                    for part in &self.parts {
                        part.lock()
                            .expect("partition lock poisoned")
                            .run_epoch(&self.shared, epoch_end);
                    }
                    run_barrier_phase(&self.parts, &self.shared, &mut self.coord, epoch_end);
                }
            }
        }
    }

    /// Parallel driver: `n` persistent workers advance partitions in a
    /// fixed strided mapping (worker `w` owns partitions `w, w + n, …`);
    /// the coordinator plans each epoch, releases the workers through a
    /// start barrier, joins them at an end barrier, then applies the merged
    /// cross-partition effects alone.
    fn run_parallel(&mut self, n: usize) -> RunStatus {
        let parts = &self.parts;
        let sh = &self.shared;
        let coord = &mut self.coord;
        let lookahead = self.lookahead;
        let start = SpinBarrier::new(n + 1);
        let end = SpinBarrier::new(n + 1);
        let epoch_end_ps = AtomicU64::new(0);
        let stop = AtomicBool::new(false);
        let worker_panic: Mutex<Option<String>> = Mutex::new(None);
        let mut status = RunStatus::Completed;

        std::thread::scope(|scope| {
            for wid in 0..n {
                let (start, end) = (&start, &end);
                let (epoch_end_ps, stop) = (&epoch_end_ps, &stop);
                let worker_panic = &worker_panic;
                let sh: &Shared<'_> = sh;
                scope.spawn(move || loop {
                    start.wait();
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let epoch_end = Ps::from_ps(epoch_end_ps.load(Ordering::SeqCst));
                    // Catch panics so the epoch barriers stay balanced; the
                    // coordinator re-raises after releasing every worker.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        let mut i = wid;
                        while i < parts.len() {
                            parts[i]
                                .lock()
                                .expect("partition lock poisoned")
                                .run_epoch(sh, epoch_end);
                            i += n;
                        }
                    }));
                    if let Err(payload) = outcome {
                        let mut slot = worker_panic.lock().expect("panic-note lock poisoned");
                        if slot.is_none() {
                            *slot = Some(panic_message(payload.as_ref()));
                        }
                        stop.store(true, Ordering::SeqCst);
                    }
                    end.wait();
                });
            }
            loop {
                match epoch_plan(parts, &sh.cfg, lookahead) {
                    Plan::Stop(s) => {
                        status = s;
                        stop.store(true, Ordering::SeqCst);
                        start.wait();
                        break;
                    }
                    Plan::Fail(msg) => {
                        stop.store(true, Ordering::SeqCst);
                        start.wait();
                        panic!("{msg}");
                    }
                    Plan::Run(epoch_end) => {
                        epoch_end_ps.store(epoch_end.as_ps(), Ordering::SeqCst);
                        start.wait();
                        end.wait();
                        if stop.load(Ordering::SeqCst) {
                            // A worker panicked this epoch: release every
                            // worker so it observes `stop`, then propagate.
                            start.wait();
                            let msg = worker_panic
                                .lock()
                                .expect("panic-note lock poisoned")
                                .take()
                                .unwrap_or_else(|| "simulation worker panicked".to_string());
                            panic!("{msg}");
                        }
                        run_barrier_phase(parts, sh, coord, epoch_end);
                    }
                }
            }
        });
        status
    }

    /// Test hook: inject an extra wake event for `thread` at time `at`
    /// (exercises the stale-wake path deterministically).
    #[cfg(test)]
    fn inject_wake(&mut self, thread: usize, at: Ps) {
        let d = self.shared.placement[thread];
        self.parts[d]
            .get_mut()
            .expect("partition lock poisoned")
            .events
            .push(at, Ev::Wake(thread));
    }

    // ------------------------------------------------------------------
    // Results
    // ------------------------------------------------------------------

    fn collect(self, status: RunStatus) -> RawRun {
        let NmpSystem {
            shared: sh,
            parts,
            mut coord,
            ..
        } = self;
        let parts: Vec<DimmPart> = parts
            .into_iter()
            .map(|p| p.into_inner().expect("partition lock poisoned"))
            .collect();
        let threads_total = sh.placement.len();

        // Cores still running when a budget cut the run short are charged
        // up to the cut-off time (the furthest partition clock); a
        // completed run always has every finish time.
        let high = parts.iter().map(|p| p.now).max().unwrap_or(Ps::ZERO);
        let mut elapsed = Ps::ZERO;
        for g in 0..threads_total {
            let core = &parts[sh.placement[g]].cores[sh.local_of[g]];
            elapsed = elapsed.max(core.finish.unwrap_or(high));
        }
        coord.host.finalize(elapsed);

        // Exact integer/Ps sums in fixed partition order, so the merged
        // counters are independent of how many OS threads ran the epochs.
        let events_scheduled: u64 = parts.iter().map(|p| p.events.total_scheduled()).sum();
        let ev_wake: u64 = parts.iter().map(|p| p.ev_wake).sum();
        let ev_mem: u64 = parts.iter().map(|p| p.ev_mem).sum();
        let ev_net: u64 = parts.iter().map(|p| p.ev_net).sum();
        let local_bytes: u64 = parts.iter().map(|p| p.local_bytes).sum();
        let remote_reads: u64 = parts.iter().map(|p| p.remote_reads).sum();
        let remote_writes: u64 = parts.iter().map(|p| p.remote_writes).sum();
        let atomic_ops: u64 = parts.iter().map(|p| p.atomic_ops).sum();
        let mut remote_rtt = Histogram::new();
        for p in &parts {
            remote_rtt.merge(&p.remote_rtt);
        }
        let mut profile = AccessProfile::new(threads_total, sh.cfg.dimms);
        for p in &parts {
            profile.merge(&p.profile);
        }

        let threads = threads_total as f64;
        let all_cores = || parts.iter().flat_map(|p| p.cores.iter());
        let idc_stall: Ps = all_cores().map(|c| c.idc_stall).sum();
        let mem_stall: Ps = all_cores().map(|c| c.mem_stall).sum();
        let sync_stall: Ps = all_cores().map(|c| c.sync_stall).sum();

        let mut s = StatSet::new();
        s.set("elapsed_ps", elapsed.as_ps() as f64);
        s.set("events_scheduled", events_scheduled as f64);
        s.set(
            "run.completed",
            if status.is_complete() { 1.0 } else { 0.0 },
        );
        s.set("events.wake", ev_wake as f64);
        s.set("events.mem", ev_mem as f64);
        s.set("events.net", ev_net as f64);
        s.set("remote_read_rtt_mean_ns", remote_rtt.mean() / 1e3);
        s.set(
            "remote_read_rtt_p99_ns",
            remote_rtt.percentile(0.99) as f64 / 1e3,
        );
        s.set("remote_read_rtt_max_ns", remote_rtt.max() as f64 / 1e3);
        s.set("idc.call_inversions", coord.call_order.inversions as f64);
        s.set(
            "idc.call_max_backjump_ns",
            coord.call_order.max_backjump as f64 / 1e3,
        );
        if let Some(dl) = coord.idc.dimm_link() {
            s.set("dl.notify_wait_mean_ns", dl.notify_wait.mean() / 1e3);
            s.set("dl.disc_wait_mean_ns", dl.disc_wait.mean() / 1e3);
            s.set("dl.fwd_wait_mean_ns", dl.fwd_wait.mean() / 1e3);
            s.set("dl.fwd_wait_max_ns", dl.fwd_wait.max() as f64 / 1e3);
            s.set("dl.disc_wait_max_ns", dl.disc_wait.max() as f64 / 1e3);
            s.set("dl.notify_wait_max_ns", dl.notify_wait.max() as f64 / 1e3);
        }
        s.set("threads", threads);
        s.set(
            "idc_stall_frac",
            if elapsed == Ps::ZERO {
                0.0
            } else {
                idc_stall.as_ps() as f64 / (elapsed.as_ps() as f64 * threads)
            },
        );
        s.set(
            "mem_stall_frac",
            if elapsed == Ps::ZERO {
                0.0
            } else {
                mem_stall.as_ps() as f64 / (elapsed.as_ps() as f64 * threads)
            },
        );
        s.set(
            "sync_stall_frac",
            if elapsed == Ps::ZERO {
                0.0
            } else {
                sync_stall.as_ps() as f64 / (elapsed.as_ps() as f64 * threads)
            },
        );
        s.set("traffic.local_bytes", local_bytes as f64);
        s.set("traffic.link_bytes", coord.link_unicast_bytes as f64);
        s.set("traffic.fwd_bytes", coord.fwd_unicast_bytes as f64);
        s.set("traffic.bus_bytes", coord.bus_unicast_bytes as f64);
        s.set("traffic.cxl_bytes", coord.cxl_unicast_bytes as f64);
        s.set("traffic.broadcast_bytes", coord.broadcast_bytes as f64);
        s.set("remote_reads", remote_reads as f64);
        s.set("remote_writes", remote_writes as f64);
        s.set("atomics", atomic_ops as f64);
        s.set("barriers", coord.barriers_passed as f64);
        s.set("host.fwd_packets", coord.host.forwarded_packets() as f64);
        s.set("host.fwd_bytes", coord.host.forwarded_bytes() as f64);
        s.set("host.polls", coord.host.polls() as f64);
        s.set("host.interrupts", coord.host.interrupts() as f64);
        s.set("host.channel_bytes", coord.host.channel_bytes() as f64);
        s.set("host.bus_occupancy", coord.host.bus_occupancy(elapsed));
        s.set("idc.private_bytes", coord.idc.private_bytes() as f64);

        let mut activates = 0u64;
        let mut dram_reads = 0u64;
        let mut dram_writes = 0u64;
        for p in &parts {
            activates += p.mc.activates();
            dram_reads += p.mc.reads();
            dram_writes += p.mc.writes();
        }
        s.set("dram.activates", activates as f64);
        for (d, p) in parts.iter().enumerate() {
            s.set(format!("dram.dimm{d}.reads"), p.mc.reads() as f64);
            s.set(
                format!("dram.dimm{d}.lat_ns"),
                p.mc.latency_histogram().mean() / 1e3,
            );
        }
        s.set("dram.reads", dram_reads as f64);
        s.set("dram.writes", dram_writes as f64);
        // L1 rates are summed in *global* thread order (f64 addition is
        // order-sensitive) so the mean matches at every thread count.
        let mut l1h = 0.0;
        for g in 0..threads_total {
            l1h += parts[sh.placement[g]].l1[sh.local_of[g]].hit_rate();
        }
        s.set("cache.l1_hit_rate_mean", l1h / threads);

        RawRun {
            elapsed,
            stats: s,
            profile,
            status,
        }
    }
}

/// A sense-reversing epoch barrier with an adaptive wait strategy.
///
/// Epochs are microseconds of work, and a run crosses the barrier hundreds
/// of thousands of times, so the barrier itself is on the critical path.
/// Two regimes:
///
/// * **Spin** — when the machine has a core for every participant, waiters
///   busy-wait: the release lands within the spin window and the crossing
///   costs nanoseconds instead of a futex park/unpark round-trip (which
///   alone can outweigh an epoch).
/// * **Park** — when participants outnumber cores (including single-core
///   machines), a spinning waiter only steals cycles from the thread it is
///   waiting *for*; waiters block on a condvar instead and the barrier
///   behaves like `std::sync::Barrier`.
///
/// The regime is picked once at construction from
/// `available_parallelism()`. Timing-only: results are byte-identical
/// either way.
struct SpinBarrier {
    n: usize,
    spin: bool,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    // Parking path. The generation bump happens under this lock so a
    // parked waiter cannot miss the wakeup.
    gate: Mutex<()>,
    release: Condvar,
}

impl SpinBarrier {
    /// Spin iterations between yields on the spin path — a safety valve
    /// for transient oversubscription (another process taking a core).
    const SPINS_PER_YIELD: u32 = 4096;

    fn new(n: usize) -> Self {
        let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
        SpinBarrier {
            n,
            spin: cores >= n,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            gate: Mutex::new(()),
            release: Condvar::new(),
        }
    }

    fn wait(&self) {
        let gen = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Last arrival: reset the count *before* opening the gate, so
            // by the time any waiter re-enters `wait`, the count is fresh.
            self.arrived.store(0, Ordering::Relaxed);
            if self.spin {
                self.generation.fetch_add(1, Ordering::Release);
            } else {
                let _g = self.gate.lock().expect("barrier gate poisoned");
                self.generation.fetch_add(1, Ordering::Release);
                self.release.notify_all();
            }
        } else if self.spin {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins.is_multiple_of(Self::SPINS_PER_YIELD) {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        } else {
            let mut g = self.gate.lock().expect("barrier gate poisoned");
            while self.generation.load(Ordering::Acquire) == gen {
                g = self.release.wait(g).expect("barrier gate poisoned");
            }
        }
    }
}

/// Decides what the next epoch is: inspects every partition's clock, queue,
/// and progress counters (all partitions are parked, so the locks are
/// uncontended) and applies the run-level checks in a fixed order — done,
/// backstop, configured budget, deadlock.
fn epoch_plan(parts: &[Mutex<DimmPart>], cfg: &SystemConfig, lookahead: Ps) -> Plan {
    let mut done = 0;
    let mut total = 0;
    let mut scheduled = 0u64;
    let mut next = Ps::MAX;
    let mut high = Ps::ZERO;
    for part in parts {
        let p = part.lock().expect("partition lock poisoned");
        done += p.done;
        total += p.threads.len();
        scheduled += p.events.total_scheduled();
        if let Some(t) = p.events.peek_time() {
            next = next.min(t);
        }
        high = high.max(p.now);
    }
    if done == total {
        return Plan::Stop(RunStatus::Completed);
    }
    if scheduled >= EVENT_BUDGET {
        return Plan::Stop(RunStatus::BudgetExceeded(BudgetKind::Backstop));
    }
    if let Some(kind) = cfg.budget.check(scheduled, high) {
        return Plan::Stop(RunStatus::BudgetExceeded(kind));
    }
    if next == Ps::MAX {
        return Plan::Fail(format!(
            "deadlock: {done} of {total} threads finished (unbalanced barriers?)"
        ));
    }
    Plan::Run(next + lookahead)
}

/// The epoch barrier: drains every outbox, merges the envelopes into the
/// canonical `(time, source, sequence)` order, performs the shared-model
/// reservations in that order, and pushes the resulting deliveries into the
/// target partitions — never earlier than the epoch boundary, so the next
/// epoch's plan sees a consistent frontier at any thread count.
fn run_barrier_phase(
    parts: &[Mutex<DimmPart>],
    sh: &Shared<'_>,
    coord: &mut Coordinator,
    epoch_end: Ps,
) {
    let batches: Vec<Vec<Envelope<Intent>>> = parts
        .iter()
        .map(|p| p.lock().expect("partition lock poisoned").outbox.drain())
        .collect();
    let merged = merge_epoch(batches);
    let mut deliveries: Vec<(usize, Ps, XEvent)> = Vec::new();
    for env in &merged {
        coord.apply(sh, env, &mut deliveries);
    }
    for (dimm, at, x) in deliveries {
        parts[dimm]
            .lock()
            .expect("partition lock poisoned")
            .events
            .push(at.max(epoch_end), Ev::Deliver(x));
    }
}

/// Renders a worker panic payload for re-raising on the coordinator.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "simulation worker panicked".to_string()
    }
}

impl DimmPart {
    /// Processes every local event strictly before `epoch_end`.
    fn run_epoch(&mut self, sh: &Shared<'_>, epoch_end: Ps) {
        self.horizon = epoch_end;
        while let Some(t) = self.events.peek_time() {
            if t >= epoch_end {
                break;
            }
            let (t, ev) = self.events.pop().expect("peeked event vanished");
            // A real (not debug) assert: a causality violation here means
            // cross-partition clamping failed and results are garbage.
            assert!(
                t >= self.now,
                "time went backwards on dimm {}: event at {t} behind clock {}",
                self.dimm,
                self.now
            );
            self.now = t;
            match ev {
                Ev::Wake(g) => {
                    self.ev_wake += 1;
                    self.advance_core(sh, g);
                }
                Ev::MemTick => {
                    self.ev_mem += 1;
                    self.mem_tick(sh);
                }
                Ev::Deliver(x) => {
                    self.ev_net += 1;
                    self.deliver(sh, x);
                }
            }
        }
    }

    fn alloc_txn(&mut self) -> u64 {
        self.next_txn += 1;
        self.next_txn
    }

    // ------------------------------------------------------------------
    // Core execution
    // ------------------------------------------------------------------

    fn advance_core(&mut self, sh: &Shared<'_>, g: usize) {
        let l = sh.local_of[g];
        if self.cores[l].status != Status::Ready {
            return; // stale wake
        }
        let mut t = self.now.max(self.cores[l].ready_at);
        let trace = sh.workload.traces()[g].ops();

        // The core may run ahead only up to the next local event or the
        // epoch boundary (cross-partition events can arrive there).
        let mut horizon = self.horizon.min(self.events.peek_time().unwrap_or(Ps::MAX));
        loop {
            // Refresh the horizon: our own issues may have scheduled events.
            horizon = horizon.min(self.events.peek_time().unwrap_or(Ps::MAX));
            // Yield if we have run ahead of the event queue.
            if t > horizon {
                self.cores[l].ready_at = t;
                self.events.push(t, Ev::Wake(g));
                return;
            }
            if self.cores[l].pc >= self.cores[l].limit {
                // Trace finished; drain outstanding requests.
                if self.cores[l].outstanding.is_empty() {
                    self.cores[l].status = Status::Done;
                    self.cores[l].finish = Some(t);
                    self.done += 1;
                } else {
                    self.cores[l].status = Status::WaitDrain;
                    self.cores[l].blocked_at = t;
                }
                return;
            }
            let op = trace[self.cores[l].pc];
            match op {
                Op::Comp(cycles) => {
                    self.cores[l].pc += 1;
                    t += sh.cfg.nmp_freq.cycles(cycles as u64);
                }
                Op::Load { addr, cacheable } | Op::Store { addr, cacheable } => {
                    let is_write = matches!(op, Op::Store { .. });
                    self.record_profile(sh, g, addr);
                    if cacheable {
                        match self.cache_access(sh, l, addr, is_write) {
                            CacheLookup::Hit(lat) => {
                                self.cores[l].pc += 1;
                                t += lat;
                                continue;
                            }
                            CacheLookup::Miss { writeback } => {
                                if let Some(victim) = writeback {
                                    self.background_write(sh, victim, t);
                                }
                                // fall through to the memory issue below
                            }
                        }
                    }
                    if self.cores[l].outstanding.len() >= sh.cfg.nmp_mlp {
                        self.cores[l].status = Status::WaitWindow;
                        self.cores[l].blocked_at = t;
                        self.cores[l].ready_at = t;
                        return;
                    }
                    self.cores[l].pc += 1;
                    self.issue_mem(sh, g, addr, is_write, t);
                    t += sh.cfg.nmp_freq.cycles(1);
                }
                Op::Atomic { addr } => {
                    if !self.cores[l].outstanding.is_empty() {
                        self.cores[l].status = Status::WaitDrain;
                        self.cores[l].blocked_at = t;
                        self.cores[l].ready_at = t;
                        return;
                    }
                    self.record_profile(sh, g, addr);
                    self.cores[l].pc += 1;
                    self.issue_atomic(sh, g, addr, t);
                    return;
                }
                Op::Broadcast { addr, bytes } => {
                    if self.cores[l].outstanding.len() >= sh.cfg.nmp_mlp {
                        self.cores[l].status = Status::WaitWindow;
                        self.cores[l].blocked_at = t;
                        self.cores[l].ready_at = t;
                        return;
                    }
                    self.record_profile(sh, g, addr);
                    self.cores[l].pc += 1;
                    self.issue_broadcast(sh, g, addr, bytes, t);
                    t += sh.cfg.nmp_freq.cycles(2);
                }
                Op::Barrier => {
                    if sh.profiling {
                        // Barriers are meaningless on truncated traces.
                        self.cores[l].pc += 1;
                        t += sh.cfg.nmp_freq.cycles(10);
                        continue;
                    }
                    if !self.cores[l].outstanding.is_empty() {
                        self.cores[l].status = Status::WaitDrain;
                        self.cores[l].blocked_at = t;
                        self.cores[l].ready_at = t;
                        return;
                    }
                    self.cores[l].pc += 1;
                    self.cores[l].status = Status::WaitBarrier;
                    self.cores[l].blocked_at = t;
                    self.outbox.send(t, Intent::BarrierArrive { thread: g });
                    return;
                }
            }
        }
    }

    /// Resumes a core after its blocking condition cleared.
    fn unblock(&mut self, sh: &Shared<'_>, g: usize, at: Ps, was_remote: bool) {
        let core = &mut self.cores[sh.local_of[g]];
        let stall = at.saturating_sub(core.blocked_at);
        match core.status {
            Status::WaitWindow | Status::WaitDrain | Status::WaitTxn(_) => {
                if was_remote {
                    core.idc_stall += stall;
                } else {
                    core.mem_stall += stall;
                }
            }
            Status::WaitBarrier => core.sync_stall += stall,
            _ => {}
        }
        core.status = Status::Ready;
        core.ready_at = at;
        self.events.push(at, Ev::Wake(g));
    }

    // ------------------------------------------------------------------
    // Memory path
    // ------------------------------------------------------------------

    fn cache_access(
        &mut self,
        sh: &Shared<'_>,
        l: usize,
        addr: u64,
        is_write: bool,
    ) -> CacheLookup {
        let l1_lat = sh
            .cfg
            .nmp_freq
            .cycles(self.l1[l].hit_latency_cycles() as u64);
        match self.l1[l].access(addr, is_write) {
            CacheOutcome::Hit => CacheLookup::Hit(l1_lat),
            CacheOutcome::Miss { writeback } => {
                let l2_lat = sh.cfg.nmp_freq.cycles(self.l2.hit_latency_cycles() as u64);
                // L1 victims land in the shared L2.
                let mut victim_to_mem = None;
                if let Some(v) = writeback {
                    if let CacheOutcome::Miss {
                        writeback: Some(v2),
                    } = self.l2.access(v, true)
                    {
                        victim_to_mem = Some(v2);
                    }
                }
                match self.l2.access(addr, is_write) {
                    // A victim evicted by the L1-writeback insertion is
                    // absorbed on the hit path (modeling simplification:
                    // its memory write happens off the critical path).
                    CacheOutcome::Hit => CacheLookup::Hit(l1_lat + l2_lat),
                    CacheOutcome::Miss { writeback: wb2 } => CacheLookup::Miss {
                        writeback: wb2.or(victim_to_mem),
                    },
                }
            }
        }
    }

    fn record_profile(&mut self, sh: &Shared<'_>, g: usize, addr: u64) {
        self.profile
            .record(g, sh.workload.layout().dimm_of(addr), 1);
    }

    fn issue_mem(&mut self, sh: &Shared<'_>, g: usize, addr: u64, is_write: bool, t: Ps) {
        let target = sh.workload.layout().dimm_of(addr);
        let id = self.alloc_txn();
        let l = sh.local_of[g];
        if target == self.dimm {
            self.local_bytes += 64;
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            self.cores[l].outstanding.push((id, false));
            self.txn_mem.insert(id, TxnClass::LocalMem { thread: g });
            self.mc_enqueue(t, MemRequest::new(id, kind, sh.decode(addr)));
        } else if is_write {
            self.remote_writes += 1;
            self.cores[l].outstanding.push((id, true));
            self.outbox.send(
                t,
                Intent::Unicast {
                    src: self.dimm,
                    dst: target,
                    bytes: wire_bytes(64),
                    then: Then::LandRemoteWrite {
                        thread: g,
                        addr,
                        origin: id,
                    },
                },
            );
        } else {
            self.remote_reads += 1;
            self.cores[l].outstanding.push((id, true));
            self.remote_issue.insert(id, t);
            self.outbox.send(
                t,
                Intent::Unicast {
                    src: self.dimm,
                    dst: target,
                    bytes: wire_bytes(0),
                    then: Then::StartRemoteRead {
                        thread: g,
                        addr,
                        origin: id,
                    },
                },
            );
        }
    }

    fn issue_atomic(&mut self, sh: &Shared<'_>, g: usize, addr: u64, t: Ps) {
        self.atomic_ops += 1;
        let target = sh.workload.layout().dimm_of(addr);
        let id = self.alloc_txn();
        let l = sh.local_of[g];
        self.cores[l].status = Status::WaitTxn(id);
        self.cores[l].blocked_at = t;
        if target == self.dimm {
            let done = self.atomic_unit.reserve(t, sh.cfg.atomic_service);
            self.local_bytes += 128; // read + write of the line
            self.background_mem(sh, done, addr, AccessKind::Write);
            self.events.push(
                done,
                Ev::Deliver(XEvent::Complete {
                    thread: g,
                    origin: id,
                    remote: false,
                }),
            );
        } else {
            self.outbox.send(
                t,
                Intent::Unicast {
                    src: self.dimm,
                    dst: target,
                    bytes: wire_bytes(8),
                    then: Then::AtomicAtHome {
                        thread: g,
                        addr,
                        origin: id,
                    },
                },
            );
        }
    }

    fn issue_broadcast(&mut self, sh: &Shared<'_>, g: usize, addr: u64, payload: u32, t: Ps) {
        let src = sh.workload.layout().dimm_of(addr);
        let bytes = wire_bytes(payload as u64);
        let id = self.alloc_txn();
        self.cores[sh.local_of[g]].outstanding.push((id, true));
        self.outbox.send(
            t,
            Intent::Broadcast {
                src,
                thread: g,
                origin: id,
                bytes,
            },
        );
    }

    fn background_write(&mut self, sh: &Shared<'_>, addr: u64, t: Ps) {
        let target = sh.workload.layout().dimm_of(addr);
        if target == self.dimm {
            self.local_bytes += 64;
            self.background_mem(sh, t, addr, AccessKind::Write);
        } else {
            // Dirty line belonging to a remote DIMM: posted remote write
            // that nobody waits for.
            self.remote_writes += 1;
            self.outbox.send(
                t,
                Intent::Unicast {
                    src: self.dimm,
                    dst: target,
                    bytes: wire_bytes(64),
                    then: Then::LandRemoteWrite {
                        thread: usize::MAX,
                        addr,
                        origin: 0,
                    },
                },
            );
        }
    }

    fn background_mem(&mut self, sh: &Shared<'_>, at: Ps, addr: u64, kind: AccessKind) {
        let id = self.alloc_txn();
        self.txn_mem.insert(id, TxnClass::Background);
        self.mc_enqueue(at, MemRequest::new(id, kind, sh.decode(addr)));
    }

    fn mc_enqueue(&mut self, at: Ps, req: MemRequest) {
        self.mc.enqueue(at, req);
        let wake = at.max(self.now);
        if self.mc_next > wake {
            self.mc_next = wake;
            self.events.push(wake, Ev::MemTick);
        }
    }

    fn mem_tick(&mut self, sh: &Shared<'_>) {
        // Exactly one live event per controller: anything not matching the
        // recorded wake time is a stale duplicate and must not spawn a
        // successor (that would chain events forever).
        if self.now != self.mc_next {
            return;
        }
        self.mc_next = Ps::MAX;
        let completions = self.mc.service(self.now);
        for comp in completions {
            let Some(class) = self.txn_mem.remove(&comp.id) else {
                continue;
            };
            match class {
                TxnClass::Background => {}
                TxnClass::LocalMem { thread } => self.complete_slot(sh, thread, comp.id, comp.at),
                TxnClass::RemoteReadAtHome { thread, origin } => {
                    // Ship the data back to the requesting core, carrying
                    // the issuer's transaction id so its slot is freed.
                    self.outbox.send(
                        comp.at,
                        Intent::Unicast {
                            src: self.dimm,
                            dst: sh.placement[thread],
                            bytes: wire_bytes(64),
                            then: Then::Complete { thread, origin },
                        },
                    );
                }
            }
        }
        if let Some(w) = self.mc.next_wake() {
            if self.mc_next > w {
                self.mc_next = w;
                self.events.push(w, Ev::MemTick);
            }
        }
    }

    fn deliver(&mut self, sh: &Shared<'_>, x: XEvent) {
        match x {
            XEvent::StartRemoteRead {
                thread,
                addr,
                origin,
            } => {
                self.local_bytes += 64;
                let id = self.alloc_txn();
                self.txn_mem
                    .insert(id, TxnClass::RemoteReadAtHome { thread, origin });
                self.mc_enqueue(
                    self.now,
                    MemRequest::new(id, AccessKind::Read, sh.decode(addr)),
                );
            }
            XEvent::LandRemoteWrite { addr } => {
                self.local_bytes += 64;
                self.background_mem(sh, self.now, addr, AccessKind::Write);
            }
            XEvent::Complete {
                thread,
                origin,
                remote,
            } => {
                if let Some(issued) = self.remote_issue.remove(&origin) {
                    self.remote_rtt
                        .record((self.now.saturating_sub(issued)).as_ps());
                }
                if let Status::WaitTxn(waited) = self.cores[sh.local_of[thread]].status {
                    debug_assert_eq!(waited, origin);
                    self.unblock(sh, thread, self.now, remote);
                } else {
                    self.complete_slot(sh, thread, origin, self.now);
                }
            }
            XEvent::AtomicAtHome {
                thread,
                addr,
                origin,
            } => {
                let done = self.atomic_unit.reserve(self.now, sh.cfg.atomic_service);
                self.local_bytes += 128;
                self.background_mem(sh, done, addr, AccessKind::Write);
                self.outbox.send(
                    done,
                    Intent::Unicast {
                        src: self.dimm,
                        dst: sh.placement[thread],
                        bytes: wire_bytes(8),
                        then: Then::Complete { thread, origin },
                    },
                );
            }
            XEvent::BroadcastDone { thread, origin } => {
                self.complete_slot(sh, thread, origin, self.now)
            }
            XEvent::BarrierRelease { thread } => self.unblock(sh, thread, self.now, false),
        }
    }

    /// Frees a window slot and resumes the core if it was blocked.
    fn complete_slot(&mut self, sh: &Shared<'_>, g: usize, id: u64, at: Ps) {
        let core = &mut self.cores[sh.local_of[g]];
        let Some(pos) = core.outstanding.iter().position(|&(tid, _)| tid == id) else {
            return;
        };
        let (_, remote) = core.outstanding.swap_remove(pos);
        match core.status {
            Status::WaitWindow => self.unblock(sh, g, at, remote),
            Status::WaitDrain if core.outstanding.is_empty() => self.unblock(sh, g, at, remote),
            _ => {}
        }
    }
}

impl Coordinator {
    /// Applies one merged cross-partition intent to the shared models and
    /// records the deliveries it produces as `(target partition, time,
    /// event)` triples.
    fn apply(
        &mut self,
        sh: &Shared<'_>,
        env: &Envelope<Intent>,
        out: &mut Vec<(usize, Ps, XEvent)>,
    ) {
        match env.payload {
            Intent::Unicast {
                src,
                dst,
                bytes,
                then,
            } => {
                self.call_order.observe(env.at);
                let (arrival, route) =
                    self.idc
                        .unicast(&mut self.host, &sh.cfg, env.at, src, dst, bytes);
                self.count_route(route, bytes);
                match then {
                    Then::StartRemoteRead {
                        thread,
                        addr,
                        origin,
                    } => out.push((
                        dst,
                        arrival,
                        XEvent::StartRemoteRead {
                            thread,
                            addr,
                            origin,
                        },
                    )),
                    Then::LandRemoteWrite {
                        thread,
                        addr,
                        origin,
                    } => {
                        out.push((dst, arrival, XEvent::LandRemoteWrite { addr }));
                        if thread != usize::MAX {
                            out.push((
                                sh.placement[thread],
                                arrival,
                                XEvent::Complete {
                                    thread,
                                    origin,
                                    remote: true,
                                },
                            ));
                        }
                    }
                    Then::Complete { thread, origin } => out.push((
                        dst,
                        arrival,
                        XEvent::Complete {
                            thread,
                            origin,
                            remote: true,
                        },
                    )),
                    Then::AtomicAtHome {
                        thread,
                        addr,
                        origin,
                    } => out.push((
                        dst,
                        arrival,
                        XEvent::AtomicAtHome {
                            thread,
                            addr,
                            origin,
                        },
                    )),
                }
            }
            Intent::Broadcast {
                src,
                thread,
                origin,
                bytes,
            } => {
                let arrivals = self
                    .idc
                    .broadcast(&mut self.host, &sh.cfg, env.at, src, bytes);
                self.broadcast_bytes += bytes * (sh.cfg.dimms as u64 - 1);
                let done = arrivals.into_iter().max().unwrap_or(env.at);
                out.push((
                    sh.placement[thread],
                    done,
                    XEvent::BroadcastDone { thread, origin },
                ));
            }
            Intent::BarrierArrive { thread } => self.barrier_arrive(sh, thread, env.at, out),
        }
    }

    fn count_route(&mut self, route: Route, bytes: u64) {
        match route {
            Route::Link => self.link_unicast_bytes += bytes,
            Route::HostForward => self.fwd_unicast_bytes += bytes,
            Route::Bus => self.bus_unicast_bytes += bytes,
            Route::Cxl => self.cxl_unicast_bytes += bytes,
            Route::Local | Route::ChannelBroadcast => {}
        }
    }

    // ------------------------------------------------------------------
    // Barriers
    // ------------------------------------------------------------------

    fn barrier_arrive(
        &mut self,
        sh: &Shared<'_>,
        c: usize,
        t: Ps,
        out: &mut Vec<(usize, Ps, XEvent)>,
    ) {
        self.barrier.arrived += 1;
        self.barrier.waiting.push(c);
        let dimm = sh.placement[c];
        match sh.cfg.sync {
            SyncScheme::Central => {
                let master = self.global_master();
                let at_master = self.sync_hop(sh, t, dimm, master);
                let absorbed = self.master_absorb(sh, master, at_master);
                self.barrier.global_ready = self.barrier.global_ready.max(absorbed);
            }
            SyncScheme::Hierarchical => {
                // Stage 1: core -> DIMM master (local, serialized at the
                // master core).
                let local = t + sh.cfg.local_sync_latency;
                let absorbed = self.master_absorb(sh, dimm, local);
                let agg = self.barrier.dimm_agg.entry(dimm).or_default();
                agg.arrived += 1;
                agg.ready_at = agg.ready_at.max(absorbed);
                let dimm_threads = self.barrier.threads_on_dimm[&dimm];
                if agg.arrived == dimm_threads {
                    let dimm_done = agg.ready_at + SYNC_PROC;
                    self.barrier.dimm_agg.remove(&dimm);
                    // Stage 2: DIMM master -> group master.
                    let group = sh.cfg.group_of(dimm);
                    let gmaster = self.group_master(group);
                    let at_gm = self.sync_hop(sh, dimm_done, dimm, gmaster);
                    let at_gm = self.master_absorb(sh, gmaster, at_gm);
                    let gagg = self.barrier.group_agg.entry(group).or_default();
                    gagg.arrived += 1;
                    gagg.ready_at = gagg.ready_at.max(at_gm);
                    if gagg.arrived == self.barrier.dimms_in_group[&group] {
                        let group_done = gagg.ready_at + SYNC_PROC;
                        self.barrier.group_agg.remove(&group);
                        // Stage 3: group master -> global master.
                        let at_global =
                            self.sync_hop(sh, group_done, gmaster, self.global_master());
                        let at_global = self.master_absorb(sh, self.global_master(), at_global);
                        self.barrier.global_arrived += 1;
                        self.barrier.global_ready = self.barrier.global_ready.max(at_global);
                    }
                }
            }
        }
        if self.barrier.arrived == self.barrier.total {
            self.barrier_release(sh, out);
        }
    }

    fn barrier_release(&mut self, sh: &Shared<'_>, out: &mut Vec<(usize, Ps, XEvent)>) {
        self.barriers_passed += 1;
        let release_from = self.barrier.global_ready + SYNC_PROC;
        let waiting = std::mem::take(&mut self.barrier.waiting);
        self.barrier.arrived = 0;
        self.barrier.global_arrived = 0;
        self.barrier.global_ready = Ps::ZERO;
        let master = self.global_master();
        match sh.cfg.sync {
            SyncScheme::Central => {
                let mut waiting = waiting;
                waiting.sort_unstable();
                for c in waiting {
                    let dimm = sh.placement[c];
                    // The master initiates release messages one at a time.
                    let sent = self.master_absorb(sh, master, release_from);
                    let at = self.sync_hop(sh, sent, master, dimm);
                    out.push((dimm, at, XEvent::BarrierRelease { thread: c }));
                }
            }
            SyncScheme::Hierarchical => {
                // global master -> group masters -> DIMM masters -> cores.
                let mut dimm_release: BTreeMap<usize, Ps> = BTreeMap::new();
                // BTreeMap keys iterate in ascending order, which fixes the
                // resource reservation order without an explicit sort.
                let dimms: Vec<usize> = self.barrier.threads_on_dimm.keys().copied().collect();
                let mut group_release: BTreeMap<usize, Ps> = BTreeMap::new();
                let groups: Vec<usize> = self.barrier.dimms_in_group.keys().copied().collect();
                for g in groups {
                    let gm = self.group_master(g);
                    let sent = self.master_absorb(sh, master, release_from);
                    let at = self.sync_hop(sh, sent, master, gm);
                    group_release.insert(g, at + SYNC_PROC);
                }
                for d in dimms {
                    let g = sh.cfg.group_of(d);
                    let gm = self.group_master(g);
                    let sent = self.master_absorb(sh, gm, group_release[&g]);
                    let at = self.sync_hop(sh, sent, gm, d);
                    dimm_release.insert(d, at + SYNC_PROC);
                }
                let mut waiting = waiting;
                waiting.sort_unstable();
                for c in waiting {
                    let d = sh.placement[c];
                    let sent = self.master_absorb(sh, d, dimm_release[&d]);
                    let at = sent + sh.cfg.local_sync_latency;
                    out.push((d, at, XEvent::BarrierRelease { thread: c }));
                }
            }
        }
    }

    /// Sends a synchronization message from DIMM `a` to DIMM `b`.
    fn sync_hop(&mut self, sh: &Shared<'_>, t: Ps, a: usize, b: usize) -> Ps {
        if a == b {
            return t + SYNC_PROC;
        }
        self.call_order.observe(t);
        let (arrival, route) = self
            .idc
            .sync_unicast(&mut self.host, &sh.cfg, t, a, b, SYNC_BYTES);
        self.count_route(route, SYNC_BYTES);
        arrival
    }

    /// The master core on `dimm` processes one sync message arriving at
    /// `at`; returns when it has been absorbed.
    fn master_absorb(&mut self, sh: &Shared<'_>, dimm: usize, at: Ps) -> Ps {
        let _ = sh;
        self.sync_units[dimm].reserve(at, sh.cfg.sync_master_proc)
    }

    /// The global synchronization master: the proxy of group 0 for
    /// DIMM-Link, DIMM 0 otherwise.
    fn global_master(&self) -> usize {
        self.idc.dimm_link().map_or(0, |dl| dl.proxies()[0])
    }

    fn group_master(&self, group: usize) -> usize {
        self.idc
            .dimm_link()
            .map_or(0, |dl| dl.proxies().get(group).copied().unwrap_or(0))
    }
}

enum CacheLookup {
    Hit(Ps),
    Miss { writeback: Option<u64> },
}

/// Convenience: the natural placement (thread on its data's home DIMM).
pub fn natural_placement(workload: &Workload) -> Vec<usize> {
    workload.home_dimm().to_vec()
}

/// Random placement respecting per-DIMM core capacity (the starting point
/// of the profiling run in Algorithm 1).
pub fn random_placement(workload: &Workload, cfg: &SystemConfig, seed: u64) -> Vec<usize> {
    let threads = workload.traces().len();
    let mut slots: Vec<usize> = (0..cfg.dimms)
        .flat_map(|d| std::iter::repeat_n(d, cfg.cores_per_dimm))
        .collect();
    let mut rng = dl_engine::DetRng::seed(seed).stream("placement");
    rng.shuffle(&mut slots);
    slots.truncate(threads);
    slots
}

/// Runs Algorithm 1 end to end: profile on a random placement, solve the
/// min-cost max-flow, return the optimized placement plus the profiling
/// run's elapsed time (which the paper charges to the end-to-end result).
pub fn optimized_placement(cfg: &SystemConfig, profile_run: &RawRun) -> Vec<usize> {
    let idc = Interconnect::new(cfg);
    let dist = distance_matrix(cfg, &idc);
    dl_placement::place_threads(&profile_run.profile, &dist, cfg.cores_per_dimm)
        .expect("threads fit on cores by construction")
        .assignment()
        .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IdcKind;
    use dl_workloads::{synth, DataLayout, ThreadTrace, WorkloadParams};

    fn quick_params(dimms: usize) -> WorkloadParams {
        WorkloadParams {
            scale: 8,
            ..WorkloadParams::small(dimms)
        }
    }

    fn run(cfg: &SystemConfig, wl: &Workload) -> RawRun {
        let placement = natural_placement(wl);
        NmpSystem::new(wl, cfg, &placement, None).run()
    }

    #[test]
    fn local_only_workload_has_no_idc() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 200, 0.0);
        let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        let r = run(&cfg, &wl);
        assert!(r.elapsed > Ps::ZERO);
        assert_eq!(r.stats.get("remote_reads"), Some(0.0));
        assert_eq!(r.stats.get("remote_writes"), Some(0.0));
        // Only the final barrier's sync messages ride the links.
        assert!(r.stats.get("traffic.link_bytes").unwrap() < 200.0);
        assert_eq!(r.stats.get("idc_stall_frac"), Some(0.0));
    }

    #[test]
    fn remote_traffic_rides_the_links_for_dimm_link() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 200, 0.8);
        let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        let r = run(&cfg, &wl);
        assert!(r.stats.get("remote_reads").unwrap() > 0.0);
        assert!(r.stats.get("traffic.link_bytes").unwrap() > 0.0);
        // Single group: nothing is host-forwarded.
        assert_eq!(r.stats.get("traffic.fwd_bytes"), Some(0.0));
        assert!(r.stats.get("idc_stall_frac").unwrap() > 0.0);
    }

    #[test]
    fn mcn_is_slower_than_dimm_link_on_remote_traffic() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 300, 0.8);
        let dl = run(&SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink), &wl);
        let mcn = run(
            &SystemConfig::nmp(4, 2).with_idc(IdcKind::CpuForwarding),
            &wl,
        );
        assert!(
            mcn.elapsed.as_ps() > 2 * dl.elapsed.as_ps(),
            "MCN {} vs DIMM-Link {}",
            mcn.elapsed,
            dl.elapsed
        );
    }

    #[test]
    fn barriers_complete_on_all_schemes() {
        let params = quick_params(4);
        let wl = synth::sync_sweep(&params, 1000, 20);
        for idc in [
            IdcKind::CpuForwarding,
            IdcKind::DedicatedBus,
            IdcKind::DimmLink,
        ] {
            let cfg = SystemConfig::nmp(4, 2).with_idc(idc);
            let r = run(&cfg, &wl);
            assert_eq!(r.stats.get("barriers"), Some(20.0), "{idc}");
        }
    }

    #[test]
    fn hierarchical_sync_beats_central_on_dimm_link() {
        let params = quick_params(16);
        let wl = synth::sync_sweep(&params, 500, 30);
        let mut central = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
        central.sync = SyncScheme::Central;
        let mut hier = central.clone();
        hier.sync = SyncScheme::Hierarchical;
        let rc = run(&central, &wl);
        let rh = run(&hier, &wl);
        assert!(
            rh.elapsed < rc.elapsed,
            "hierarchical {} vs central {}",
            rh.elapsed,
            rc.elapsed
        );
    }

    #[test]
    fn profiling_run_is_shorter_and_fills_profile() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 500, 0.5);
        let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        let placement = random_placement(&wl, &cfg, 1);
        let full = NmpSystem::new(&wl, &cfg, &placement, None).run();
        let prof = NmpSystem::new(&wl, &cfg, &placement, Some(50)).run();
        assert!(prof.elapsed < full.elapsed / 2);
        assert!(prof.profile.total() > 0);
    }

    #[test]
    fn optimized_placement_reduces_remote_traffic() {
        let params = quick_params(4);
        // Heavily local workload: random placement scatters threads away
        // from their data; Algorithm 1 must bring them home.
        let wl = synth::uniform_random(&params, 400, 0.1);
        let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        let rand_place = random_placement(&wl, &cfg, 7);
        let prof = NmpSystem::new(&wl, &cfg, &rand_place, Some(100)).run();
        let opt = optimized_placement(&cfg, &prof);
        let r_rand = NmpSystem::new(&wl, &cfg, &rand_place, None).run();
        let r_opt = NmpSystem::new(&wl, &cfg, &opt, None).run();
        let remote = |r: &RawRun| {
            r.stats.get("remote_reads").unwrap() + r.stats.get("remote_writes").unwrap()
        };
        assert!(
            remote(&r_opt) < remote(&r_rand),
            "optimized placement did not reduce remote traffic: {} vs {}",
            remote(&r_opt),
            remote(&r_rand)
        );
        assert!(r_opt.elapsed <= r_rand.elapsed);
    }

    #[test]
    fn random_placement_respects_capacity() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 10, 0.0);
        let cfg = SystemConfig::nmp(4, 2);
        let p = random_placement(&wl, &cfg, 3);
        assert_eq!(p.len(), 16);
        for d in 0..4 {
            assert!(p.iter().filter(|&&x| x == d).count() <= cfg.cores_per_dimm);
        }
    }

    #[test]
    #[should_panic(expected = "placement exceeds")]
    fn overloaded_placement_rejected() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 10, 0.0);
        let cfg = SystemConfig::nmp(4, 2);
        let placement = vec![0; 16]; // 16 threads on DIMM 0's 4 cores
        let _ = NmpSystem::new(&wl, &cfg, &placement, None);
    }

    #[test]
    fn parallel_run_matches_sequential() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 300, 0.6);
        let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        let placement = natural_placement(&wl);
        let seq = NmpSystem::new(&wl, &cfg, &placement, None).run();
        for threads in [2, 4, 8] {
            let par = NmpSystem::new(&wl, &cfg, &placement, None).run_with(threads);
            assert_eq!(seq.elapsed, par.elapsed, "sim-threads={threads}");
            assert_eq!(
                format!("{:?}", seq.stats),
                format!("{:?}", par.stats),
                "sim-threads={threads}"
            );
            assert_eq!(seq.profile, par.profile, "sim-threads={threads}");
        }
    }

    /// Satellite: a core woken twice at the same timestamp must execute its
    /// trace exactly once; the duplicate delivery is counted in
    /// `events.wake` but has no other observable effect.
    #[test]
    fn stale_wake_is_counted_but_changes_nothing() {
        let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        let mut layout = DataLayout::new(4);
        let regions: Vec<_> = (0..4).map(|d| layout.alloc(d, 4096)).collect();
        let mut traces = Vec::new();
        for region in &regions {
            let mut tr = ThreadTrace::new();
            // The atomic parks the thread in WaitTxn from t=0 until the
            // atomic unit finishes — any wake landing in that window is
            // stale by construction.
            tr.push(Op::Atomic {
                addr: region.line_of(0, 64),
            });
            tr.comp(10);
            tr.push(Op::Load {
                addr: region.line_of(1, 64),
                cacheable: false,
            });
            traces.push(tr);
        }
        let wl = Workload::new("stale-wake", traces, layout, vec![0, 1, 2, 3]);
        let placement = natural_placement(&wl);
        let base = NmpSystem::new(&wl, &cfg, &placement, None).run();

        // Inject a duplicate wake for thread 0 at the exact completion time
        // of its atomic. FIFO tie-breaking pops the injected wake first,
        // while the core is still WaitTxn: the stale path must swallow it.
        let mut sys = NmpSystem::new(&wl, &cfg, &placement, None);
        sys.inject_wake(0, cfg.atomic_service);
        let poked = sys.run();

        assert_eq!(
            poked.stats.get("events.wake").unwrap(),
            base.stats.get("events.wake").unwrap() + 1.0,
            "both deliveries must be counted"
        );
        assert_eq!(
            poked.stats.get("events_scheduled").unwrap(),
            base.stats.get("events_scheduled").unwrap() + 1.0
        );
        // ...but the trace ran exactly once: identical timing and DRAM work.
        assert_eq!(poked.elapsed, base.elapsed);
        assert_eq!(poked.stats.get("dram.reads"), base.stats.get("dram.reads"));
        assert_eq!(poked.stats.get("atomics"), Some(4.0));
        assert_eq!(poked.stats.get("barriers"), base.stats.get("barriers"));
    }

    /// Satellite: the budget is observed at the top of the epoch loop, so a
    /// fan-out-heavy run overshoots `max_events` by a bounded, deterministic
    /// amount and stops with the documented status instead of panicking.
    #[test]
    fn budget_overshoot_is_bounded_and_deterministic() {
        let params = quick_params(4);
        let wl = synth::uniform_random(&params, 200, 0.8);
        let mut cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        cfg.budget.max_events = Some(50);
        let r1 = run(&cfg, &wl);
        assert_eq!(r1.status, RunStatus::BudgetExceeded(BudgetKind::Events));
        assert_eq!(r1.stats.get("run.completed"), Some(0.0));
        let scheduled = r1.stats.get("events_scheduled").unwrap();
        // Remote-heavy traffic fans out (net hops, mem ticks, wakes), so
        // the counter legitimately passes the cap before the check runs.
        assert!(scheduled > 50.0, "overshoot expected, got {scheduled}");
        // The overshoot is a pure function of config + workload.
        let r2 = run(&cfg, &wl);
        assert_eq!(r2.stats.get("events_scheduled"), Some(scheduled));
        assert_eq!(r1.elapsed, r2.elapsed);
        assert_eq!(r1.status, r2.status);
    }
}
