//! The fixed 16-core host-CPU baseline of Fig. 10.
//!
//! Runs the same workload traces on out-of-order host cores: every memory
//! access misses through a private L1 and a shared LLC onto one of eight
//! DDR4-2400 channels (line-interleaved), modelled by per-channel memory
//! controllers with a shared data bus. There is no IDC — the host sees one
//! flat physical address space — but it also has none of the NMP system's
//! aggregate rank-level bandwidth, which is exactly the gap near-memory
//! processing exploits.

use crate::config::HostConfig;
use dl_engine::stats::StatSet;
use dl_engine::{EventQueue, Ps, Resource};
use dl_mem::{AccessKind, Cache, CacheOutcome, DimmAddressMap, MemController, MemRequest};
use dl_workloads::{Op, Workload};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ready,
    WaitWindow,
    WaitDrain,
    WaitTxn(u64),
    WaitBarrier,
    Done,
}

#[derive(Debug)]
struct CoreState {
    pc: usize,
    outstanding: Vec<u64>,
    status: Status,
    ready_at: Ps,
    blocked_at: Ps,
    mem_stall: Ps,
    sync_stall: Ps,
    finish: Option<Ps>,
}

#[derive(Debug)]
enum Ev {
    Wake(usize),
    MemTick(usize),
    Done(u64),
}

/// Result of a host-baseline run.
#[derive(Debug, Clone)]
pub struct HostRun {
    /// End-to-end simulated time.
    pub elapsed: Ps,
    /// Counters.
    pub stats: StatSet,
}

/// Simulates `workload` on the host CPU baseline. One thread per core; the
/// workload should therefore be generated with `cfg.cores` threads (the
/// runner does this).
///
/// # Panics
/// Panics if the workload has more threads than the host has cores, or on
/// deadlock.
pub fn simulate_host(workload: &Workload, cfg: &HostConfig) -> HostRun {
    assert!(
        workload.traces().len() <= cfg.cores,
        "host has {} cores but the workload has {} threads",
        cfg.cores,
        workload.traces().len()
    );
    HostSystem::new(workload, cfg).run()
}

struct HostSystem<'w> {
    cfg: HostConfig,
    workload: &'w Workload,
    events: EventQueue<Ev>,
    cores: Vec<CoreState>,
    l1: Vec<Cache>,
    llc: Cache,
    mcs: Vec<MemController>,
    mc_next: Vec<Ps>,
    map: DimmAddressMap,
    atomic_unit: Resource,
    /// txn -> (core, is-load)
    txns: BTreeMap<u64, (usize, bool)>,
    next_txn: u64,
    now: Ps,
    done: usize,
    // barrier
    arrived: usize,
    barrier_ready: Ps,
    waiting: Vec<usize>,
    barriers_passed: u64,
}

impl<'w> HostSystem<'w> {
    fn new(workload: &'w Workload, cfg: &HostConfig) -> Self {
        let threads = workload.traces().len();
        let mut events = EventQueue::new();
        for t in 0..threads {
            events.push(Ps::ZERO, Ev::Wake(t));
        }
        HostSystem {
            cfg: cfg.clone(),
            workload,
            events,
            cores: (0..threads)
                .map(|_| CoreState {
                    pc: 0,
                    outstanding: Vec::with_capacity(cfg.mlp),
                    status: Status::Ready,
                    ready_at: Ps::ZERO,
                    blocked_at: Ps::ZERO,
                    mem_stall: Ps::ZERO,
                    sync_stall: Ps::ZERO,
                    finish: None,
                })
                .collect(),
            l1: (0..threads).map(|_| Cache::new(cfg.l1)).collect(),
            llc: Cache::new(cfg.llc),
            mcs: (0..cfg.channels)
                .map(|c| MemController::new(format!("host-ch{c}"), &cfg.dram))
                .collect(),
            mc_next: vec![Ps::MAX; cfg.channels],
            map: DimmAddressMap::new(&cfg.dram),
            atomic_unit: Resource::new("host-atomics"),
            txns: BTreeMap::new(),
            next_txn: 0,
            now: Ps::ZERO,
            done: 0,
            arrived: 0,
            barrier_ready: Ps::ZERO,
            waiting: Vec::new(),
            barriers_passed: 0,
        }
    }

    /// Line-interleaved channel mapping (maximizes host channel parallelism).
    fn channel_of(&self, addr: u64) -> usize {
        ((addr / 64) % self.cfg.channels as u64) as usize
    }

    fn run(mut self) -> HostRun {
        while let Some((t, ev)) = self.events.pop() {
            self.now = t;
            match ev {
                Ev::Wake(c) => self.advance_core(c),
                Ev::MemTick(ch) => self.mem_tick(ch),
                Ev::Done(id) => {
                    if let Some((c, _)) = self.txns.remove(&id) {
                        self.complete(c, id);
                    }
                }
            }
            if self.done == self.cores.len() {
                break;
            }
        }
        assert_eq!(self.done, self.cores.len(), "host simulation deadlocked");
        self.collect()
    }

    fn advance_core(&mut self, c: usize) {
        if self.cores[c].status != Status::Ready {
            return;
        }
        let mut t = self.now.max(self.cores[c].ready_at);
        let trace = self.workload.traces()[c].ops();
        loop {
            let horizon = self.events.peek_time().unwrap_or(Ps::MAX);
            if t > horizon {
                self.cores[c].ready_at = t;
                self.events.push(t, Ev::Wake(c));
                return;
            }
            if self.cores[c].pc >= trace.len() {
                if self.cores[c].outstanding.is_empty() {
                    self.cores[c].status = Status::Done;
                    self.cores[c].finish = Some(t);
                    self.done += 1;
                } else {
                    self.cores[c].status = Status::WaitDrain;
                    self.cores[c].blocked_at = t;
                }
                return;
            }
            match trace[self.cores[c].pc] {
                Op::Comp(cycles) => {
                    self.cores[c].pc += 1;
                    t += self.cfg.freq.cycles(cycles as u64);
                }
                Op::Load { addr, cacheable } | Op::Store { addr, cacheable } => {
                    let is_write = matches!(trace[self.cores[c].pc], Op::Store { .. });
                    if cacheable {
                        let l1_lat = self.cfg.freq.cycles(self.l1[c].hit_latency_cycles() as u64);
                        match self.l1[c].access(addr, is_write) {
                            CacheOutcome::Hit => {
                                self.cores[c].pc += 1;
                                t += l1_lat;
                                continue;
                            }
                            CacheOutcome::Miss { writeback } => {
                                if let Some(v) = writeback {
                                    self.llc.access(v, true);
                                }
                                let llc_lat =
                                    self.cfg.freq.cycles(self.llc.hit_latency_cycles() as u64);
                                match self.llc.access(addr, is_write) {
                                    CacheOutcome::Hit => {
                                        self.cores[c].pc += 1;
                                        t += l1_lat + llc_lat;
                                        continue;
                                    }
                                    CacheOutcome::Miss { writeback: wb } => {
                                        if let Some(v) = wb {
                                            self.background_write(v, t);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    if self.cores[c].outstanding.len() >= self.cfg.mlp {
                        self.cores[c].status = Status::WaitWindow;
                        self.cores[c].blocked_at = t;
                        return;
                    }
                    self.cores[c].pc += 1;
                    self.issue_mem(c, addr, is_write, t);
                    t += self.cfg.freq.cycles(1);
                }
                Op::Atomic { addr } => {
                    if !self.cores[c].outstanding.is_empty() {
                        self.cores[c].status = Status::WaitDrain;
                        self.cores[c].blocked_at = t;
                        return;
                    }
                    self.cores[c].pc += 1;
                    // LLC-resident atomic: fast but serialized globally.
                    let done = self.atomic_unit.reserve(t, Ps::from_ns(25));
                    let id = self.alloc();
                    self.txns.insert(id, (c, false));
                    self.cores[c].status = Status::WaitTxn(id);
                    self.cores[c].blocked_at = t;
                    let _ = addr;
                    self.events.push(done, Ev::Done(id));
                    return;
                }
                Op::Broadcast { bytes, addr } => {
                    // Shared memory: a broadcast is just the stores of the
                    // payload, visible to everyone.
                    self.cores[c].pc += 1;
                    let lines = (bytes as u64).div_ceil(64);
                    for l in 0..lines {
                        if self.cores[c].outstanding.len() >= self.cfg.mlp {
                            break; // approximate: the rest hit the window later
                        }
                        self.issue_mem(c, addr + l * 64, true, t);
                    }
                    t += self.cfg.freq.cycles(lines);
                }
                Op::Barrier => {
                    if !self.cores[c].outstanding.is_empty() {
                        self.cores[c].status = Status::WaitDrain;
                        self.cores[c].blocked_at = t;
                        return;
                    }
                    self.cores[c].pc += 1;
                    self.cores[c].status = Status::WaitBarrier;
                    self.cores[c].blocked_at = t;
                    self.arrived += 1;
                    self.waiting.push(c);
                    self.barrier_ready = self.barrier_ready.max(t);
                    if self.arrived == self.cores.len() {
                        self.barriers_passed += 1;
                        // Shared-memory barrier: tens of ns once everyone is in.
                        let release = self.barrier_ready + Ps::from_ns(60);
                        let waiting = std::mem::take(&mut self.waiting);
                        self.arrived = 0;
                        self.barrier_ready = Ps::ZERO;
                        for w in waiting {
                            let stall = release.saturating_sub(self.cores[w].blocked_at);
                            self.cores[w].sync_stall += stall;
                            self.cores[w].status = Status::Ready;
                            self.cores[w].ready_at = release;
                            self.events.push(release, Ev::Wake(w));
                        }
                    }
                    return;
                }
            }
        }
    }

    fn alloc(&mut self) -> u64 {
        self.next_txn += 1;
        self.next_txn
    }

    fn issue_mem(&mut self, c: usize, addr: u64, is_write: bool, t: Ps) {
        let ch = self.channel_of(addr);
        let id = self.alloc();
        self.txns.insert(id, (c, !is_write));
        self.cores[c].outstanding.push(id);
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        // Channel command/IO latency folded into the request arrival.
        let arrival = t + self.cfg.channel_latency;
        self.mc_enqueue(ch, arrival, MemRequest::new(id, kind, self.decode(addr)));
    }

    fn background_write(&mut self, addr: u64, t: Ps) {
        let ch = self.channel_of(addr);
        let id = self.alloc();
        // Not in txns: nobody waits.
        self.mc_enqueue(
            ch,
            t + self.cfg.channel_latency,
            MemRequest::new(id, AccessKind::Write, self.decode(addr)),
        );
    }

    fn decode(&self, addr: u64) -> dl_mem::DimmAddr {
        // Fold the interleaved address into the channel's local space.
        self.map.decode(addr / self.cfg.channels as u64)
    }

    fn mc_enqueue(&mut self, ch: usize, at: Ps, req: MemRequest) {
        self.mcs[ch].enqueue(at, req);
        let wake = at.max(self.now);
        if self.mc_next[ch] > wake {
            self.mc_next[ch] = wake;
            self.events.push(wake, Ev::MemTick(ch));
        }
    }

    fn mem_tick(&mut self, ch: usize) {
        if self.now != self.mc_next[ch] {
            return;
        }
        self.mc_next[ch] = Ps::MAX;
        // The data return crosses the channel too: deliver completions with
        // the return-path latency added.
        let lat = self.cfg.channel_latency;
        for comp in self.mcs[ch].service(self.now) {
            if let Some(&(c, _)) = self.txns.get(&comp.id) {
                let _ = c;
                self.events.push(self.now + lat, Ev::Done(comp.id));
            }
        }
        if let Some(w) = self.mcs[ch].next_wake() {
            if self.mc_next[ch] > w {
                self.mc_next[ch] = w;
                self.events.push(w, Ev::MemTick(ch));
            }
        }
    }

    fn complete(&mut self, c: usize, id: u64) {
        if let Status::WaitTxn(waited) = self.cores[c].status {
            if waited == id {
                let stall = self.now.saturating_sub(self.cores[c].blocked_at);
                self.cores[c].mem_stall += stall;
                self.cores[c].status = Status::Ready;
                self.cores[c].ready_at = self.now;
                self.events.push(self.now, Ev::Wake(c));
                return;
            }
        }
        if let Some(pos) = self.cores[c].outstanding.iter().position(|&x| x == id) {
            self.cores[c].outstanding.swap_remove(pos);
            match self.cores[c].status {
                Status::WaitWindow => {
                    let stall = self.now.saturating_sub(self.cores[c].blocked_at);
                    self.cores[c].mem_stall += stall;
                    self.cores[c].status = Status::Ready;
                    self.cores[c].ready_at = self.now;
                    self.events.push(self.now, Ev::Wake(c));
                }
                Status::WaitDrain if self.cores[c].outstanding.is_empty() => {
                    let stall = self.now.saturating_sub(self.cores[c].blocked_at);
                    self.cores[c].mem_stall += stall;
                    self.cores[c].status = Status::Ready;
                    self.cores[c].ready_at = self.now;
                    self.events.push(self.now, Ev::Wake(c));
                }
                _ => {}
            }
        }
    }

    fn collect(self) -> HostRun {
        let elapsed = self
            .cores
            .iter()
            .map(|c| c.finish.expect("finished"))
            .max()
            .unwrap_or(Ps::ZERO);
        let mut s = StatSet::new();
        s.set("elapsed_ps", elapsed.as_ps() as f64);
        s.set("threads", self.cores.len() as f64);
        s.set("barriers", self.barriers_passed as f64);
        let mut activates = 0.0;
        let mut bytes = 0.0;
        for mc in &self.mcs {
            activates += mc.activates() as f64;
            bytes += mc.bytes_moved() as f64;
        }
        s.set("dram.activates", activates);
        s.set("dram.bytes", bytes);
        let threads = self.cores.len() as f64;
        let mem_stall: Ps = self.cores.iter().map(|c| c.mem_stall).sum();
        s.set(
            "mem_stall_frac",
            if elapsed == Ps::ZERO {
                0.0
            } else {
                mem_stall.as_ps() as f64 / (elapsed.as_ps() as f64 * threads)
            },
        );
        HostRun { elapsed, stats: s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HostConfig;
    use dl_workloads::{synth, WorkloadKind, WorkloadParams};

    /// A host-shaped workload: 16 threads over 8 partitions.
    fn host_params() -> WorkloadParams {
        WorkloadParams {
            dimms: 8,
            threads_per_dimm: 2,
            scale: 8,
            seed: 42,
            broadcast: false,
            locality: 0.85,
        }
    }

    #[test]
    fn host_runs_synthetic_workload() {
        let wl = synth::uniform_random(&host_params(), 300, 0.5);
        let r = simulate_host(&wl, &HostConfig::xeon_16core());
        assert!(r.elapsed > Ps::ZERO);
        assert_eq!(r.stats.get("barriers"), Some(1.0));
    }

    #[test]
    fn host_runs_real_workloads() {
        for kind in [
            WorkloadKind::Bfs,
            WorkloadKind::KMeans,
            WorkloadKind::Hotspot,
        ] {
            let wl = kind.build(&host_params());
            let r = simulate_host(&wl, &HostConfig::xeon_16core());
            assert!(r.elapsed > Ps::ZERO, "{kind}");
        }
    }

    #[test]
    fn host_location_of_data_does_not_matter() {
        // On the host everything crosses the same channels: remote fraction
        // in the NMP sense has no effect.
        let local = synth::uniform_random(&host_params(), 400, 0.0);
        let remote = synth::uniform_random(&host_params(), 400, 1.0);
        let cfg = HostConfig::xeon_16core();
        let a = simulate_host(&local, &cfg);
        let b = simulate_host(&remote, &cfg);
        let ratio = a.elapsed.as_ps() as f64 / b.elapsed.as_ps() as f64;
        assert!((0.8..1.25).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "host has 16 cores")]
    fn too_many_threads_rejected() {
        let params = WorkloadParams::small(8); // 32 threads
        let wl = synth::uniform_random(&params, 10, 0.0);
        let _ = simulate_host(&wl, &HostConfig::xeon_16core());
    }
}
