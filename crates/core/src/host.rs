//! The host side of the memory system: channels, polling, and the
//! CPU-forwarding engine (paper Sections III-D "Inter-Group Transmission"
//! and IV-A).
//!
//! Memory channels are FIFO bandwidth resources. Polling is modelled
//! faithfully as standing channel occupancy: with the `Base` strategy the
//! host scans every DIMM of every channel each polling period, so the
//! channel is busy `dimms_per_channel × poll_cost` out of every
//! `poll_period` — this is exactly the "memory bus occupation" series of
//! Fig. 15-b. Interrupt strategies have no standing polls but pay an
//! interrupt latency plus a scan burst per request; the proxy strategy keeps
//! standing polls on one DIMM per DL group only.

use crate::config::{PollingStrategy, SystemConfig};
use dl_engine::{BandwidthResource, Ps, Resource};

/// Channels + polling + forwarding state of the host CPU.
#[derive(Debug)]
pub struct HostPath {
    channels: Vec<BandwidthResource>,
    channel_latency: Ps,
    strategy: PollingStrategy,
    poll_period: Ps,
    poll_cost: Ps,
    interrupt_latency: Ps,
    fwd_proc: Ps,
    fwd_occupancy: Ps,
    sync_fwd_occupancy: Ps,
    /// The host's forwarding thread: starts one packet per `fwd_occupancy`.
    cpu: Resource,
    /// Standing poll targets per channel (0 = no periodic polling there).
    standing: Vec<usize>,
    /// Time up to which standing polls have been reserved, per channel.
    polled_until: Vec<Ps>,
    /// Pending interrupt-scan completion per channel (interrupt strategies
    /// coalesce: one ALERT_N scan discovers every request registered before
    /// it fires).
    pending_scan: Vec<Ps>,
    forwarded_packets: u64,
    forwarded_bytes: u64,
    polls: u64,
    interrupts: u64,
}

impl HostPath {
    /// Builds the host path for a system configuration.
    ///
    /// `proxy_channels` lists the channels hosting a polling-proxy DIMM
    /// (used by the `Proxy` strategy; pass an empty slice otherwise).
    pub fn new(cfg: &SystemConfig, proxy_channels: &[usize]) -> Self {
        let channels = (0..cfg.channels)
            .map(|c| BandwidthResource::new(format!("channel{c}"), cfg.channel_bandwidth))
            .collect();
        let standing = (0..cfg.channels)
            .map(|c| match cfg.polling {
                PollingStrategy::Base => cfg.dimms_per_channel(),
                PollingStrategy::Proxy => proxy_channels.iter().filter(|&&p| p == c).count(),
                PollingStrategy::BaseInterrupt | PollingStrategy::ProxyInterrupt => 0,
            })
            .collect();
        HostPath {
            channels,
            cpu: Resource::new("host-fwd-thread"),
            channel_latency: cfg.channel_latency,
            strategy: cfg.polling,
            poll_period: cfg.poll_period,
            poll_cost: cfg.poll_cost,
            interrupt_latency: cfg.interrupt_latency,
            fwd_proc: cfg.fwd_proc,
            fwd_occupancy: cfg.fwd_occupancy,
            sync_fwd_occupancy: cfg.sync_fwd_occupancy,
            standing,
            polled_until: vec![Ps::ZERO; cfg.channels],
            pending_scan: vec![Ps::ZERO; cfg.channels],
            forwarded_packets: 0,
            forwarded_bytes: 0,
            polls: 0,
            interrupts: 0,
        }
    }

    /// Reserves standing poll occupancy on `channel` up to `now`.
    ///
    /// When far behind (idle stretches), whole runs of polling periods are
    /// reserved as one block — identical occupancy accounting, and the
    /// block sits in an interval no transfer used anyway.
    fn advance_polls(&mut self, channel: usize, now: Ps) {
        let n = self.standing[channel];
        if n == 0 {
            return;
        }
        let period = self.poll_period;
        let behind = now.saturating_sub(self.polled_until[channel]).as_ps() / period.as_ps();
        if behind > 8 {
            // Backlogged periods: the channel had idle time then (or the
            // host skipped/deferred polling while it was busy). Either way,
            // polls from the stale past must count toward occupancy but not
            // steal *future* channel time from data transfers.
            let bulk = behind - 4; // leave the recent past fine-grained
            self.channels[channel].account_busy(self.poll_cost * n as u64 * bulk);
            self.polls += n as u64 * bulk;
            self.polled_until[channel] += period * bulk;
        }
        // Recent periods contend with in-flight data for real.
        while self.polled_until[channel] + period <= now {
            let at = self.polled_until[channel];
            self.channels[channel].occupy(at, self.poll_cost * n as u64);
            self.polls += n as u64;
            self.polled_until[channel] += period;
        }
    }

    /// When the host notices a forwarding request registered at `registered`
    /// on `channel` (scanning `scan_dimms` DIMMs for interrupt strategies).
    pub fn discover(&mut self, registered: Ps, channel: usize, scan_dimms: usize) -> Ps {
        self.advance_polls(channel, registered);
        match self.strategy {
            PollingStrategy::Base | PollingStrategy::Proxy => {
                // Next periodic scan boundary after registration.
                let period = self.poll_period.as_ps();
                let k = registered.as_ps().div_ceil(period);
                Ps::from_ps(k * period) + self.poll_cost
            }
            PollingStrategy::BaseInterrupt | PollingStrategy::ProxyInterrupt => {
                // Coalescing: if a scan triggered by an earlier request has
                // not fired yet, this request is discovered by it; only
                // otherwise does a new interrupt + scan get scheduled.
                if self.pending_scan[channel] > registered {
                    return self.pending_scan[channel];
                }
                self.interrupts += 1;
                let scan_start = registered + self.interrupt_latency;
                let scan = self.poll_cost * scan_dimms.max(1) as u64;
                self.channels[channel].occupy(scan_start, scan);
                self.polls += scan_dimms.max(1) as u64;
                self.pending_scan[channel] = scan_start + scan;
                scan_start + scan
            }
        }
    }

    /// Forwards a packet: read `bytes` from `src_channel`, process on the
    /// (serialized) forwarding thread, write to `dst_channel`. Returns the
    /// arrival time at the destination DIMM.
    ///
    /// The host runs a single forwarding thread (the paper's polling-thread
    /// assumption) whose pipeline starts one packet per `fwd_occupancy`;
    /// each packet additionally takes `fwd_proc` of latency to emerge. This
    /// bounds CPU-forwarding throughput without charging the full
    /// cache-hierarchy round trip serially per packet.
    pub fn forward(&mut self, t: Ps, src_channel: usize, dst_channel: usize, bytes: u64) -> Ps {
        let read_done = self.channel_transfer(src_channel, t, bytes);
        let slot_end = self.cpu.reserve(read_done, self.fwd_occupancy);
        let processed = slot_end + self.fwd_proc;
        let written = self.channel_transfer(dst_channel, processed, bytes);
        self.forwarded_packets += 1;
        self.forwarded_bytes += bytes;
        written
    }

    /// Forwards a synchronization message: same path as [`Self::forward`]
    /// but the host occupancy is the register-level `sync_fwd_occupancy` —
    /// the polling thread itself shuttles sync flags, so they serialize
    /// hard (the inefficiency hierarchical synchronization exists to
    /// avoid, paper Section III-D).
    pub fn forward_sync(
        &mut self,
        t: Ps,
        src_channel: usize,
        dst_channel: usize,
        bytes: u64,
    ) -> Ps {
        let read_done = self.channel_transfer(src_channel, t, bytes);
        let slot_end = self.cpu.reserve(read_done, self.sync_fwd_occupancy);
        let processed = slot_end + self.fwd_proc;
        let written = self.channel_transfer(dst_channel, processed, bytes);
        self.forwarded_packets += 1;
        self.forwarded_bytes += bytes;
        written
    }

    /// A raw data transfer on one channel (host memory traffic, ABC-DIMM
    /// broadcast writes). Returns the completion time including latency.
    ///
    /// Standing polls are accounted both before the transfer and through its
    /// duration: polling steals channel bandwidth continuously, so the polls
    /// that would interleave with the transfer are reserved right after it —
    /// over a run, channel time = data + polls, exactly as on real hardware.
    pub fn channel_transfer(&mut self, channel: usize, t: Ps, bytes: u64) -> Ps {
        self.advance_polls(channel, t);
        let end = self.channels[channel].transfer(t, bytes);
        self.advance_polls(channel, end);
        end + self.channel_latency
    }

    /// One-way channel latency.
    pub fn channel_latency(&self) -> Ps {
        self.channel_latency
    }

    /// Host packet-processing time per forwarded packet.
    pub fn fwd_proc(&self) -> Ps {
        self.fwd_proc
    }

    /// Occupies the host forwarding thread for one packet operation
    /// starting no earlier than `t`; returns when the host is done with it.
    /// Used by the broadcast paths (MCN-BC per-DIMM writes, ABC-DIMM
    /// per-channel broadcast-writes), which are host-driven just like
    /// point-to-point forwarding.
    pub fn host_process(&mut self, t: Ps) -> Ps {
        self.cpu.reserve(t, self.fwd_occupancy) + self.fwd_proc
    }

    /// Accounts standing polls up to the end of the run. Call once before
    /// reading occupancy.
    pub fn finalize(&mut self, end: Ps) {
        for c in 0..self.channels.len() {
            self.advance_polls(c, end);
        }
    }

    /// Mean channel occupancy over `[0, end]`.
    pub fn bus_occupancy(&self, end: Ps) -> f64 {
        if self.channels.is_empty() {
            return 0.0;
        }
        self.channels
            .iter()
            .map(|c| c.utilization(end))
            .sum::<f64>()
            / self.channels.len() as f64
    }

    /// Total bytes moved over all channels.
    pub fn channel_bytes(&self) -> u64 {
        self.channels.iter().map(|c| c.bytes_moved()).sum()
    }

    /// Packets forwarded by the host CPU.
    pub fn forwarded_packets(&self) -> u64 {
        self.forwarded_packets
    }

    /// Bytes forwarded by the host CPU (counted once, not per channel
    /// crossing).
    pub fn forwarded_bytes(&self) -> u64 {
        self.forwarded_bytes
    }

    /// Poll operations performed.
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// Interrupts taken.
    pub fn interrupts(&self) -> u64 {
        self.interrupts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{IdcKind, SystemConfig};

    fn cfg(polling: PollingStrategy) -> SystemConfig {
        let mut c = SystemConfig::nmp(16, 8).with_idc(match polling {
            PollingStrategy::Proxy | PollingStrategy::ProxyInterrupt => IdcKind::DimmLink,
            _ => IdcKind::CpuForwarding,
        });
        c.polling = polling;
        c
    }

    #[test]
    fn base_polling_occupies_about_30_percent() {
        let c = cfg(PollingStrategy::Base);
        let mut h = HostPath::new(&c, &[]);
        let end = Ps::from_us(100);
        h.finalize(end);
        let occ = h.bus_occupancy(end);
        // 2 DIMMs x 30 ns per 200 ns = 30 %.
        assert!((occ - 0.30).abs() < 0.02, "occupancy {occ}");
    }

    #[test]
    fn interrupt_strategy_has_no_standing_polls() {
        let c = cfg(PollingStrategy::BaseInterrupt);
        let mut h = HostPath::new(&c, &[]);
        let end = Ps::from_us(100);
        h.finalize(end);
        assert_eq!(h.bus_occupancy(end), 0.0);
        // But a discovery costs interrupt latency + a channel scan.
        let d = h.discover(Ps::from_us(1), 0, 2);
        assert_eq!(d, Ps::from_us(1) + c.interrupt_latency + c.poll_cost * 2);
        assert_eq!(h.interrupts(), 1);
    }

    #[test]
    fn proxy_polls_only_proxy_channels() {
        let c = cfg(PollingStrategy::Proxy);
        // Proxies on channels 1 and 5 (one per group).
        let mut h = HostPath::new(&c, &[1, 5]);
        let end = Ps::from_us(100);
        h.finalize(end);
        let occ = h.bus_occupancy(end);
        // 2 of 8 channels at 1 x 30/200 = 15 %; average = 3.75 %.
        assert!((occ - 0.0375).abs() < 0.01, "occupancy {occ}");
    }

    #[test]
    fn base_discovery_waits_for_next_scan() {
        let c = cfg(PollingStrategy::Base);
        let mut h = HostPath::new(&c, &[]);
        let d = h.discover(Ps::from_ns(250), 0, 2);
        // Next boundary at 400 ns + 30 ns read-out.
        assert_eq!(d, Ps::from_ns(430));
        // Registration exactly on a boundary is picked up by that scan.
        let d2 = h.discover(Ps::from_ns(600), 0, 2);
        assert_eq!(d2, Ps::from_ns(630));
    }

    #[test]
    fn forward_crosses_both_channels() {
        let c = cfg(PollingStrategy::BaseInterrupt);
        let mut h = HostPath::new(&c, &[]);
        let arrival = h.forward(Ps::ZERO, 0, 3, 80);
        // 80 B at 19.2 GB/s ~ 4.17 ns per crossing + 2x latency + proc.
        let min = c.fwd_proc + c.channel_latency * 2;
        assert!(arrival > min);
        assert!(arrival < min + Ps::from_ns(20));
        assert_eq!(h.forwarded_packets(), 1);
        assert_eq!(h.forwarded_bytes(), 80);
        assert_eq!(h.channel_bytes(), 160); // both crossings
    }

    #[test]
    fn polls_compete_with_data_transfers() {
        let c = cfg(PollingStrategy::Base);
        let mut h = HostPath::new(&c, &[]);
        // Back-to-back 1-us transfers: the second queues behind the polls
        // that interleave with the first (2 x 30 ns per 200 ns ~ 30 %).
        let a = h.channel_transfer(0, Ps::ZERO, 19_200);
        let b = h.channel_transfer(0, Ps::ZERO, 19_200);
        assert!(a >= Ps::from_us(1));
        assert!(
            b > a + Ps::from_us(1) + Ps::from_ns(250),
            "second transfer unaffected by polling: {a} then {b}"
        );
    }
}
