//! High-level experiment API: one call per (workload, system) run.

use crate::config::{HostConfig, PlacementPolicy, SystemConfig};
use crate::energy::{energy_of, EnergyBreakdown, EnergyParams};
use crate::host_sim::{simulate_host, HostRun};
use crate::system::{natural_placement, optimized_placement, random_placement, NmpSystem, RawRun};
use dl_engine::stats::StatSet;
use dl_engine::{Ps, RunStatus};
use dl_workloads::{Workload, WorkloadKind, WorkloadParams};

/// A finished experiment run with derived metrics.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// End-to-end time, including the profiling phase when Algorithm 1 ran.
    pub elapsed: Ps,
    /// Time spent in the profiling phase (zero without task mapping).
    pub profiling: Ps,
    /// All raw counters of the measured run.
    pub stats: StatSet,
    /// Energy of the measured run.
    pub energy: EnergyBreakdown,
    /// Whether every phase of the experiment ran to completion, or a
    /// configured [`dl_engine::RunBudget`] cut one short. For optimized
    /// runs this merges the profiling and measured phases.
    pub status: RunStatus,
}

impl RunResult {
    /// Fraction of core time stalled on non-overlapped IDC.
    pub fn idc_stall_frac(&self) -> f64 {
        self.stats.get("idc_stall_frac").unwrap_or(0.0)
    }

    /// Mean memory-channel occupancy.
    pub fn bus_occupancy(&self) -> f64 {
        self.stats.get("host.bus_occupancy").unwrap_or(0.0)
    }

    /// Traffic fractions `(local, link, host-forwarded, bus)` by bytes
    /// (Fig. 11's breakdown).
    pub fn traffic_breakdown(&self) -> (f64, f64, f64, f64) {
        let g = |k: &str| self.stats.get(k).unwrap_or(0.0);
        let local = g("traffic.local_bytes");
        let link = g("traffic.link_bytes");
        let fwd = g("traffic.fwd_bytes");
        let bus = g("traffic.bus_bytes");
        let total = local + link + fwd + bus;
        if total == 0.0 {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            (local / total, link / total, fwd / total, bus / total)
        }
    }
}

fn finish(raw: RawRun, cfg: &SystemConfig, profiling: Ps, earlier: RunStatus) -> RunResult {
    let energy = energy_of(
        &raw.stats,
        raw.elapsed,
        cfg.dimms,
        cfg.idc,
        &EnergyParams::default(),
    );
    RunResult {
        elapsed: raw.elapsed + profiling,
        profiling,
        stats: raw.stats,
        energy,
        status: earlier.merge(raw.status),
    }
}

/// Runs `workload` on the NMP system with the configured static placement
/// (no task-mapping optimization — "DIMM-Link-base" and all baselines).
pub fn simulate(workload: &Workload, cfg: &SystemConfig) -> RunResult {
    simulate_with(workload, cfg, 1)
}

/// Like [`simulate`], with up to `sim_threads` OS worker threads advancing
/// the DIMM partitions in parallel. Results are byte-identical at any
/// thread count (see [`NmpSystem::run_with`]); `sim_threads` is therefore a
/// host-side performance knob and deliberately not part of
/// [`SystemConfig`].
pub fn simulate_with(workload: &Workload, cfg: &SystemConfig, sim_threads: usize) -> RunResult {
    let placement = match cfg.placement {
        PlacementPolicy::Natural => natural_placement(workload),
        PlacementPolicy::Random => random_placement(workload, cfg, cfg.seed),
    };
    let raw = NmpSystem::new(workload, cfg, &placement, None).run_with(sim_threads);
    finish(raw, cfg, Ps::ZERO, RunStatus::Completed)
}

/// Runs the full Algorithm 1 pipeline ("DIMM-Link-opt"): profile the first
/// `cfg.profile_fraction` of each trace on a random placement, solve the
/// min-cost max-flow, then run the whole workload on the optimized
/// placement. The profiling time is charged to `elapsed`, as in the paper.
pub fn simulate_optimized(workload: &Workload, cfg: &SystemConfig) -> RunResult {
    simulate_optimized_with(workload, cfg, 1)
}

/// Like [`simulate_optimized`], running both the profiling and the measured
/// phase with up to `sim_threads` OS worker threads. Byte-identical at any
/// thread count.
pub fn simulate_optimized_with(
    workload: &Workload,
    cfg: &SystemConfig,
    sim_threads: usize,
) -> RunResult {
    let start = random_placement(workload, cfg, cfg.seed);
    let max_len = workload.traces().iter().map(|t| t.len()).max().unwrap_or(0);
    let limit = ((max_len as f64 * cfg.profile_fraction) as usize).max(32);
    let profile_run = NmpSystem::new(workload, cfg, &start, Some(limit)).run_with(sim_threads);
    let placement = optimized_placement(cfg, &profile_run);
    let raw = NmpSystem::new(workload, cfg, &placement, None).run_with(sim_threads);
    finish(raw, cfg, profile_run.elapsed, profile_run.status)
}

/// Builds and runs the fixed 16-core host baseline for a workload kind at
/// the given scale. The host workload uses 16 threads over the host's 8
/// channels' worth of partitions, so total work matches the NMP runs of the
/// same scale.
pub fn host_baseline(kind: WorkloadKind, scale: u32, seed: u64) -> HostRun {
    let host = HostConfig::xeon_16core();
    let params = WorkloadParams {
        dimms: host.channels,
        threads_per_dimm: host.cores / host.channels,
        scale,
        seed,
        broadcast: false,
        locality: 0.85,
    };
    let wl = kind.build(&params);
    simulate_host(&wl, &host)
}

/// Convenience: the host baseline for an already-built host-shaped workload.
pub fn host_baseline_for(workload: &Workload) -> HostRun {
    simulate_host(workload, &HostConfig::xeon_16core())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::IdcKind;

    fn params(dimms: usize) -> WorkloadParams {
        WorkloadParams {
            scale: 9,
            ..WorkloadParams::small(dimms)
        }
    }

    #[test]
    fn nmp_beats_host_on_memory_bound_graph_work() {
        let kind = WorkloadKind::Pagerank;
        let wl = kind.build(&params(16));
        let cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
        let nmp = simulate(&wl, &cfg);
        let host = host_baseline(kind, 9, 42);
        let speedup = host.elapsed.as_ps() as f64 / nmp.elapsed.as_ps() as f64;
        assert!(speedup > 1.5, "NMP speedup only {speedup:.2}x");
    }

    #[test]
    fn optimized_includes_profiling_time() {
        let wl = WorkloadKind::Bfs.build(&params(4));
        let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        let opt = simulate_optimized(&wl, &cfg);
        assert!(opt.profiling > Ps::ZERO);
        assert!(opt.elapsed > opt.profiling);
    }

    #[test]
    fn mechanism_ordering_on_a_graph_workload() {
        // At 16 DIMMs with an IDC-heavy graph kernel, the dedicated bus
        // saturates while DIMM-Link's per-link bandwidth scales (paper
        // Fig. 10's shape). Use a scale where that pressure exists.
        let wl = WorkloadKind::Sssp.build(&WorkloadParams {
            scale: 11,
            ..WorkloadParams::small(16)
        });
        let cfg = SystemConfig::nmp(16, 8);
        let dl = simulate(&wl, &cfg.clone().with_idc(IdcKind::DimmLink));
        let aim = simulate(&wl, &cfg.clone().with_idc(IdcKind::DedicatedBus));
        let mcn = simulate(&wl, &cfg.clone().with_idc(IdcKind::CpuForwarding));
        assert!(
            dl.elapsed < aim.elapsed && aim.elapsed < mcn.elapsed,
            "expected DL < AIM < MCN, got {} / {} / {}",
            dl.elapsed,
            aim.elapsed,
            mcn.elapsed
        );
    }

    #[test]
    fn budget_cuts_a_run_short_deterministically() {
        use dl_engine::BudgetKind;
        let wl = WorkloadKind::Bfs.build(&params(4));
        let mut cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        let full = simulate(&wl, &cfg);
        assert!(full.status.is_complete());

        cfg.budget.max_events = Some(5_000);
        let cut = simulate(&wl, &cfg);
        assert_eq!(cut.status, RunStatus::BudgetExceeded(BudgetKind::Events));
        assert!(cut.elapsed < full.elapsed);
        assert_eq!(cut.stats.get("run.completed"), Some(0.0));
        // The cut-off is a property of the simulation, not the machine:
        // repeating the run reproduces it exactly.
        let again = simulate(&wl, &cfg);
        assert_eq!(again.elapsed, cut.elapsed);
        assert_eq!(again.stats, cut.stats);

        cfg.budget = dl_engine::RunBudget {
            max_events: None,
            max_sim_ps: Some(full.elapsed.as_ps() / 4),
        };
        let timed = simulate(&wl, &cfg);
        assert_eq!(timed.status, RunStatus::BudgetExceeded(BudgetKind::SimTime));
        assert!(timed.elapsed < full.elapsed);
    }

    #[test]
    fn traffic_breakdown_sums_to_one() {
        let wl = WorkloadKind::Bfs.build(&params(16));
        let cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
        let r = simulate(&wl, &cfg);
        let (a, b, c, d) = r.traffic_breakdown();
        assert!((a + b + c + d - 1.0).abs() < 1e-9);
        assert!(a > 0.0 && b > 0.0);
        assert!(
            c > 0.0,
            "16D system has two groups: some forwarding expected"
        );
    }

    #[test]
    fn energy_is_positive_and_dominated_by_reasonable_terms() {
        let wl = WorkloadKind::KMeans.build(&params(8));
        let cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
        let r = simulate(&wl, &cfg);
        assert!(r.energy.total() > 0.0);
        assert!(r.energy.dram_j > 0.0);
        assert!(r.energy.nmp_cores_j > 0.0);
    }
}
