#![forbid(unsafe_code)]
//! # dimm-link
//!
//! A from-scratch reproduction of **DIMM-Link: Enabling Efficient Inter-DIMM
//! Communication for Near-Memory Processing** (HPCA 2023).
//!
//! The crate models a complete DIMM-based near-memory-processing system —
//! NMP cores, caches, DDR4 DIMMs, memory channels, the host CPU's polling
//! and forwarding path — and four interchangeable inter-DIMM communication
//! (IDC) mechanisms:
//!
//! * [`config::IdcKind::CpuForwarding`] — MCN / UPMEM-style host forwarding,
//! * [`config::IdcKind::DedicatedBus`] — AIM's shared multi-drop bus,
//! * [`config::IdcKind::AbcDimm`] — intra-channel broadcast,
//! * [`config::IdcKind::DimmLink`] — the paper's SerDes-linked DL groups
//!   with hybrid routing, polling proxy, hierarchical synchronization, and
//!   distance-aware task mapping (Algorithm 1).
//!
//! # Quickstart
//!
//! ```
//! use dimm_link::config::{IdcKind, SystemConfig};
//! use dimm_link::runner::simulate;
//! use dl_workloads::{WorkloadKind, WorkloadParams};
//!
//! // Build a small BFS workload for a 4-DIMM, 2-channel system...
//! let params = WorkloadParams { scale: 8, ..WorkloadParams::small(4) };
//! let workload = WorkloadKind::Bfs.build(&params);
//!
//! // ...and run it with DIMM-Link vs. CPU-forwarding.
//! let base = SystemConfig::nmp(4, 2);
//! let dl = simulate(&workload, &base.clone().with_idc(IdcKind::DimmLink));
//! let mcn = simulate(&workload, &base.with_idc(IdcKind::CpuForwarding));
//! assert!(dl.elapsed < mcn.elapsed);
//! ```

pub mod config;
pub mod energy;
pub mod host;
pub mod host_sim;
pub mod idc;
pub mod runner;
pub mod system;

pub use config::{HostConfig, IdcKind, PlacementPolicy, PollingStrategy, SyncScheme, SystemConfig};
pub use energy::{EnergyBreakdown, EnergyParams};
pub use runner::{
    host_baseline, simulate, simulate_optimized, simulate_optimized_with, simulate_with, RunResult,
};
pub use system::{natural_placement, random_placement, NmpSystem};
