//! System configuration (paper Table V plus the knobs of Sections IV–VI).

use dl_engine::{Freq, Ps, RunBudget};
use dl_mem::{CacheConfig, DramConfig};
use dl_noc::{LinkParams, TopologyKind};
use serde::{Deserialize, Serialize};

/// Which inter-DIMM communication mechanism the system uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IdcKind {
    /// Host-CPU forwarding over the memory channels (MCN / UPMEM style).
    CpuForwarding,
    /// A dedicated multi-drop bus shared by all DIMMs (AIM).
    DedicatedBus,
    /// Intra-channel multi-drop broadcast, CPU forwarding across channels
    /// (ABC-DIMM).
    AbcDimm,
    /// DIMM-Link: external SerDes links between adjacent DIMMs with hybrid
    /// routing.
    DimmLink,
    /// DIMM-Link on disaggregated memory (paper Section VI): each DL group
    /// is a memory blade; inter-blade packets ride a CXL-class fabric
    /// instead of host-CPU forwarding.
    DimmLinkCxl,
}

impl std::fmt::Display for IdcKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            IdcKind::CpuForwarding => "MCN",
            IdcKind::DedicatedBus => "AIM",
            IdcKind::AbcDimm => "ABC-DIMM",
            IdcKind::DimmLink => "DIMM-Link",
            IdcKind::DimmLinkCxl => "DIMM-Link+CXL",
        };
        f.write_str(s)
    }
}

/// Host polling strategies (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PollingStrategy {
    /// Periodically scan every DIMM of every channel.
    Base,
    /// ALERT_N interrupt, then scan the interrupting channel's DIMMs.
    BaseInterrupt,
    /// Scan only the proxy DIMM of each DL group (requests are aggregated
    /// at the proxy over DIMM-Link). Only meaningful with
    /// [`IdcKind::DimmLink`].
    Proxy,
    /// Interrupt plus proxy: scan one DIMM of the interrupting group.
    ProxyInterrupt,
}

impl std::fmt::Display for PollingStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PollingStrategy::Base => "Base",
            PollingStrategy::BaseInterrupt => "Base+Itrpt",
            PollingStrategy::Proxy => "P-P",
            PollingStrategy::ProxyInterrupt => "P-P+Itrpt",
        };
        f.write_str(s)
    }
}

/// Barrier/lock coordination scheme (paper Section III-D, Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncScheme {
    /// Every thread synchronizes against one global master core.
    Central,
    /// Core masters → DIMM master → group master → global (DIMM-Link-Hier).
    Hierarchical,
}

/// How threads are initially placed on DIMMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Thread `t` runs on its data's home DIMM (the static OpenMP-style
    /// mapping; what DIMM-Link-base uses).
    Natural,
    /// Uniformly random placement (the starting point of the profiling run
    /// in Algorithm 1).
    Random,
}

/// Full system configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of NMP DIMMs.
    pub dimms: usize,
    /// Number of host memory channels.
    pub channels: usize,
    /// NMP cores per DIMM (paper: 4 general-purpose cores).
    pub cores_per_dimm: usize,
    /// NMP core clock.
    pub nmp_freq: Freq,
    /// Maximum outstanding memory requests per NMP core (in-order, small).
    pub nmp_mlp: usize,
    /// NMP L1 configuration.
    pub nmp_l1: CacheConfig,
    /// Shared per-DIMM L2 (paper: 128 KB).
    pub nmp_l2: CacheConfig,
    /// DRAM configuration per DIMM.
    pub dram: DramConfig,
    /// Memory-channel bandwidth in bytes/s (DDR4-2400: 19.2 GB/s).
    pub channel_bandwidth: u64,
    /// One-way channel latency (command + IO path).
    pub channel_latency: Ps,
    /// IDC mechanism.
    pub idc: IdcKind,
    /// DIMM-Link link parameters (used when `idc == DimmLink`).
    pub link: LinkParams,
    /// DL-group topology.
    pub topology: TopologyKind,
    /// Number of DL groups (DIMMs on each side of the CPU socket).
    pub groups: usize,
    /// DL-Controller packetize/decode latency per endpoint.
    pub dl_proc: Ps,
    /// Polling strategy for host forwarding.
    pub polling: PollingStrategy,
    /// Full-scan polling period per channel.
    pub poll_period: Ps,
    /// Channel occupancy of polling one DIMM's registers.
    pub poll_cost: Ps,
    /// Interrupt delivery + context switch latency (ALERT_N path).
    pub interrupt_latency: Ps,
    /// Host packet-forwarding latency per packet (GEM5-profiled constant;
    /// pipelined — see `fwd_occupancy`).
    pub fwd_proc: Ps,
    /// Serialized initiation interval of the host forwarding thread: the
    /// host can start a new forward only this often (its pipeline
    /// throughput), even though each packet takes `fwd_proc` to emerge.
    pub fwd_occupancy: Ps,
    /// Synchronization scheme.
    pub sync: SyncScheme,
    /// Latency of intra-DIMM core synchronization (via shared L2).
    pub local_sync_latency: Ps,
    /// Serialized host-CPU occupancy per *synchronization* message it
    /// forwards: unlike bulk data (which moves through DMA burst engines at
    /// `fwd_occupancy`), sync flags are register-level operations performed
    /// by the polling thread itself.
    pub sync_fwd_occupancy: Ps,
    /// Serialized processing per message at a synchronization master core
    /// (aggregation, counter update, release initiation).
    pub sync_master_proc: Ps,
    /// Home-DIMM service time of one atomic operation.
    pub atomic_service: Ps,
    /// Arbitration + bus-turnaround overhead per transaction on the AIM
    /// dedicated multi-drop bus (shared-bus small-packet inefficiency).
    pub bus_txn_overhead: Ps,
    /// One-way latency of the AIM dedicated bus: arbitration among all
    /// DIMMs plus propagation along a heavily-loaded multi-drop trace (the
    /// signal-integrity-constrained topology the paper criticizes runs far
    /// slower than a point-to-point link).
    pub bus_latency: Ps,
    /// Initial thread placement.
    pub placement: PlacementPolicy,
    /// Fraction of each trace simulated during the profiling phase of
    /// Algorithm 1 (paper: 1 %).
    pub profile_fraction: f64,
    /// Seed for randomized placement.
    pub seed: u64,
    /// Per-blade CXL port bandwidth for [`IdcKind::DimmLinkCxl`]
    /// (CXL 2.0 x8-class).
    pub cxl_bandwidth: u64,
    /// One-way CXL fabric latency (port + switch + wire).
    pub cxl_latency: Ps,
    /// Deterministic run budget (scheduled events / simulated time); the
    /// default is unlimited. Exceeding it ends the run with
    /// [`dl_engine::RunStatus::BudgetExceeded`] instead of panicking.
    pub budget: RunBudget,
}

impl SystemConfig {
    /// The paper's default NMP system at a given size, e.g. `(16, 8)` for
    /// the 16D-8C configuration of Fig. 10.
    ///
    /// # Panics
    /// Panics if `dimms` is not a positive multiple of `channels`.
    pub fn nmp(dimms: usize, channels: usize) -> Self {
        assert!(
            dimms > 0 && channels > 0 && dimms.is_multiple_of(channels),
            "dimms ({dimms}) must be a positive multiple of channels ({channels})"
        );
        SystemConfig {
            dimms,
            channels,
            cores_per_dimm: 4,
            nmp_freq: Freq::from_ghz(2.0),
            nmp_mlp: 8,
            nmp_l1: CacheConfig::l1_32k(),
            nmp_l2: CacheConfig::l2_128k(),
            dram: DramConfig::ddr4_2400_lrdimm(),
            channel_bandwidth: 19_200_000_000,
            channel_latency: Ps::from_ns(15),
            idc: IdcKind::DimmLink,
            link: LinkParams::grs_25gbps(),
            topology: TopologyKind::Chain,
            groups: if dimms >= 8 { 2 } else { 1 },
            dl_proc: Ps::from_ns(10),
            polling: PollingStrategy::Base,
            poll_period: Ps::from_ns(200),
            poll_cost: Ps::from_ns(30),
            interrupt_latency: Ps::from_ns(400),
            fwd_proc: Ps::from_ns(150),
            fwd_occupancy: Ps::from_ns(4),
            sync: SyncScheme::Hierarchical,
            local_sync_latency: Ps::from_ns(25),
            sync_fwd_occupancy: Ps::from_ns(80),
            sync_master_proc: Ps::from_ns(15),
            atomic_service: Ps::from_ns(20),
            bus_txn_overhead: Ps::from_ns(2),
            bus_latency: Ps::from_ns(45),
            placement: PlacementPolicy::Natural,
            profile_fraction: 0.01,
            seed: 42,
            cxl_bandwidth: 32_000_000_000,
            cxl_latency: Ps::from_ns(250),
            budget: RunBudget::UNLIMITED,
        }
    }

    /// The four P2P evaluation configurations of Fig. 10.
    pub fn p2p_sweep() -> [(&'static str, SystemConfig); 4] {
        [
            ("4D-2C", Self::nmp(4, 2)),
            ("8D-4C", Self::nmp(8, 4)),
            ("12D-6C", Self::nmp(12, 6)),
            ("16D-8C", Self::nmp(16, 8)),
        ]
    }

    /// Builds a variant with a different IDC mechanism and its matching
    /// polling/sync defaults (MCN and AIM use base polling and central
    /// synchronization in the paper's comparisons).
    pub fn with_idc(mut self, idc: IdcKind) -> Self {
        self.idc = idc;
        match idc {
            IdcKind::CpuForwarding | IdcKind::AbcDimm => {
                self.polling = PollingStrategy::Base;
                self.sync = SyncScheme::Central;
            }
            IdcKind::DedicatedBus => {
                self.sync = SyncScheme::Central;
            }
            IdcKind::DimmLink => {
                self.polling = PollingStrategy::Proxy;
                self.sync = SyncScheme::Hierarchical;
            }
            IdcKind::DimmLinkCxl => {
                // No host involvement at all: polling is irrelevant (kept at
                // Base so no proxy channels are registered).
                self.polling = PollingStrategy::Base;
                self.sync = SyncScheme::Hierarchical;
            }
        }
        self
    }

    /// DIMMs per channel.
    pub fn dimms_per_channel(&self) -> usize {
        self.dimms / self.channels
    }

    /// The channel a DIMM sits on (DIMMs are filled channel-major).
    pub fn channel_of(&self, dimm: usize) -> usize {
        dimm / self.dimms_per_channel()
    }

    /// The DL group a DIMM belongs to (contiguous split across groups).
    pub fn group_of(&self, dimm: usize) -> usize {
        let per_group = self.dimms.div_ceil(self.groups);
        (dimm / per_group).min(self.groups - 1)
    }

    /// The DIMMs of one group, in chain order.
    pub fn group_members(&self, group: usize) -> Vec<usize> {
        (0..self.dimms)
            .filter(|&d| self.group_of(d) == group)
            .collect()
    }

    /// Total NMP threads (one per core).
    pub fn threads(&self) -> usize {
        self.dimms * self.cores_per_dimm
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.dimms == 0 || self.dimms > 32 {
            return Err(format!("dimms must be in 1..=32, got {}", self.dimms));
        }
        if !self.dimms.is_multiple_of(self.channels) {
            return Err("dimms must divide evenly over channels".into());
        }
        if self.groups == 0 || self.groups > self.dimms {
            return Err("groups must be in 1..=dimms".into());
        }
        if matches!(
            self.polling,
            PollingStrategy::Proxy | PollingStrategy::ProxyInterrupt
        ) && self.idc != IdcKind::DimmLink
        {
            return Err("proxy polling requires the DIMM-Link mechanism".into());
        }
        if !(0.0..=1.0).contains(&self.profile_fraction) {
            return Err("profile_fraction must be in [0,1]".into());
        }
        self.dram.validate()?;
        self.nmp_l1.validate()?;
        self.nmp_l2.validate()?;
        Ok(())
    }
}

/// Host-CPU baseline configuration (the fixed 16-core comparator of Fig. 10).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HostConfig {
    /// Out-of-order cores.
    pub cores: usize,
    /// Core clock.
    pub freq: Freq,
    /// Outstanding-miss window (OoO cores hide much more latency).
    pub mlp: usize,
    /// Private L1.
    pub l1: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// Memory channels.
    pub channels: usize,
    /// Channel bandwidth in bytes/s.
    pub channel_bandwidth: u64,
    /// One-way channel latency.
    pub channel_latency: Ps,
    /// DRAM configuration per channel.
    pub dram: DramConfig,
}

impl HostConfig {
    /// The paper's baseline: 16 OoO cores at 3 GHz with 8 DDR4-2400
    /// channels.
    ///
    /// Two deliberate calibrations for the scaled-down inputs (see
    /// DESIGN.md): the LLC is shrunk to preserve the paper's working-set to
    /// cache ratio (LiveJournal-class inputs exceed a server LLC by more
    /// than an order of magnitude), and the per-access channel latency uses
    /// a loaded-system value rather than an unloaded pin-to-pin figure.
    pub fn xeon_16core() -> Self {
        HostConfig {
            cores: 16,
            freq: Freq::from_ghz(3.0),
            mlp: 10,
            l1: CacheConfig::l1_32k(),
            llc: CacheConfig {
                capacity_bytes: 512 * 1024,
                ways: 16,
                line_bytes: 64,
                hit_latency_cycles: 35,
            },
            channels: 8,
            channel_bandwidth: 19_200_000_000,
            channel_latency: Ps::from_ns(30),
            dram: DramConfig {
                bus_per_rank: false,
                ..DramConfig::ddr4_2400_lrdimm()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for (_, cfg) in SystemConfig::p2p_sweep() {
            cfg.validate().unwrap();
            for idc in [
                IdcKind::CpuForwarding,
                IdcKind::DedicatedBus,
                IdcKind::AbcDimm,
                IdcKind::DimmLink,
            ] {
                cfg.clone().with_idc(idc).validate().unwrap();
            }
        }
    }

    #[test]
    fn group_and_channel_mapping() {
        let cfg = SystemConfig::nmp(16, 8);
        assert_eq!(cfg.dimms_per_channel(), 2);
        assert_eq!(cfg.channel_of(0), 0);
        assert_eq!(cfg.channel_of(15), 7);
        assert_eq!(cfg.group_of(0), 0);
        assert_eq!(cfg.group_of(7), 0);
        assert_eq!(cfg.group_of(8), 1);
        assert_eq!(cfg.group_members(0), (0..8).collect::<Vec<_>>());
        assert_eq!(cfg.group_members(1), (8..16).collect::<Vec<_>>());
    }

    #[test]
    fn single_group_for_small_systems() {
        let cfg = SystemConfig::nmp(4, 2);
        assert_eq!(cfg.groups, 1);
        assert_eq!(cfg.group_of(3), 0);
    }

    #[test]
    fn with_idc_swaps_polling_and_sync() {
        let dl = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
        assert_eq!(dl.polling, PollingStrategy::Proxy);
        assert_eq!(dl.sync, SyncScheme::Hierarchical);
        let mcn = SystemConfig::nmp(16, 8).with_idc(IdcKind::CpuForwarding);
        assert_eq!(mcn.polling, PollingStrategy::Base);
        assert_eq!(mcn.sync, SyncScheme::Central);
    }

    #[test]
    fn validate_rejects_proxy_polling_without_dimm_link() {
        let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::CpuForwarding);
        cfg.polling = PollingStrategy::Proxy;
        assert!(cfg.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "multiple of channels")]
    fn uneven_dimm_channel_split_panics() {
        let _ = SystemConfig::nmp(10, 4);
    }

    #[test]
    fn host_baseline_is_fixed() {
        let h = HostConfig::xeon_16core();
        assert_eq!(h.cores, 16);
        assert_eq!(h.channels, 8);
        assert!(!h.dram.bus_per_rank);
    }
}
