//! Energy model (paper Section V-C / Fig. 13).
//!
//! Constants follow the paper: GRS links at 1.17 pJ/b, DDR activate at
//! 2.1 nJ, DDR read/write at 14 pJ/b, off-chip memory-bus IO at 22 pJ/b
//! (also used for AIM's dedicated bus, per the paper's assumption), 1.8 W
//! per four-core NMP processor, and GEM5/McPAT-profiled host polling and
//! forwarding costs (folded into per-operation constants here).

use crate::config::IdcKind;
use dl_engine::stats::StatSet;
use dl_engine::Ps;
use serde::{Deserialize, Serialize};

/// Energy-model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// DIMM-Link SerDes energy (GRS), pJ per bit.
    pub link_pj_per_bit: f64,
    /// One DRAM row activation, nJ.
    pub act_nj: f64,
    /// DRAM read/write data movement, pJ per bit.
    pub dram_pj_per_bit: f64,
    /// Off-chip memory-bus IO, pJ per bit (also the AIM bus).
    pub bus_pj_per_bit: f64,
    /// Power of one DIMM's four-core NMP processor, watts.
    pub nmp_watts_per_dimm: f64,
    /// Host CPU energy per forwarded packet (cache hierarchy round trip),
    /// nJ.
    pub fwd_nj_per_packet: f64,
    /// Host CPU energy per polling operation, nJ.
    pub poll_nj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            link_pj_per_bit: 1.17,
            act_nj: 2.1,
            dram_pj_per_bit: 14.0,
            bus_pj_per_bit: 22.0,
            nmp_watts_per_dimm: 1.8,
            fwd_nj_per_packet: 60.0,
            poll_nj: 6.0,
        }
    }
}

/// Energy consumed by one run, in joules, split by component.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// DRAM activations + data movement.
    pub dram_j: f64,
    /// Memory-channel IO (host forwarding and polling traffic).
    pub bus_j: f64,
    /// DIMM-Link SerDes links or the AIM dedicated bus.
    pub idc_j: f64,
    /// NMP processor energy (power × time).
    pub nmp_cores_j: f64,
    /// Host CPU forwarding + polling.
    pub host_j: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.dram_j + self.bus_j + self.idc_j + self.nmp_cores_j + self.host_j
    }
}

/// Computes the energy of a run from its statistics.
///
/// `stats` must contain the counters exported by
/// [`crate::system::NmpSystem`].
pub fn energy_of(
    stats: &StatSet,
    elapsed: Ps,
    dimms: usize,
    idc: IdcKind,
    p: &EnergyParams,
) -> EnergyBreakdown {
    let g = |k: &str| stats.get(k).unwrap_or(0.0);
    let dram_bytes = (g("dram.reads") + g("dram.writes")) * 64.0;
    let dram_j =
        g("dram.activates") * p.act_nj * 1e-9 + dram_bytes * 8.0 * p.dram_pj_per_bit * 1e-12;
    let bus_j = g("host.channel_bytes") * 8.0 * p.bus_pj_per_bit * 1e-12;
    let idc_pj = match idc {
        IdcKind::DimmLink => p.link_pj_per_bit,
        _ => p.bus_pj_per_bit,
    };
    let idc_j = g("idc.private_bytes") * 8.0 * idc_pj * 1e-12;
    let nmp_cores_j = p.nmp_watts_per_dimm * dimms as f64 * elapsed.as_secs_f64();
    let host_j =
        g("host.fwd_packets") * p.fwd_nj_per_packet * 1e-9 + g("host.polls") * p.poll_nj * 1e-9;
    EnergyBreakdown {
        dram_j,
        bus_j,
        idc_j,
        nmp_cores_j,
        host_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let p = EnergyParams::default();
        assert_eq!(p.link_pj_per_bit, 1.17);
        assert_eq!(p.act_nj, 2.1);
        assert_eq!(p.dram_pj_per_bit, 14.0);
        assert_eq!(p.bus_pj_per_bit, 22.0);
        assert_eq!(p.nmp_watts_per_dimm, 1.8);
    }

    #[test]
    fn breakdown_sums() {
        let b = EnergyBreakdown {
            dram_j: 1.0,
            bus_j: 2.0,
            idc_j: 3.0,
            nmp_cores_j: 4.0,
            host_j: 5.0,
        };
        assert_eq!(b.total(), 15.0);
    }

    #[test]
    fn link_bits_cost_less_than_bus_bits() {
        let mut s = StatSet::new();
        s.set("idc.private_bytes", 1e9);
        let p = EnergyParams::default();
        let dl = energy_of(&s, Ps::ZERO, 0, IdcKind::DimmLink, &p);
        let aim = energy_of(&s, Ps::ZERO, 0, IdcKind::DedicatedBus, &p);
        assert!(dl.idc_j < aim.idc_j / 10.0);
    }

    #[test]
    fn static_power_scales_with_time_and_dimms() {
        let s = StatSet::new();
        let p = EnergyParams::default();
        let e = energy_of(&s, Ps::from_ms(100), 16, IdcKind::DimmLink, &p);
        // 1.8 W x 16 DIMMs x 0.1 s = 2.88 J.
        assert!((e.nmp_cores_j - 2.88).abs() < 1e-9);
    }
}
