//! Regression tests for run-to-run determinism of the full system model.
//!
//! Within one process, every `HashMap` instance gets its own random
//! `RandomState`, so repeating the same simulation ten times genuinely
//! exercises ten different hash-iteration orders. Before `dl-analyze`
//! forced the simulation crates onto `BTreeMap`, `NmpSystem` counted DIMM
//! groups and drove barrier releases off hash-map iteration — an order leak
//! this test is designed to catch if it ever regresses.

use dimm_link::config::{IdcKind, PlacementPolicy, SystemConfig};
use dimm_link::runner::{
    simulate, simulate_optimized, simulate_optimized_with, simulate_with, RunResult,
};
use dl_workloads::{WorkloadKind, WorkloadParams};

/// Serializes everything observable about a run into one comparable blob.
/// `StatSet` is `BTreeMap`-backed, so its `Debug` order is stable by
/// construction; elapsed/profiling/energy are scalars.
fn fingerprint(r: &RunResult) -> String {
    format!(
        "elapsed={} profiling={} stats={:?} energy={:?}",
        r.elapsed, r.profiling, r.stats, r.energy
    )
}

fn workload_params(dimms: usize) -> WorkloadParams {
    WorkloadParams {
        scale: 8,
        ..WorkloadParams::small(dimms)
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    // 8 DIMMs over 4 channels: two DL groups, so the hierarchical barrier
    // (the converted release maps in system.rs) is on the hot path.
    let wl = WorkloadKind::Bfs.build(&workload_params(8));
    let cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
    let golden = fingerprint(&simulate(&wl, &cfg));
    for i in 1..10 {
        let fp = fingerprint(&simulate(&wl, &cfg));
        assert_eq!(golden, fp, "run {i} diverged from run 0");
    }
}

#[test]
fn repeated_runs_are_byte_identical_across_idc_mechanisms() {
    let wl = WorkloadKind::Pagerank.build(&workload_params(8));
    for idc in [
        IdcKind::CpuForwarding,
        IdcKind::DedicatedBus,
        IdcKind::AbcDimm,
        IdcKind::DimmLink,
    ] {
        let cfg = SystemConfig::nmp(8, 4).with_idc(idc);
        let golden = fingerprint(&simulate(&wl, &cfg));
        for i in 1..10 {
            assert_eq!(
                golden,
                fingerprint(&simulate(&wl, &cfg)),
                "{idc:?} run {i} diverged"
            );
        }
    }
}

#[test]
fn parallel_runs_are_byte_identical_to_sequential() {
    // The partitioned engine must be exact, not approximately equal: the
    // fingerprint covers every statistic, so a single reordered f64
    // accumulation or a late cross-partition delivery shows up here.
    let wl = WorkloadKind::Pagerank.build(&workload_params(8));
    for idc in [
        IdcKind::CpuForwarding,
        IdcKind::DedicatedBus,
        IdcKind::AbcDimm,
        IdcKind::DimmLink,
    ] {
        let cfg = SystemConfig::nmp(8, 4).with_idc(idc);
        let golden = fingerprint(&simulate(&wl, &cfg));
        for sim_threads in [2, 4] {
            assert_eq!(
                golden,
                fingerprint(&simulate_with(&wl, &cfg, sim_threads)),
                "{idc:?} diverged at --sim-threads {sim_threads}"
            );
        }
    }
}

#[test]
fn parallel_optimized_pipeline_matches_sequential() {
    // Profiling run, placement solve, and measured run all execute under
    // the parallel engine; the end-to-end fingerprint must still match.
    let wl = WorkloadKind::Sssp.build(&workload_params(8));
    let mut cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
    cfg.placement = PlacementPolicy::Random;
    let golden = fingerprint(&simulate_optimized(&wl, &cfg));
    for sim_threads in [2, 4] {
        assert_eq!(
            golden,
            fingerprint(&simulate_optimized_with(&wl, &cfg, sim_threads)),
            "optimized pipeline diverged at --sim-threads {sim_threads}"
        );
    }
}

#[test]
fn optimized_pipeline_is_deterministic_with_random_placement() {
    // Random placement + profiling + min-cost max-flow + measured run: the
    // longest deterministic chain, seeded via `DetRng::stream("placement")`.
    let wl = WorkloadKind::Sssp.build(&workload_params(8));
    let mut cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
    cfg.placement = PlacementPolicy::Random;
    let golden = fingerprint(&simulate_optimized(&wl, &cfg));
    for i in 1..10 {
        assert_eq!(
            golden,
            fingerprint(&simulate_optimized(&wl, &cfg)),
            "optimized run {i} diverged"
        );
    }
}
