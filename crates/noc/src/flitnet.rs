//! Flit-level network model: cycle-stepped wormhole routers with virtual
//! channels and credit-based flow control.
//!
//! This is the high-fidelity counterpart of [`crate::PacketNet`], playing
//! the role BookSim plays for MultiPIM: it resolves contention flit by flit
//! (per-VC input buffers with credits, round-robin switch arbitration) and
//! is used to validate the packet-level model's latency/bandwidth behaviour
//! (see the `ablation_fidelity` bench).
//!
//! Deadlock freedom: single-VC wormhole routing is safe only for acyclic
//! channel dependency graphs (the chain and mesh topologies). For the
//! **ring** and **torus** alternatives of Section VI, configure two virtual
//! channels: packets start on VC 0 and switch to VC 1 after crossing a
//! dateline (any wrap-around link, see [`Topology::is_wrap_link`]), which
//! breaks the channel dependency cycle in the classical way. A watchdog in
//! [`FlitNet::run_until_idle`] turns any remaining deadlock into a panic
//! rather than a hang.

use crate::topology::{LinkId, Topology, TopologyKind};
use dl_engine::Ps;
use dl_protocol::FLIT_BYTES;
use std::collections::VecDeque;

/// Configuration for the flit-level model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitNetConfig {
    /// Input buffer depth per link per virtual channel, in flits (also the
    /// credit count).
    pub buffer_depth: usize,
    /// Bytes carried per flit (DIMM-Link: 16).
    pub flit_bytes: u32,
    /// Duration of one network cycle (one flit per link per cycle); for a
    /// 25 GB/s link moving 16-byte flits this is 640 ps.
    pub cycle_time: Ps,
    /// Extra pipeline cycles per link traversal (GRS wire + router
    /// pipeline; 8 ns at 640 ps/cycle = 13 cycles).
    pub pipeline_per_hop: u64,
    /// Virtual channels per link (1 for the chain; 2 for rings, with
    /// dateline VC switching).
    pub vcs: usize,
}

impl FlitNetConfig {
    /// Matches [`crate::LinkParams::grs_25gbps`]: 16-byte flits at 25 GB/s.
    pub fn grs_25gbps() -> Self {
        FlitNetConfig {
            // Deep enough to cover the credit round trip over the 13-cycle
            // wire pipeline, so a link can sustain one flit per cycle.
            buffer_depth: 24,
            flit_bytes: FLIT_BYTES as u32,
            cycle_time: Ps::from_ps(640),
            pipeline_per_hop: 13,
            vcs: 1,
        }
    }

    /// The ring variant: two virtual channels with dateline switching.
    pub fn grs_25gbps_ring() -> Self {
        FlitNetConfig {
            vcs: 2,
            ..Self::grs_25gbps()
        }
    }

    /// The deadlock-safe configuration for `kind`: two virtual channels
    /// with dateline switching where wrap links close dependency cycles
    /// (ring, torus), one VC otherwise (chain, mesh).
    pub fn for_topology(kind: TopologyKind) -> Self {
        match kind {
            TopologyKind::Chain | TopologyKind::Mesh => Self::grs_25gbps(),
            TopologyKind::Ring | TopologyKind::Torus => Self::grs_25gbps_ring(),
        }
    }
}

/// Handle to an injected packet, used to chain dependent injections
/// (see [`FlitNet::inject_after`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef(usize);

#[derive(Debug, Clone, Copy)]
struct FlitTag {
    pkt: usize,
    is_tail: bool,
}

#[derive(Debug)]
struct PacketState {
    id: u64,
    src: usize,
    dst: usize,
    /// `next_link[node]` = outgoing link towards dst, `None` at dst.
    next_link: Vec<Option<LinkId>>,
    /// Virtual channel assigned on each link of the route.
    vc_on_link: Vec<u8>,
    flits_total: u32,
    flits_ejected: u32,
    injected_at: u64,
    /// Chained packets this one feeds (cut-through forwarding): each flit
    /// ejected here releases one flit of every child.
    feeds: Vec<usize>,
    /// Flits not yet placed in the injection queue (chained packets only).
    unreleased: u32,
}

impl PacketState {
    fn vc_of(&self, link: LinkId) -> usize {
        self.vc_on_link[link.0] as usize
    }
}

#[derive(Debug)]
struct VcState {
    /// Flits buffered at the downstream router's input, this VC.
    buf: VecDeque<FlitTag>,
    /// Credits available to the upstream sender, this VC.
    credits: usize,
}

#[derive(Debug)]
struct LinkState {
    vcs: Vec<VcState>,
    /// Flits in flight on the wire: (flit, arrival cycle, vc).
    staged: Vec<(FlitTag, u64, usize)>,
}

#[derive(Debug, Clone, Copy)]
struct InputRef {
    /// Incoming link, or `None` for the local injection port.
    link: Option<LinkId>,
    vc: usize,
}

#[derive(Debug)]
struct OutPort {
    /// Wormhole ownership per output VC: the input currently bound to it.
    locked: Vec<Option<InputRef>>,
    /// Round-robin pointer over candidate inputs (per output VC).
    rr: Vec<usize>,
    /// Round-robin pointer over VCs for the shared physical link.
    vc_rr: usize,
}

/// A delivered packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Caller-visible packet id.
    pub id: u64,
    /// Destination node the tail flit was ejected at.
    pub dst: usize,
    /// Cycle the tail flit was ejected.
    pub cycle: u64,
    /// Latency in cycles from injection to tail ejection.
    pub latency_cycles: u64,
}

/// Cycle-stepped flit-level network.
///
/// # Examples
///
/// ```
/// use dl_noc::{FlitNet, FlitNetConfig, Topology, TopologyKind};
///
/// let topo = Topology::new(TopologyKind::Chain, 4);
/// let mut net = FlitNet::new(&topo, FlitNetConfig::grs_25gbps());
/// net.inject(7, 0, 3, 17); // a max-size packet: 17 flits across 3 hops
/// let done = net.run_until_idle(10_000);
/// assert_eq!(done.len(), 1);
/// assert_eq!(done[0].id, 7);
/// ```
#[derive(Debug)]
pub struct FlitNet {
    topo: Topology,
    cfg: FlitNetConfig,
    links: Vec<LinkState>,
    /// Per node: incoming link ids.
    in_links: Vec<Vec<LinkId>>,
    /// Per *output link*: injection queue of locally-sourced flits. Keyed
    /// by the packet's first route link so that same-source packets headed
    /// out different links inject in parallel, matching [`crate::PacketNet`]
    /// (a single per-node queue would serialize them).
    inject_q: Vec<VecDeque<FlitTag>>,
    out_ports: Vec<OutPort>,
    packets: Vec<PacketState>,
    cycle: u64,
    delivered: Vec<Delivery>,
    in_flight: usize,
}

impl FlitNet {
    /// Builds the network.
    ///
    /// # Panics
    /// Panics if `buffer_depth` or `vcs` is zero.
    pub fn new(topo: &Topology, cfg: FlitNetConfig) -> Self {
        assert!(cfg.buffer_depth > 0, "buffer_depth must be >= 1");
        assert!(cfg.vcs > 0, "vcs must be >= 1");
        let n = topo.len();
        let mut in_links = vec![Vec::new(); n];
        for (id, _, to) in topo.iter_links() {
            in_links[to].push(id);
        }
        let links = (0..topo.link_count())
            .map(|_| LinkState {
                vcs: (0..cfg.vcs)
                    .map(|_| VcState {
                        buf: VecDeque::new(),
                        credits: cfg.buffer_depth,
                    })
                    .collect(),
                staged: Vec::new(),
            })
            .collect();
        let out_ports = (0..topo.link_count())
            .map(|_| OutPort {
                locked: vec![None; cfg.vcs],
                rr: vec![0; cfg.vcs],
                vc_rr: 0,
            })
            .collect();
        FlitNet {
            topo: topo.clone(),
            cfg,
            links,
            in_links,
            inject_q: vec![VecDeque::new(); topo.link_count()],
            out_ports,
            packets: Vec::new(),
            cycle: 0,
            delivered: Vec::new(),
            in_flight: 0,
        }
    }

    /// Queues a packet of `flits` flits for injection at `src`. Returns a
    /// handle for chaining (see [`inject_after`](Self::inject_after)).
    ///
    /// With multiple VCs, the packet is assigned VC 0 until its route
    /// crosses a dateline (any wrap-around link per
    /// [`Topology::is_wrap_link`]), and VC 1 afterwards.
    ///
    /// # Panics
    /// Panics if `src == dst`, a node is out of range, or `flits == 0`.
    pub fn inject(&mut self, id: u64, src: usize, dst: usize, flits: u32) -> PacketRef {
        let pkt = self.new_packet(id, src, dst, flits);
        self.release_chained(pkt, flits);
        PacketRef(pkt)
    }

    /// Queues a packet whose flits are released by `parent`'s ejections at
    /// `src` — cut-through forwarding: each parent flit ejected frees one
    /// flit of this packet, so a broadcast relay starts forwarding as soon
    /// as the head arrives rather than store-and-forwarding whole packets.
    ///
    /// # Panics
    /// Panics like [`inject`](Self::inject), or if `src` is not the
    /// parent's destination, or the parent already finished ejecting.
    pub fn inject_after(
        &mut self,
        id: u64,
        src: usize,
        dst: usize,
        flits: u32,
        parent: PacketRef,
    ) -> PacketRef {
        let pkt = self.new_packet(id, src, dst, flits);
        let p = &self.packets[parent.0];
        assert_eq!(p.dst, src, "chained packet must start where parent ends");
        // Credit the child with whatever the parent already ejected.
        let already = p.flits_ejected;
        assert!(
            already < p.flits_total,
            "parent fully ejected; use inject instead"
        );
        self.packets[parent.0].feeds.push(pkt);
        if already > 0 {
            self.release_chained(pkt, already);
        }
        PacketRef(pkt)
    }

    /// Broadcasts a packet from `src` over the BFS tree (the same tree
    /// [`crate::PacketNet::broadcast`] uses), forwarding cut-through at
    /// every relay. Every copy carries `id`; deliveries are distinguished
    /// by [`Delivery::dst`].
    ///
    /// # Panics
    /// Panics if `src` is out of range or `flits == 0`.
    pub fn inject_broadcast(&mut self, id: u64, src: usize, flits: u32) {
        let mut refs: Vec<Option<PacketRef>> = vec![None; self.topo.len()];
        for (parent, child, _) in self.topo.broadcast_tree(src) {
            let r = if parent == src {
                self.inject(id, src, child, flits)
            } else {
                let pref = refs[parent].expect("BFS order visits parent first");
                self.inject_after(id, parent, child, flits, pref)
            };
            refs[child] = Some(r);
        }
    }

    fn new_packet(&mut self, id: u64, src: usize, dst: usize, flits: u32) -> usize {
        assert_ne!(src, dst, "self-injection is not a network transfer");
        assert!(flits > 0, "empty packet");
        let mut next_link = vec![None; self.topo.len()];
        let mut vc_on_link = vec![0u8; self.topo.link_count()];
        let mut cur = src;
        let mut vc = 0u8;
        for l in self.topo.route(src, dst) {
            next_link[cur] = Some(l);
            vc_on_link[l.0] = vc;
            // Dateline rule: crossing any wrap link bumps the VC, breaking
            // the ring/torus channel dependency cycle.
            if self.cfg.vcs > 1 && self.topo.is_wrap_link(l) {
                vc = 1;
            }
            cur = self.topo.endpoints(l).1;
        }
        let pkt = self.packets.len();
        self.packets.push(PacketState {
            id,
            src,
            dst,
            next_link,
            vc_on_link,
            flits_total: flits,
            flits_ejected: 0,
            injected_at: self.cycle,
            feeds: Vec::new(),
            unreleased: flits,
        });
        self.in_flight += 1;
        pkt
    }

    /// Moves up to `count` of `pkt`'s unreleased flits into the injection
    /// queue of its first route link.
    fn release_chained(&mut self, pkt: usize, count: u32) {
        let p = &mut self.packets[pkt];
        let n = count.min(p.unreleased);
        if n == 0 {
            return;
        }
        if p.unreleased == p.flits_total {
            // First release: latency is measured from here for chained
            // packets (their data only exists at the relay from now on).
            p.injected_at = self.cycle;
        }
        let first = p.flits_total - p.unreleased;
        p.unreleased -= n;
        let total = p.flits_total;
        let link = p.next_link[p.src].expect("src != dst so a first link exists");
        for i in first..first + n {
            self.inject_q[link.0].push_back(FlitTag {
                pkt,
                is_tail: i + 1 == total,
            });
        }
    }

    /// Advances one cycle.
    pub fn step(&mut self) {
        self.cycle += 1;

        // Phase 1: ejection. Each (link, vc) can eject one flit per cycle.
        for node in 0..self.topo.len() {
            for idx in 0..self.in_links[node].len() {
                let lid = self.in_links[node][idx];
                for vc in 0..self.cfg.vcs {
                    let eject = match self.links[lid.0].vcs[vc].buf.front() {
                        Some(tag) => self.packets[tag.pkt].dst == node,
                        None => false,
                    };
                    if eject {
                        let tag = self.links[lid.0].vcs[vc]
                            .buf
                            .pop_front()
                            .expect("checked front");
                        self.links[lid.0].vcs[vc].credits += 1;
                        self.finish_flit(tag);
                    }
                }
            }
        }

        // Phase 2: switch traversal. Each output link moves at most one
        // flit per cycle, shared across its VCs round-robin.
        for out in 0..self.topo.link_count() {
            let (from, _) = self.topo.endpoints(LinkId(out));
            let inputs = self.input_refs(from);

            // Re-arbitrate unlocked output VCs.
            for ovc in 0..self.cfg.vcs {
                if self.out_ports[out].locked[ovc].is_none() {
                    let start = self.out_ports[out].rr[ovc];
                    for k in 0..inputs.len() {
                        let i = (start + k) % inputs.len();
                        if self.head_requests(from, inputs[i], LinkId(out), ovc) {
                            self.out_ports[out].locked[ovc] = Some(inputs[i]);
                            self.out_ports[out].rr[ovc] = (i + 1) % inputs.len();
                            break;
                        }
                    }
                }
            }

            // Move one flit over the physical link: round-robin over VCs.
            let start_vc = self.out_ports[out].vc_rr;
            for k in 0..self.cfg.vcs {
                let ovc = (start_vc + k) % self.cfg.vcs;
                let Some(input) = self.out_ports[out].locked[ovc] else {
                    continue;
                };
                if self.links[out].vcs[ovc].credits == 0
                    || !self.head_requests(from, input, LinkId(out), ovc)
                {
                    continue;
                }
                let tag = self.pop_input(from, input, LinkId(out));
                self.links[out].vcs[ovc].credits -= 1;
                let arrive = self.cycle + self.cfg.pipeline_per_hop;
                self.links[out].staged.push((tag, arrive, ovc));
                if tag.is_tail {
                    self.out_ports[out].locked[ovc] = None;
                }
                if let Some(up) = input.link {
                    self.links[up.0].vcs[input.vc].credits += 1;
                }
                self.out_ports[out].vc_rr = (ovc + 1) % self.cfg.vcs;
                break; // one flit per physical link per cycle
            }
        }

        // Phase 3: flits whose wire/pipeline delay has elapsed land in the
        // downstream buffer of their VC.
        let cycle = self.cycle;
        for l in &mut self.links {
            let mut i = 0;
            while i < l.staged.len() {
                if l.staged[i].1 <= cycle {
                    let (tag, _, vc) = l.staged.remove(i);
                    l.vcs[vc].buf.push_back(tag);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// All input ports of `node`: (link, vc) pairs plus the injection port.
    fn input_refs(&self, node: usize) -> Vec<InputRef> {
        let mut v = Vec::with_capacity(self.in_links[node].len() * self.cfg.vcs + 1);
        for &l in &self.in_links[node] {
            for vc in 0..self.cfg.vcs {
                v.push(InputRef { link: Some(l), vc });
            }
        }
        v.push(InputRef { link: None, vc: 0 });
        v
    }

    /// Whether `input`'s head flit wants `(out, out_vc)`. The injection
    /// input of output `out` reads that link's own injection queue.
    fn head_requests(&self, node: usize, input: InputRef, out: LinkId, out_vc: usize) -> bool {
        let head = match input.link {
            Some(lid) => self.links[lid.0].vcs[input.vc].buf.front().copied(),
            None => self.inject_q[out.0].front().copied(),
        };
        match head {
            Some(tag) => {
                let p = &self.packets[tag.pkt];
                p.next_link[node] == Some(out) && p.vc_of(out) == out_vc
            }
            None => false,
        }
    }

    fn pop_input(&mut self, _node: usize, input: InputRef, out: LinkId) -> FlitTag {
        match input.link {
            Some(lid) => self.links[lid.0].vcs[input.vc]
                .buf
                .pop_front()
                .expect("arbitrated head"),
            None => self.inject_q[out.0].pop_front().expect("arbitrated head"),
        }
    }

    fn finish_flit(&mut self, tag: FlitTag) {
        // Cut-through forwarding: every ejected flit releases one flit of
        // each chained child; the tail releases any remainder.
        let feeds = std::mem::take(&mut self.packets[tag.pkt].feeds);
        for &child in &feeds {
            let n = if tag.is_tail { u32::MAX } else { 1 };
            self.release_chained(child, n);
        }
        if !tag.is_tail {
            self.packets[tag.pkt].feeds = feeds;
        }
        let p = &mut self.packets[tag.pkt];
        p.flits_ejected += 1;
        if tag.is_tail {
            debug_assert_eq!(p.flits_ejected, p.flits_total);
            self.delivered.push(Delivery {
                id: p.id,
                dst: p.dst,
                cycle: self.cycle,
                latency_cycles: self.cycle - p.injected_at,
            });
            self.in_flight -= 1;
        }
    }

    /// Steps until every injected packet is delivered, up to `max_cycles`.
    ///
    /// Returns deliveries in completion order.
    ///
    /// # Panics
    /// Panics if traffic remains undelivered after `max_cycles` (deadlock or
    /// an insufficient budget).
    pub fn run_until_idle(&mut self, max_cycles: u64) -> Vec<Delivery> {
        let deadline = self.cycle + max_cycles;
        while self.in_flight > 0 {
            assert!(
                self.cycle < deadline,
                "flit network made no full delivery within {max_cycles} cycles \
                 ({} packets stuck) — deadlock or budget too small",
                self.in_flight
            );
            self.step();
        }
        std::mem::take(&mut self.delivered)
    }

    /// The current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Converts a cycle count into simulated time.
    pub fn time_of(&self, cycle: u64) -> Ps {
        Ps::from_ps(self.cfg.cycle_time.as_ps() * cycle)
    }

    /// Packets injected but not yet delivered.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    #[cfg(test)]
    fn vc_plan_of(&self, pkt: usize) -> &[u8] {
        &self.packets[pkt].vc_on_link
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> FlitNet {
        FlitNet::new(
            &Topology::new(TopologyKind::Chain, n),
            FlitNetConfig::grs_25gbps(),
        )
    }

    #[test]
    fn single_flit_latency_is_hops_plus_pipeline() {
        let mut net = chain(4);
        let per_hop = FlitNetConfig::grs_25gbps().pipeline_per_hop;
        net.inject(1, 0, 3, 1);
        let done = net.run_until_idle(1000);
        // 3 link traversals, each with the wire/router pipeline, plus a few
        // cycles of switch/ejection alignment.
        assert_eq!(done[0].id, 1);
        assert!(
            done[0].latency_cycles >= 3 * per_hop,
            "lat {}",
            done[0].latency_cycles
        );
        assert!(
            done[0].latency_cycles <= 3 * per_hop + 10,
            "lat {}",
            done[0].latency_cycles
        );
    }

    #[test]
    fn pipeline_throughput_one_flit_per_cycle() {
        // A long packet: after the head arrives, one flit drains per cycle.
        let mut net = chain(2);
        let per_hop = FlitNetConfig::grs_25gbps().pipeline_per_hop;
        net.inject(1, 0, 1, 32);
        let done = net.run_until_idle(1000);
        assert!(done[0].latency_cycles >= 32 + per_hop);
        assert!(
            done[0].latency_cycles <= 32 + per_hop + 10,
            "lat {}",
            done[0].latency_cycles
        );
    }

    #[test]
    fn wormhole_packets_do_not_interleave() {
        let mut net = chain(3);
        // Two packets from node 0 and node 1 both crossing link 1->2.
        net.inject(1, 0, 2, 8);
        net.inject(2, 1, 2, 8);
        let done = net.run_until_idle(10_000);
        assert_eq!(done.len(), 2);
        // Both complete; the shared link serializes them, so total time is
        // at least 16 cycles of link 1->2 occupancy.
        let last = done.iter().map(|d| d.cycle).max().unwrap();
        assert!(last >= 16);
    }

    #[test]
    fn disjoint_pairs_run_in_parallel() {
        let mut net = chain(4);
        net.inject(1, 0, 1, 16);
        net.inject(2, 2, 3, 16);
        let done = net.run_until_idle(10_000);
        let cycles: Vec<u64> = done.iter().map(|d| d.cycle).collect();
        // Both finish at (nearly) the same time: no shared resources.
        assert!(cycles[0].abs_diff(cycles[1]) <= 1);
    }

    #[test]
    fn opposite_directions_are_independent() {
        let mut net = chain(2);
        net.inject(1, 0, 1, 16);
        net.inject(2, 1, 0, 16);
        let done = net.run_until_idle(10_000);
        let cycles: Vec<u64> = done.iter().map(|d| d.cycle).collect();
        assert!(cycles[0].abs_diff(cycles[1]) <= 1);
    }

    #[test]
    fn backpressure_limits_injection() {
        // Tiny buffers: a long packet cannot outrun credit returns, but
        // still completes.
        let cfg = FlitNetConfig {
            buffer_depth: 1,
            ..FlitNetConfig::grs_25gbps()
        };
        let mut net = FlitNet::new(&Topology::new(TopologyKind::Chain, 8), cfg);
        net.inject(1, 0, 7, 17);
        let done = net.run_until_idle(100_000);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn heavy_random_traffic_all_delivered() {
        let mut net = chain(8);
        let mut id = 0u64;
        for s in 0..8usize {
            for d in 0..8usize {
                if s != d {
                    net.inject(id, s, d, 4);
                    id += 1;
                }
            }
        }
        let done = net.run_until_idle(1_000_000);
        assert_eq!(done.len(), 56);
        let mut ids: Vec<u64> = done.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..56).collect::<Vec<u64>>());
    }

    #[test]
    fn ring_with_two_vcs_survives_all_to_all() {
        // A ring's wrap link creates a cyclic channel dependency; two VCs
        // with the dateline rule keep heavy all-to-all traffic live.
        let topo = Topology::new(TopologyKind::Ring, 8);
        let mut net = FlitNet::new(&topo, FlitNetConfig::grs_25gbps_ring());
        let mut id = 0u64;
        for _round in 0..4 {
            for s in 0..8usize {
                for d in 0..8usize {
                    if s != d {
                        net.inject(id, s, d, 8);
                        id += 1;
                    }
                }
            }
        }
        let done = net.run_until_idle(10_000_000);
        assert_eq!(done.len(), 224);
    }

    #[test]
    fn ring_wrap_route_uses_second_vc() {
        let topo = Topology::new(TopologyKind::Ring, 8);
        let mut net = FlitNet::new(&topo, FlitNetConfig::grs_25gbps_ring());
        // 6 -> 1: the shortest path crosses the wrap (6-7-0-1).
        net.inject(1, 6, 1, 4);
        let used_vc1 = net.vc_plan_of(0).contains(&1);
        assert!(used_vc1, "dateline switching never engaged");
        let done = net.run_until_idle(100_000);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn ring_beats_chain_on_wrap_pairs() {
        // End-to-end: node 0 -> node 7 is 1 hop on the ring, 7 on a chain.
        let mut ring = FlitNet::new(
            &Topology::new(TopologyKind::Ring, 8),
            FlitNetConfig::grs_25gbps_ring(),
        );
        ring.inject(1, 0, 7, 8);
        let ring_done = ring.run_until_idle(100_000);
        let mut line = chain(8);
        line.inject(1, 0, 7, 8);
        let chain_done = line.run_until_idle(100_000);
        assert!(ring_done[0].latency_cycles * 3 < chain_done[0].latency_cycles);
    }

    #[test]
    fn same_source_different_links_inject_in_parallel() {
        // Node 1 in a 3-chain sends left and right simultaneously; with
        // per-output-link injection queues neither waits for the other
        // (matching PacketNet's per-link bandwidth model).
        let mut net = chain(3);
        net.inject(1, 1, 0, 16);
        net.inject(2, 1, 2, 16);
        let done = net.run_until_idle(10_000);
        let cycles: Vec<u64> = done.iter().map(|d| d.cycle).collect();
        assert!(
            cycles[0].abs_diff(cycles[1]) <= 1,
            "left {} vs right {} should overlap",
            cycles[0],
            cycles[1]
        );
    }

    #[test]
    fn torus_with_two_vcs_survives_all_to_all() {
        // The torus wraps both dimensions; the generalized dateline rule
        // must keep heavy all-to-all traffic deadlock-free.
        let topo = Topology::new(TopologyKind::Torus, 16);
        let mut net = FlitNet::new(&topo, FlitNetConfig::for_topology(TopologyKind::Torus));
        let mut id = 0u64;
        for s in 0..16usize {
            for d in 0..16usize {
                if s != d {
                    net.inject(id, s, d, 8);
                    id += 1;
                }
            }
        }
        let done = net.run_until_idle(10_000_000);
        assert_eq!(done.len(), 240);
    }

    #[test]
    fn torus_wrap_route_uses_second_vc() {
        let topo = Topology::new(TopologyKind::Torus, 16); // 4 x 4
        let mut net = FlitNet::new(&topo, FlitNetConfig::for_topology(TopologyKind::Torus));
        // 3 -> 0 in row 0: shortest path is the row wrap 3->0.
        net.inject(1, 3, 12, 4); // column wrap: 3 -> 15? route depends; use a wrap pair
        let crossed: bool = net.vc_plan_of(0).contains(&1)
            || topo.route(3, 12).iter().any(|&l| topo.is_wrap_link(l));
        assert!(crossed, "route avoided every wrap link unexpectedly");
        let done = net.run_until_idle(100_000);
        assert_eq!(done.len(), 1);
    }

    #[test]
    fn broadcast_reaches_every_node_cut_through() {
        for kind in [
            TopologyKind::Chain,
            TopologyKind::Ring,
            TopologyKind::Mesh,
            TopologyKind::Torus,
        ] {
            let topo = Topology::new(kind, 9);
            let mut net = FlitNet::new(&topo, FlitNetConfig::for_topology(kind));
            net.inject_broadcast(7, 0, 8);
            let done = net.run_until_idle(1_000_000);
            assert_eq!(done.len(), 8, "{kind}: one delivery per non-source");
            let mut dsts: Vec<usize> = done.iter().map(|d| d.dst).collect();
            dsts.sort_unstable();
            assert_eq!(dsts, (1..9).collect::<Vec<usize>>(), "{kind}");
        }
    }

    #[test]
    fn chained_relay_is_cut_through_not_store_and_forward() {
        // Broadcast down a 4-chain: the tail reaches node 3 well before
        // 3 full store-and-forward serializations of a long packet.
        let flits = 16u32;
        let cfg = FlitNetConfig::grs_25gbps();
        let mut net = chain(4);
        net.inject_broadcast(1, 0, flits);
        let done = net.run_until_idle(1_000_000);
        let last = done.iter().find(|d| d.dst == 3).unwrap();
        let store_forward = 3 * (flits as u64 + cfg.pipeline_per_hop);
        assert!(
            last.cycle < store_forward,
            "cycle {} not cut-through (store-and-forward bound {})",
            last.cycle,
            store_forward
        );
    }

    #[test]
    fn time_of_uses_cycle_time() {
        let net = chain(2);
        assert_eq!(net.time_of(10), Ps::from_ps(6400));
    }

    #[test]
    #[should_panic(expected = "deadlock or budget too small")]
    fn watchdog_fires_on_budget_exhaustion() {
        let mut net = chain(8);
        net.inject(1, 0, 7, 17);
        let _ = net.run_until_idle(2); // far too small
    }

    #[test]
    #[should_panic(expected = "self-injection")]
    fn self_injection_rejected() {
        let mut net = chain(2);
        net.inject(1, 0, 0, 1);
    }
}
