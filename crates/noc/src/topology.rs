//! DL-group topologies and deterministic shortest-path routing.
//!
//! The paper's shipping design chains the DIMMs of one group with
//! bidirectional links between adjacent slots (it calls the result a
//! "half-ring"); Section VI explores ring, mesh, and torus alternatives.
//! All four are generated here, with per-destination BFS routing tables
//! (lowest-index tie-break, so routes are deterministic).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of one unidirectional link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub usize);

/// The connectivity patterns explored by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Adjacent DIMMs connected in a line (the practical baseline).
    Chain,
    /// Chain plus a wrap-around link (needs long-reach SerDes).
    Ring,
    /// 2-D mesh over a near-square grid.
    Mesh,
    /// 2-D torus (mesh + wrap-around in both dimensions).
    Torus,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TopologyKind::Chain => "chain",
            TopologyKind::Ring => "ring",
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
        };
        f.write_str(s)
    }
}

/// An instantiated topology over `n` nodes with routing tables.
#[derive(Debug, Clone)]
pub struct Topology {
    kind: TopologyKind,
    n: usize,
    links: Vec<(usize, usize)>,
    link_of: BTreeMap<(usize, usize), LinkId>,
    /// `next_hop[dst][node]` = neighbour to take from `node` towards `dst`.
    next_hop: Vec<Vec<usize>>,
    /// `dist[a][b]` = hops on a shortest path.
    dist: Vec<Vec<u32>>,
}

impl Topology {
    /// Builds a topology over `n` nodes.
    ///
    /// Mesh/torus grids use the largest divisor of `n` that is at most
    /// `sqrt(n)` as the row count (so 8 nodes form a 2×4 grid); a prime `n`
    /// degenerates to a 1×n grid, i.e. a chain (or ring for the torus).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(kind: TopologyKind, n: usize) -> Self {
        assert!(n > 0, "topology needs at least one node");
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let add_bidir = |edges: &mut Vec<(usize, usize)>, a: usize, b: usize| {
            if a != b && !edges.contains(&(a, b)) {
                edges.push((a, b));
                edges.push((b, a));
            }
        };
        match kind {
            TopologyKind::Chain => {
                for i in 0..n.saturating_sub(1) {
                    add_bidir(&mut edges, i, i + 1);
                }
            }
            TopologyKind::Ring => {
                for i in 0..n.saturating_sub(1) {
                    add_bidir(&mut edges, i, i + 1);
                }
                if n > 2 {
                    add_bidir(&mut edges, n - 1, 0);
                }
            }
            TopologyKind::Mesh | TopologyKind::Torus => {
                let (rows, cols) = grid_dims(n);
                let at = |r: usize, c: usize| r * cols + c;
                for r in 0..rows {
                    for c in 0..cols {
                        if c + 1 < cols {
                            add_bidir(&mut edges, at(r, c), at(r, c + 1));
                        }
                        if r + 1 < rows {
                            add_bidir(&mut edges, at(r, c), at(r + 1, c));
                        }
                    }
                }
                if matches!(kind, TopologyKind::Torus) {
                    for r in 0..rows {
                        if cols > 2 {
                            add_bidir(&mut edges, at(r, cols - 1), at(r, 0));
                        }
                    }
                    for c in 0..cols {
                        if rows > 2 {
                            add_bidir(&mut edges, at(rows - 1, c), at(0, c));
                        }
                    }
                }
            }
        }

        let mut adj = vec![Vec::new(); n];
        let mut link_of = BTreeMap::new();
        for (i, &(a, b)) in edges.iter().enumerate() {
            adj[a].push(b);
            link_of.insert((a, b), LinkId(i));
        }
        for nbrs in &mut adj {
            nbrs.sort_unstable();
        }

        // Per-destination BFS (from the destination over reversed edges;
        // all links are paired, so the graph is symmetric).
        let mut next_hop = vec![vec![usize::MAX; n]; n];
        let mut dist = vec![vec![u32::MAX; n]; n];
        for dst in 0..n {
            let mut queue = std::collections::VecDeque::new();
            dist[dst][dst] = 0;
            next_hop[dst][dst] = dst;
            queue.push_back(dst);
            while let Some(u) = queue.pop_front() {
                for &v in &adj[u] {
                    if dist[dst][v] == u32::MAX {
                        dist[dst][v] = dist[dst][u] + 1;
                        // From v, step to u to move towards dst.
                        next_hop[dst][v] = u;
                        queue.push_back(v);
                    }
                }
            }
        }
        // Re-index dist as dist[a][b].
        let mut dist_ab = vec![vec![u32::MAX; n]; n];
        for (dst, row) in dist.iter().enumerate() {
            for (node, &d) in row.iter().enumerate() {
                dist_ab[node][dst] = d;
            }
        }

        Topology {
            kind,
            n,
            links: edges,
            link_of,
            next_hop,
            dist: dist_ab,
        }
    }

    /// The connectivity pattern.
    pub fn kind(&self) -> TopologyKind {
        self.kind
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the topology has zero nodes (never true; see [`Topology::new`]).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of unidirectional links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Endpoints `(from, to)` of a link.
    ///
    /// # Panics
    /// Panics if `link` is out of range.
    pub fn endpoints(&self, link: LinkId) -> (usize, usize) {
        self.links[link.0]
    }

    /// Hops on a shortest path from `a` to `b`.
    ///
    /// # Panics
    /// Panics if either node is out of range or unreachable.
    pub fn distance(&self, a: usize, b: usize) -> u32 {
        let d = self.dist[a][b];
        assert_ne!(d, u32::MAX, "nodes {a} and {b} are disconnected");
        d
    }

    /// The maximum shortest-path distance between any node pair.
    pub fn diameter(&self) -> u32 {
        (0..self.n)
            .flat_map(|a| (0..self.n).map(move |b| (a, b)))
            .map(|(a, b)| self.dist[a][b])
            .max()
            .unwrap_or(0)
    }

    /// The links of the deterministic shortest route from `src` to `dst`
    /// (empty when `src == dst`).
    ///
    /// # Panics
    /// Panics if the nodes are out of range or disconnected.
    pub fn route(&self, src: usize, dst: usize) -> Vec<LinkId> {
        assert!(src < self.n && dst < self.n, "node out of range");
        let mut path = Vec::with_capacity(self.dist[src][dst] as usize);
        let mut cur = src;
        while cur != dst {
            let nxt = self.next_hop[dst][cur];
            assert_ne!(nxt, usize::MAX, "nodes {src} and {dst} are disconnected");
            path.push(self.link_of[&(cur, nxt)]);
            cur = nxt;
        }
        path
    }

    /// A broadcast tree rooted at `src`: `(parent, child, link)` triples in
    /// BFS order, covering every other node exactly once.
    pub fn broadcast_tree(&self, src: usize) -> Vec<(usize, usize, LinkId)> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.n];
        for &(a, b) in &self.links {
            adj[a].push(b);
        }
        for nbrs in &mut adj {
            nbrs.sort_unstable();
        }
        let mut seen = vec![false; self.n];
        seen[src] = true;
        let mut queue = std::collections::VecDeque::from([src]);
        let mut tree = Vec::with_capacity(self.n - 1);
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    tree.push((u, v, self.link_of[&(u, v)]));
                    queue.push_back(v);
                }
            }
        }
        tree
    }

    /// Whether `link` is a wrap-around link — the ring's closing edge, or a
    /// torus row/column wrap. These are the links that close channel
    /// dependency cycles, so wormhole routers switch virtual channels when
    /// crossing them (the classical dateline rule). Always `false` for
    /// chain and mesh.
    ///
    /// # Panics
    /// Panics if `link` is out of range.
    pub fn is_wrap_link(&self, link: LinkId) -> bool {
        let (a, b) = self.links[link.0];
        match self.kind {
            TopologyKind::Chain | TopologyKind::Mesh => false,
            TopologyKind::Ring => self.n > 2 && a.abs_diff(b) == self.n - 1,
            TopologyKind::Torus => {
                let (_, cols) = grid_dims(self.n);
                let (ra, ca) = (a / cols, a % cols);
                let (rb, cb) = (b / cols, b % cols);
                // Adjacent grid cells differ by 1 in exactly one coordinate;
                // a wrap link jumps across the whole row or column.
                (ra == rb && ca.abs_diff(cb) > 1) || (ca == cb && ra.abs_diff(rb) > 1)
            }
        }
    }

    /// Iterates all `(from, to)` link endpoint pairs in link-id order.
    pub fn iter_links(&self) -> impl Iterator<Item = (LinkId, usize, usize)> + '_ {
        self.links
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| (LinkId(i), a, b))
    }
}

/// Near-square grid dimensions `(rows, cols)` with `rows <= cols` and
/// `rows * cols == n`.
fn grid_dims(n: usize) -> (usize, usize) {
    let mut rows = 1;
    let mut r = 1;
    while r * r <= n {
        if n.is_multiple_of(r) {
            rows = r;
        }
        r += 1;
    }
    (rows, n / rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_links_and_diameter() {
        let t = Topology::new(TopologyKind::Chain, 8);
        // 2 * (N - 1) unidirectional links, as in the paper's Fig. 2.
        assert_eq!(t.link_count(), 2 * 7);
        assert_eq!(t.diameter(), 7);
        assert_eq!(t.distance(0, 7), 7);
        assert_eq!(t.distance(3, 3), 0);
    }

    #[test]
    fn ring_halves_worst_case() {
        let t = Topology::new(TopologyKind::Ring, 8);
        assert_eq!(t.link_count(), 2 * 8);
        assert_eq!(t.diameter(), 4);
        assert_eq!(t.distance(0, 7), 1);
    }

    #[test]
    fn mesh_and_torus_grids() {
        let m = Topology::new(TopologyKind::Mesh, 8); // 2 x 4
        assert_eq!(m.diameter(), 4); // (2-1)+(4-1)
        let t = Topology::new(TopologyKind::Torus, 8); // 2 x 4 with col wrap
        assert!(t.diameter() < m.diameter());
    }

    #[test]
    fn grid_dims_near_square() {
        assert_eq!(grid_dims(8), (2, 4));
        assert_eq!(grid_dims(16), (4, 4));
        assert_eq!(grid_dims(12), (3, 4));
        assert_eq!(grid_dims(7), (1, 7)); // prime: degenerates to a line
        assert_eq!(grid_dims(1), (1, 1));
    }

    #[test]
    fn routes_follow_shortest_paths() {
        for kind in [
            TopologyKind::Chain,
            TopologyKind::Ring,
            TopologyKind::Mesh,
            TopologyKind::Torus,
        ] {
            let t = Topology::new(kind, 8);
            for a in 0..8 {
                for b in 0..8 {
                    let route = t.route(a, b);
                    assert_eq!(route.len() as u32, t.distance(a, b), "{kind} {a}->{b}");
                    // Route is connected and ends at b.
                    let mut cur = a;
                    for l in &route {
                        let (from, to) = t.endpoints(*l);
                        assert_eq!(from, cur);
                        cur = to;
                    }
                    assert_eq!(cur, b);
                }
            }
        }
    }

    #[test]
    fn routes_are_deterministic() {
        let t1 = Topology::new(TopologyKind::Torus, 16);
        let t2 = Topology::new(TopologyKind::Torus, 16);
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(t1.route(a, b), t2.route(a, b));
            }
        }
    }

    #[test]
    fn broadcast_tree_covers_all_nodes_once() {
        for kind in [
            TopologyKind::Chain,
            TopologyKind::Ring,
            TopologyKind::Mesh,
            TopologyKind::Torus,
        ] {
            let t = Topology::new(kind, 12);
            for src in 0..12 {
                let tree = t.broadcast_tree(src);
                assert_eq!(tree.len(), 11, "{kind} from {src}");
                let mut seen = std::collections::HashSet::from([src]);
                for (parent, child, link) in tree {
                    assert!(seen.contains(&parent), "parent {parent} before child");
                    assert!(seen.insert(child), "child {child} reached twice");
                    assert_eq!(t.endpoints(link), (parent, child));
                }
            }
        }
    }

    #[test]
    fn wrap_links_identified_per_topology() {
        for kind in [TopologyKind::Chain, TopologyKind::Mesh] {
            let t = Topology::new(kind, 8);
            assert!(
                t.iter_links().all(|(l, _, _)| !t.is_wrap_link(l)),
                "{kind} has no wrap links"
            );
        }
        let r = Topology::new(TopologyKind::Ring, 8);
        let ring_wraps: Vec<_> = r
            .iter_links()
            .filter(|&(l, _, _)| r.is_wrap_link(l))
            .collect();
        assert_eq!(ring_wraps.len(), 2); // 7->0 and 0->7
        for (_, a, b) in ring_wraps {
            assert_eq!(a.abs_diff(b), 7);
        }
        // 2 x 4 torus: 2 row wraps (rows of 4 > 2 cols apart), no column
        // wraps (only 2 rows) — 4 unidirectional wrap links.
        let t = Topology::new(TopologyKind::Torus, 8);
        let torus_wraps = t.iter_links().filter(|&(l, _, _)| t.is_wrap_link(l));
        assert_eq!(torus_wraps.count(), 4);
        // 4 x 4 torus wraps both dimensions: 4 per row + 4 per column,
        // bidirectional.
        let t16 = Topology::new(TopologyKind::Torus, 16);
        let w16 = t16.iter_links().filter(|&(l, _, _)| t16.is_wrap_link(l));
        assert_eq!(w16.count(), 16);
    }

    #[test]
    fn single_node_topologies() {
        for kind in [TopologyKind::Chain, TopologyKind::Ring, TopologyKind::Mesh] {
            let t = Topology::new(kind, 1);
            assert_eq!(t.link_count(), 0);
            assert_eq!(t.diameter(), 0);
            assert!(t.route(0, 0).is_empty());
            assert!(t.broadcast_tree(0).is_empty());
        }
    }

    #[test]
    fn two_node_ring_is_chain() {
        let t = Topology::new(TopologyKind::Ring, 2);
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.diameter(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_panics() {
        let _ = Topology::new(TopologyKind::Chain, 0);
    }
}
