//! Packet-level network model: per-link bandwidth reservation with
//! store-and-forward hop timing.

use crate::topology::Topology;
use dl_engine::stats::StatSet;
use dl_engine::{BandwidthResource, Ps};
use dl_protocol::FLIT_BYTES;
use serde::{Deserialize, Serialize};

/// Head-flit size on the wire: the smaller of one protocol flit
/// ([`dl_protocol::FLIT_BYTES`]) and the whole message.
fn head_flit_bytes(bytes: u64) -> u64 {
    (FLIT_BYTES as u64).min(bytes)
}

/// Physical parameters of one unidirectional SerDes link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Usable bandwidth per direction, bytes per second.
    pub bytes_per_sec: u64,
    /// Propagation + transceiver latency per hop.
    pub hop_latency: Ps,
    /// Router pipeline latency added at every intermediate router
    /// (packetize/decode cost at the endpoints is charged by the caller).
    pub router_latency: Ps,
}

impl LinkParams {
    /// GRS-based DL-Bridge defaults: 25 GB/s per direction (the paper's
    /// default DIMM-Link bandwidth), 5 ns hop propagation, 3 ns router.
    pub fn grs_25gbps() -> Self {
        LinkParams {
            bytes_per_sec: 25_000_000_000,
            hop_latency: Ps::from_ns(5),
            router_latency: Ps::from_ns(3),
        }
    }

    /// Same latencies with a different bandwidth (for the Fig. 16 sweep).
    pub fn with_bandwidth(self, bytes_per_sec: u64) -> Self {
        LinkParams {
            bytes_per_sec,
            ..self
        }
    }
}

/// Event-driven packet-granularity network over a [`Topology`].
///
/// Each unidirectional link is a [`BandwidthResource`]; a transfer reserves
/// every link of its deterministic shortest route in order, so both
/// serialization delay and congestion queueing are modelled. Concurrent
/// transfers on disjoint links proceed in parallel, which is exactly the
/// property that lets DIMM-Link's aggregate bandwidth scale with the link
/// count (paper Table I: `#Link × β`).
///
/// Link occupancy may **split across idle gaps**
/// ([`BandwidthResource::transfer_split_with_start`]): a packet's bytes fill
/// whatever idle time the link has from its arrival onward, interleaving
/// with reservations made by earlier `send` calls whose traffic reaches the
/// link later. This mirrors flit-granular wormhole arbitration through the
/// DL-buffers — a contiguous-slot model instead inherits the *call order*
/// of `send` as a priority order, which the cycle-accurate cross-check
/// ([`crate::FlitNet`]) shows to be pessimistic under contention.
///
/// # Examples
///
/// ```
/// use dl_engine::Ps;
/// use dl_noc::{LinkParams, PacketNet, Topology, TopologyKind};
///
/// let topo = Topology::new(TopologyKind::Chain, 4);
/// let mut net = PacketNet::new(&topo, LinkParams::grs_25gbps());
/// // Two disjoint transfers overlap; two on the same link serialize.
/// let a = net.send(Ps::ZERO, 0, 1, 256);
/// let b = net.send(Ps::ZERO, 2, 3, 256);
/// assert_eq!(a, b);
/// let c = net.send(Ps::ZERO, 0, 1, 256);
/// assert!(c > a);
/// ```
#[derive(Debug)]
pub struct PacketNet {
    topo: Topology,
    params: LinkParams,
    links: Vec<BandwidthResource>,
    packets_sent: u64,
    broadcasts_sent: u64,
    total_hops: u64,
}

impl PacketNet {
    /// Builds the network, one [`BandwidthResource`] per unidirectional link.
    pub fn new(topo: &Topology, params: LinkParams) -> Self {
        let links = topo
            .iter_links()
            .map(|(id, a, b)| {
                BandwidthResource::new(format!("link{}:{}->{}", id.0, a, b), params.bytes_per_sec)
            })
            .collect();
        PacketNet {
            topo: topo.clone(),
            params,
            links,
            packets_sent: 0,
            broadcasts_sent: 0,
            total_hops: 0,
        }
    }

    /// Sends `bytes` from `src` to `dst`; returns the arrival time at `dst`.
    ///
    /// `src == dst` returns `now` (no network involvement).
    ///
    /// # Panics
    /// Panics if either node is out of range.
    pub fn send(&mut self, now: Ps, src: usize, dst: usize, bytes: u64) -> Ps {
        if src == dst {
            return now;
        }
        self.packets_sent += 1;
        let route = self.topo.route(src, dst);
        self.total_hops += route.len() as u64;
        let flit_time = self.links[route[0].0].duration_of(head_flit_bytes(bytes));
        let mut head = now;
        let mut tail = now;
        for (i, link) in route.iter().enumerate() {
            let (start, end) = self.links[link.0].transfer_split_with_start(head, bytes);
            // Head flit moves on after one flit time + wire/router latency;
            // the tail follows the full serialization. The tail only ever
            // moves later: a downstream link that happens to have early idle
            // gaps cannot finish before an upstream one.
            head = start + flit_time + self.params.hop_latency;
            if i + 1 < route.len() {
                head += self.params.router_latency;
            }
            tail = tail.max(end + self.params.hop_latency);
        }
        tail.max(head)
    }

    /// Broadcasts `bytes` from `src` along the BFS tree; returns the arrival
    /// time at every node (index = node id; `arrivals[src] == now`).
    pub fn broadcast(&mut self, now: Ps, src: usize, bytes: u64) -> Vec<Ps> {
        self.broadcasts_sent += 1;
        let mut arrivals = vec![Ps::MAX; self.topo.len()];
        arrivals[src] = now;
        // Track head-flit arrival per node for cut-through forwarding.
        let flit_time = if self.links.is_empty() {
            Ps::ZERO
        } else {
            self.links[0].duration_of(head_flit_bytes(bytes))
        };
        let mut heads = vec![Ps::MAX; self.topo.len()];
        heads[src] = now;
        for (parent, child, link) in self.topo.broadcast_tree(src) {
            // Router pipeline latency only at intermediate routers, matching
            // `send`: the source injects directly, forwarders pay the router.
            let launch = if parent == src {
                heads[parent]
            } else {
                heads[parent] + self.params.router_latency
            };
            let (start, end) = self.links[link.0].transfer_split_with_start(launch, bytes);
            heads[child] = start + flit_time + self.params.hop_latency;
            arrivals[child] = (end + self.params.hop_latency).max(heads[child]);
            self.total_hops += 1;
        }
        arrivals
    }

    /// The topology this network runs over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The link parameters.
    pub fn params(&self) -> LinkParams {
        self.params
    }

    /// Total bytes moved across all links (counting each hop).
    pub fn link_bytes(&self) -> u64 {
        self.links.iter().map(|l| l.bytes_moved()).sum()
    }

    /// Unicast packets sent.
    pub fn packets_sent(&self) -> u64 {
        self.packets_sent
    }

    /// Mean hops per unicast packet.
    pub fn mean_hops(&self) -> f64 {
        if self.packets_sent == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.packets_sent as f64
        }
    }

    /// Peak per-link utilization over `[0, total]`.
    pub fn max_link_utilization(&self, total: Ps) -> f64 {
        self.links
            .iter()
            .map(|l| l.utilization(total))
            .fold(0.0, f64::max)
    }

    /// Exports counters as named statistics.
    pub fn stats(&self, elapsed: Ps) -> StatSet {
        let mut s = StatSet::new();
        s.set("packets", self.packets_sent as f64);
        s.set("broadcasts", self.broadcasts_sent as f64);
        s.set("link_bytes", self.link_bytes() as f64);
        s.set("mean_hops", self.mean_hops());
        s.set("max_link_util", self.max_link_utilization(elapsed));
        s
    }

    /// Head-flit time for a packet of `bytes` (test helper).
    #[doc(hidden)]
    pub fn links_flit_time(&self, bytes: u64) -> Ps {
        self.links[0].duration_of(head_flit_bytes(bytes))
    }

    /// Clears byte/occupancy accounting (schedule state is preserved).
    pub fn reset_accounting(&mut self) {
        for l in &mut self.links {
            l.reset_accounting();
        }
        self.packets_sent = 0;
        self.broadcasts_sent = 0;
        self.total_hops = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::TopologyKind;

    fn net(kind: TopologyKind, n: usize) -> PacketNet {
        PacketNet::new(&Topology::new(kind, n), LinkParams::grs_25gbps())
    }

    #[test]
    fn self_send_is_free() {
        let mut n = net(TopologyKind::Chain, 4);
        assert_eq!(n.send(Ps::from_ns(5), 2, 2, 1000), Ps::from_ns(5));
        assert_eq!(n.packets_sent(), 0);
    }

    #[test]
    fn latency_grows_with_hops_pipelined() {
        let p = LinkParams::grs_25gbps();
        let mut n = net(TopologyKind::Chain, 8);
        let one_hop = n.send(Ps::ZERO, 0, 1, 272);
        let mut n2 = net(TopologyKind::Chain, 8);
        let seven_hops = n2.send(Ps::ZERO, 0, 7, 272);
        // Cut-through: extra hops add ~ (flit + hop + router), not a full
        // re-serialization of the packet.
        let per_hop = n2.links_flit_time(272) + p.hop_latency + p.router_latency;
        let expected_extra = per_hop * 6;
        let extra = seven_hops - one_hop;
        assert!(extra >= per_hop * 5, "extra {extra} too small");
        assert!(
            extra <= expected_extra + Ps::from_ns(10),
            "extra {extra} vs cut-through bound {expected_extra}"
        );
    }

    #[test]
    fn serialization_matches_bandwidth() {
        let mut n = net(TopologyKind::Chain, 2);
        let p = LinkParams::grs_25gbps();
        let arrival = n.send(Ps::ZERO, 0, 1, 25_000); // 25 kB at 25 GB/s = 1 us
        assert_eq!(arrival, Ps::from_us(1) + p.hop_latency);
    }

    #[test]
    fn congestion_serializes_same_link() {
        let mut n = net(TopologyKind::Chain, 2);
        let a = n.send(Ps::ZERO, 0, 1, 1_000_000);
        let b = n.send(Ps::ZERO, 0, 1, 1_000_000);
        assert!(b.as_ps() >= 2 * (a.as_ps() - LinkParams::grs_25gbps().hop_latency.as_ps()));
        // Opposite direction is a distinct link: no contention.
        let c = n.send(Ps::ZERO, 1, 0, 1_000_000);
        assert_eq!(c, a);
    }

    #[test]
    fn disjoint_transfers_scale() {
        // Neighbour pairs (0,1) (2,3) (4,5) (6,7) all finish at the same
        // time: aggregate bandwidth = #links * beta (paper Table I).
        let mut n = net(TopologyKind::Chain, 8);
        let times: Vec<Ps> = (0..4)
            .map(|i| n.send(Ps::ZERO, 2 * i, 2 * i + 1, 100_000))
            .collect();
        assert!(times.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn broadcast_reaches_everyone_via_tree() {
        let mut n = net(TopologyKind::Chain, 8);
        let arrivals = n.broadcast(Ps::ZERO, 3, 272);
        assert_eq!(arrivals[3], Ps::ZERO);
        for (i, a) in arrivals.iter().enumerate() {
            assert_ne!(*a, Ps::MAX, "node {i} unreached");
        }
        // Chain broadcast from 3: node 0 is 3 hops, node 7 is 4 hops.
        assert!(arrivals[7] > arrivals[4]);
        assert!(arrivals[0] > arrivals[2]);
    }

    #[test]
    fn one_hop_broadcast_matches_one_hop_unicast() {
        // Regression: broadcast used to charge router_latency on the first
        // hop out of the source, which `send` never does.
        let mut bc = net(TopologyKind::Chain, 2);
        let arrivals = bc.broadcast(Ps::ZERO, 0, 272);
        let mut uni = net(TopologyKind::Chain, 2);
        assert_eq!(arrivals[1], uni.send(Ps::ZERO, 0, 1, 272));
    }

    #[test]
    fn broadcast_arrival_equals_unicast_along_tree_paths() {
        // Uncontended, cut-through forwarding makes every broadcast arrival
        // identical to a fresh unicast over the same path, on any topology.
        for kind in [
            TopologyKind::Chain,
            TopologyKind::Ring,
            TopologyKind::Mesh,
            TopologyKind::Torus,
        ] {
            let topo = Topology::new(kind, 9);
            let mut bc = PacketNet::new(&topo, LinkParams::grs_25gbps());
            let arrivals = bc.broadcast(Ps::ZERO, 0, 272);
            // Tree paths are shortest paths, but `route` may pick a
            // different (equal-length) one, so only compare per tree depth.
            let mut depth = vec![usize::MAX; topo.len()];
            depth[0] = 0;
            for (parent, child, _) in topo.broadcast_tree(0) {
                depth[child] = depth[parent] + 1;
            }
            for dst in 1..topo.len() {
                let mut uni = PacketNet::new(&topo, LinkParams::grs_25gbps());
                // A unicast to any node at the same depth costs the same.
                let same_depth = (1..topo.len())
                    .find(|&d| topo.route(0, d).len() == depth[dst])
                    .unwrap();
                assert_eq!(
                    arrivals[dst],
                    uni.send(Ps::ZERO, 0, same_depth, 272),
                    "{kind:?} node {dst} at depth {}",
                    depth[dst]
                );
            }
        }
    }

    #[test]
    fn broadcast_from_middle_beats_end() {
        let mut from_mid = net(TopologyKind::Chain, 8);
        let mid = from_mid.broadcast(Ps::ZERO, 4, 272);
        let mut from_end = net(TopologyKind::Chain, 8);
        let end = from_end.broadcast(Ps::ZERO, 0, 272);
        let worst = |v: &[Ps]| v.iter().copied().max().unwrap();
        assert!(worst(&mid) < worst(&end));
    }

    #[test]
    fn torus_outruns_chain_under_uniform_traffic() {
        let mut chain = net(TopologyKind::Chain, 16);
        let mut torus = net(TopologyKind::Torus, 16);
        let mut chain_last = Ps::ZERO;
        let mut torus_last = Ps::ZERO;
        for s in 0..16 {
            for d in 0..16 {
                if s != d {
                    chain_last = chain_last.max(chain.send(Ps::ZERO, s, d, 4096));
                    torus_last = torus_last.max(torus.send(Ps::ZERO, s, d, 4096));
                }
            }
        }
        assert!(
            torus_last < chain_last,
            "torus {torus_last} should beat chain {chain_last}"
        );
        assert!(torus.mean_hops() < chain.mean_hops());
    }

    #[test]
    fn stats_and_reset() {
        let mut n = net(TopologyKind::Chain, 4);
        n.send(Ps::ZERO, 0, 3, 100);
        let s = n.stats(Ps::from_us(1));
        assert_eq!(s.get("packets"), Some(1.0));
        assert_eq!(s.get("link_bytes"), Some(300.0)); // 3 hops x 100 B
        assert!(s.get("max_link_util").unwrap() > 0.0);
        n.reset_accounting();
        assert_eq!(n.link_bytes(), 0);
    }

    #[test]
    fn bandwidth_sweep_scales_latency() {
        let topo = Topology::new(TopologyKind::Chain, 2);
        let slow = LinkParams::grs_25gbps().with_bandwidth(4_000_000_000);
        let fast = LinkParams::grs_25gbps().with_bandwidth(64_000_000_000);
        let mut ns = PacketNet::new(&topo, slow);
        let mut nf = PacketNet::new(&topo, fast);
        let ts = ns.send(Ps::ZERO, 0, 1, 1_000_000);
        let tf = nf.send(Ps::ZERO, 0, 1, 1_000_000);
        assert!(ts.as_ps() > 10 * tf.as_ps());
    }
}
