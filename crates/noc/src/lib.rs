#![forbid(unsafe_code)]
//! # dl-noc
//!
//! The interconnect network model — this workspace's stand-in for BookSim,
//! which the DIMM-Link paper uses (via MultiPIM) to simulate the DL-Bridge
//! and DL-Router network.
//!
//! Two fidelity levels are provided:
//!
//! * [`PacketNet`] — an event-driven, packet-granularity model: every
//!   unidirectional SerDes link is a bandwidth-tracked FIFO resource; a
//!   packet reserves each link of its route in turn (store-and-forward with
//!   a per-hop router latency). This captures serialization, queueing and
//!   congestion, and is fast enough for the paper's full parameter sweeps.
//! * [`FlitNet`] — a cycle-stepped, flit-granularity model with input-
//!   buffered routers and credit-based flow control, used to validate the
//!   packet-level model (see the `ablation_fidelity` bench) exactly the way
//!   BookSim validates coarser models.
//!
//! Topologies ([`Topology`]): the paper's baseline **chain** ("half-ring":
//! adjacent DIMMs connected by bidirectional links), plus the **ring**,
//! **mesh**, and **torus** alternatives explored in its Section VI /
//! Figure 17.
//!
//! # Examples
//!
//! ```
//! use dl_engine::Ps;
//! use dl_noc::{LinkParams, PacketNet, Topology, TopologyKind};
//!
//! // 8 DIMMs in one DL group, chained (the paper's default).
//! let topo = Topology::new(TopologyKind::Chain, 8);
//! assert_eq!(topo.diameter(), 7);
//! let mut net = PacketNet::new(&topo, LinkParams::grs_25gbps());
//! let arrival = net.send(Ps::ZERO, 0, 3, 272); // one max-size packet
//! assert!(arrival > Ps::ZERO);
//! ```

pub mod flitnet;
pub mod packetnet;
pub mod topology;

pub use flitnet::{Delivery, FlitNet, FlitNetConfig, PacketRef};
pub use packetnet::{LinkParams, PacketNet};
pub use topology::{LinkId, Topology, TopologyKind};
