#![forbid(unsafe_code)]
//! # dl-protocol
//!
//! The DIMM-Link interconnect protocol (paper Section III-B): a four-layer
//! stack of which this crate implements the three that carry bits:
//!
//! * **Transaction layer** ([`packet`]): packets with a 64-bit header
//!   (SRC / DST / CMD / ADDR / TAG / LEN), up to 256 bytes of payload, and a
//!   64-bit tail, sliced into 128-bit flits.
//! * **Data-link layer** ([`dll`], [`crc`]): CRC-32 validation, ACK/retry
//!   retransmission, and credit-based flow control.
//! * **Physical layer**: serialization timing lives in `dl-noc` (link
//!   bandwidth × wire size); this crate exposes the exact wire size of a
//!   packet ([`packet::Packet::wire_bytes`]).
//!
//! The *function layer* (remote memory access, synchronization, forwarding
//! requests) is realized by the `dimm-link` system crate on top of these
//! primitives.
//!
//! # Examples
//!
//! ```
//! use dl_protocol::{DimmId, DlCommand, Packet, PacketHeader};
//!
//! let header = PacketHeader::new(DimmId(0), DimmId(3), DlCommand::WriteReq, 0x40, 7)?;
//! let packet = Packet::with_payload(header, vec![0xAB; 64])?;
//! let flits = packet.encode();
//! assert_eq!(flits.len(), 5); // 8 B header + 64 B payload + 8 B tail = 80 B
//! let decoded = Packet::decode(&flits)?;
//! assert_eq!(decoded, packet);
//! # Ok::<(), dl_protocol::ProtocolError>(())
//! ```

pub mod crc;
pub mod dll;
pub mod faults;
pub mod packet;

pub use crc::crc32;
pub use dll::{CreditCounter, DllEndpoint, DllEvent};
pub use faults::{FaultSpec, WireHarness, WireOutcome, WireReport};
pub use packet::{DimmId, DlCommand, Flit, Packet, PacketHeader, ProtocolError, FLIT_BYTES};
