//! Fault-injecting wire harness for the data-link layer.
//!
//! Drives a sender/receiver [`DllEndpoint`] pair over a simulated lossy wire
//! that can drop, corrupt, duplicate, and reorder packets (and drop ACKs),
//! all deterministically from a seed. The harness is the ground truth for
//! the DLL's end-to-end guarantees: every submitted packet is delivered to
//! the transaction layer *exactly once* — or, with a retry cap, surfaced as
//! an explicit link failure — and credits are conserved throughout.
//!
//! # Examples
//!
//! ```
//! use dl_protocol::{FaultSpec, WireHarness, WireOutcome};
//!
//! let faults = FaultSpec { drop_pct: 30, duplicate_pct: 20, ..FaultSpec::NONE };
//! let report = WireHarness::new(4, faults, 7).run(16);
//! assert_eq!(report.outcome, WireOutcome::AllDelivered);
//! assert_eq!(report.delivered, 16);
//! assert_eq!(report.max_deliveries_per_seq, 1); // exactly once
//! ```

use crate::dll::{DllEndpoint, DllEvent};
use crate::packet::{DimmId, DlCommand, Flit, Packet, PacketHeader};
use dl_engine::{DetRng, Ps};
use std::collections::{BTreeMap, VecDeque};

/// Per-event fault probabilities, in whole percent (0–100).
///
/// Drop, corrupt, and duplicate apply independently to each data-packet
/// transmission; reorder shuffles a transmission to the front of the wire
/// queue; `ack_drop_pct` applies to each ACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Percent of data transmissions lost in flight.
    pub drop_pct: u8,
    /// Percent of data transmissions with a flipped byte (CRC catches them).
    pub corrupt_pct: u8,
    /// Percent of data transmissions delivered twice.
    pub duplicate_pct: u8,
    /// Percent of data transmissions jumped to the head of the wire queue.
    pub reorder_pct: u8,
    /// Percent of ACKs lost on the return path.
    pub ack_drop_pct: u8,
}

impl FaultSpec {
    /// A clean wire: no faults.
    pub const NONE: FaultSpec = FaultSpec {
        drop_pct: 0,
        corrupt_pct: 0,
        duplicate_pct: 0,
        reorder_pct: 0,
        ack_drop_pct: 0,
    };
}

/// How a [`WireHarness::run`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOutcome {
    /// Every submitted packet reached the transaction layer.
    AllDelivered,
    /// At least one packet exhausted its retry cap (see
    /// [`DllEndpoint::with_max_retries`]); the rest were delivered.
    LinkFailed,
    /// The round budget ran out with traffic still in flight (e.g. a 100%
    /// lossy wire and no retry cap).
    Stalled,
}

/// Counters observed during a harness run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReport {
    /// Final state of the run.
    pub outcome: WireOutcome,
    /// Distinct packets delivered to the transaction layer.
    pub delivered: u64,
    /// Highest delivery count for any single sequence number — must be 1
    /// for the exactly-once guarantee to hold.
    pub max_deliveries_per_seq: u32,
    /// Packets abandoned at the retry cap.
    pub link_failures: u64,
    /// Retransmissions the sender performed.
    pub retransmissions: u64,
    /// Duplicates the receiver suppressed.
    pub duplicates_suppressed: u64,
    /// Corrupted packets the receiver rejected by CRC.
    pub crc_errors: u64,
    /// Faults the wire injected: drops, corruptions, duplications,
    /// reorders, ACK drops.
    pub injected: [u64; 5],
    /// Sender credits available after the run (credit-conservation check).
    pub credits_available: u32,
    /// Sender credit pool size.
    pub credits_max: u32,
}

/// A lossy unidirectional data wire plus its ACK return path, connecting a
/// sender endpoint to a receiver endpoint.
#[derive(Debug)]
pub struct WireHarness {
    tx: DllEndpoint,
    rx: DllEndpoint,
    faults: FaultSpec,
    rng: DetRng,
    data_wire: VecDeque<Vec<Flit>>,
    ack_wire: VecDeque<u32>,
    /// deliveries per sequence number
    deliveries: BTreeMap<u32, u32>,
    injected: [u64; 5],
}

const RETRY_TIMEOUT: Ps = Ps::from_ns(100);

impl WireHarness {
    /// Builds a harness with `credits` receive slots per endpoint, the given
    /// fault mix, and a deterministic seed. No retry cap: packets retry until
    /// delivered (use [`with_max_retries`](Self::with_max_retries) to cap).
    pub fn new(credits: u32, faults: FaultSpec, seed: u64) -> Self {
        WireHarness {
            tx: DllEndpoint::new(credits, RETRY_TIMEOUT),
            rx: DllEndpoint::new(credits, RETRY_TIMEOUT),
            faults,
            rng: DetRng::seed(seed).stream("wire-faults"),
            data_wire: VecDeque::new(),
            ack_wire: VecDeque::new(),
            deliveries: BTreeMap::new(),
            injected: [0; 5],
        }
    }

    /// Caps retransmissions per packet on the sender endpoint.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.tx =
            DllEndpoint::new(self.tx.credits_max(), RETRY_TIMEOUT).with_max_retries(max_retries);
        self
    }

    fn chance(&mut self, pct: u8) -> bool {
        pct > 0 && self.rng.below(100) < pct as u64
    }

    /// Applies wire faults to one outbound transmission.
    fn put_on_wire(&mut self, pkt: &Packet) {
        if self.chance(self.faults.drop_pct) {
            self.injected[0] += 1;
            return;
        }
        let mut flits = pkt.encode();
        if self.chance(self.faults.corrupt_pct) {
            self.injected[1] += 1;
            let f = self.rng.below(flits.len() as u64) as usize;
            let b = self.rng.below(16) as usize;
            flits[f][b] ^= 0x40;
        }
        if self.chance(self.faults.duplicate_pct) {
            self.injected[2] += 1;
            self.data_wire.push_back(flits.clone());
        }
        if self.chance(self.faults.reorder_pct) {
            self.injected[3] += 1;
            self.data_wire.push_front(flits);
        } else {
            self.data_wire.push_back(flits);
        }
    }

    fn handle_tx_events(&mut self, events: Vec<DllEvent>) {
        for ev in events {
            match ev {
                DllEvent::Transmit(pkt) => self.put_on_wire(&pkt),
                DllEvent::LinkFailed { .. } => {}
                DllEvent::Deliver(_) | DllEvent::SendAck { .. } => {
                    unreachable!("receiver-side event from sender endpoint")
                }
            }
        }
    }

    /// Submits `count` packets and runs rounds until the wire drains, a
    /// retry cap fires and the rest drain, or the round budget runs out.
    ///
    /// Each round delivers everything in flight, returns ACKs (minus the
    /// dropped ones), then advances time by one retry timeout so expired
    /// packets retransmit.
    pub fn run(mut self, count: u32) -> WireReport {
        for i in 0..count {
            let h = PacketHeader::new(DimmId(0), DimmId(1), DlCommand::WriteReq, 0x40, i as u8)
                .expect("valid header");
            let evs = self.tx.send(Ps::ZERO, Packet::without_payload(h));
            self.handle_tx_events(evs);
        }

        // Generous budget: even a 99%-lossy wire delivers within this many
        // timeout rounds with overwhelming probability.
        let max_rounds = 64 + 64 * count as u64;
        let mut outcome = WireOutcome::Stalled;
        for round in 1..=max_rounds {
            let now = Ps::ZERO + RETRY_TIMEOUT * round;

            // Data wire -> receiver.
            while let Some(flits) = self.data_wire.pop_front() {
                // CRC failures are counted inside the receiver; the sender's
                // timeout recovers, so the harness just moves on.
                let Ok(evs) = self.rx.receive(now, &flits) else {
                    continue;
                };
                for ev in evs {
                    match ev {
                        DllEvent::Deliver(p) => {
                            *self.deliveries.entry(p.dll_field).or_insert(0) += 1;
                        }
                        DllEvent::SendAck { seq } => {
                            if self.chance(self.faults.ack_drop_pct) {
                                self.injected[4] += 1;
                            } else {
                                self.ack_wire.push_back(seq);
                            }
                        }
                        DllEvent::Transmit(_) | DllEvent::LinkFailed { .. } => {
                            unreachable!("sender-side event from receiver endpoint")
                        }
                    }
                }
            }

            // ACK wire -> sender; freed credits release the backlog.
            while let Some(seq) = self.ack_wire.pop_front() {
                self.tx.on_ack(seq);
            }
            let released = self.tx.release_after_ack(now);
            self.handle_tx_events(released);

            // Time advances one timeout: expired packets retransmit or fail.
            let timed_out = self.tx.poll_timeouts(now);
            self.handle_tx_events(timed_out);

            if self.tx.outstanding() == 0
                && self.tx.backlogged() == 0
                && self.data_wire.is_empty()
                && self.ack_wire.is_empty()
            {
                outcome = if self.tx.link_failures() > 0 {
                    WireOutcome::LinkFailed
                } else {
                    WireOutcome::AllDelivered
                };
                break;
            }
        }

        WireReport {
            outcome,
            delivered: self.deliveries.len() as u64,
            max_deliveries_per_seq: self.deliveries.values().copied().max().unwrap_or(0),
            link_failures: self.tx.link_failures(),
            retransmissions: self.tx.retransmissions(),
            duplicates_suppressed: self.rx.duplicates(),
            crc_errors: self.rx.crc_errors(),
            injected: self.injected,
            credits_available: self.tx.credits_available(),
            credits_max: self.tx.credits_max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_wire_delivers_everything_exactly_once() {
        let report = WireHarness::new(4, FaultSpec::NONE, 1).run(32);
        assert_eq!(report.outcome, WireOutcome::AllDelivered);
        assert_eq!(report.delivered, 32);
        assert_eq!(report.max_deliveries_per_seq, 1);
        assert_eq!(report.retransmissions, 0);
        assert_eq!(report.credits_available, report.credits_max);
    }

    #[test]
    fn lossy_wire_still_delivers_exactly_once() {
        let faults = FaultSpec {
            drop_pct: 40,
            corrupt_pct: 20,
            duplicate_pct: 30,
            reorder_pct: 30,
            ack_drop_pct: 20,
        };
        let report = WireHarness::new(4, faults, 42).run(24);
        assert_eq!(report.outcome, WireOutcome::AllDelivered);
        assert_eq!(report.delivered, 24);
        assert_eq!(report.max_deliveries_per_seq, 1);
        assert!(report.retransmissions > 0, "faults must force retries");
        assert_eq!(report.credits_available, report.credits_max);
    }

    #[test]
    fn dead_wire_with_retry_cap_reports_link_failure() {
        let faults = FaultSpec {
            drop_pct: 100,
            ..FaultSpec::NONE
        };
        let report = WireHarness::new(4, faults, 3).with_max_retries(2).run(8);
        assert_eq!(report.outcome, WireOutcome::LinkFailed);
        assert_eq!(report.delivered, 0);
        assert_eq!(report.link_failures, 8);
        // Abandoning packets must hand their credits back.
        assert_eq!(report.credits_available, report.credits_max);
    }

    #[test]
    fn dead_wire_without_cap_stalls() {
        let faults = FaultSpec {
            drop_pct: 100,
            ..FaultSpec::NONE
        };
        let report = WireHarness::new(2, faults, 5).run(2);
        assert_eq!(report.outcome, WireOutcome::Stalled);
        assert_eq!(report.delivered, 0);
        assert!(report.retransmissions > 0);
    }

    #[test]
    fn duplicate_heavy_wire_suppresses_at_receiver() {
        let faults = FaultSpec {
            duplicate_pct: 100,
            ..FaultSpec::NONE
        };
        let report = WireHarness::new(4, faults, 9).run(16);
        assert_eq!(report.outcome, WireOutcome::AllDelivered);
        assert_eq!(report.delivered, 16);
        assert_eq!(report.max_deliveries_per_seq, 1);
        assert!(report.duplicates_suppressed >= 16);
    }
}
