//! CRC-32 (IEEE 802.3) — the error-detection code carried in every
//! DIMM-Link packet tail.

/// The reflected IEEE 802.3 polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Computes the CRC-32 (IEEE 802.3, reflected, init `0xFFFF_FFFF`,
/// final XOR `0xFFFF_FFFF`) of `data`.
///
/// # Examples
///
/// ```
/// use dl_protocol::crc32;
/// // Standard check value.
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_single_bit_flip() {
        let data = b"DIMM-Link packet payload".to_vec();
        let good = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[byte] ^= 1 << bit;
                assert_ne!(crc32(&bad), good, "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn detects_transposition() {
        let a = crc32(b"ABCD");
        let b = crc32(b"ABDC");
        assert_ne!(a, b);
    }
}
