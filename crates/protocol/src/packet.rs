//! Transaction-layer packet format (paper Figure 3-b).
//!
//! A packet is `header (64 b) || payload (0..=256 B) || tail (64 b)`, sliced
//! into 128-bit flits (zero-padded). The 64-bit header is packed as
//!
//! ```text
//!  bits 63..59  SRC   (5 b, up to 32 DIMMs)
//!  bits 58..54  DST   (5 b)
//!  bits 53..50  CMD   (4 b)
//!  bits 49..13  ADDR  (37 b; the paper stores 37 of the 42 address bits —
//!                       the destination-DIMM bits already live in DST)
//!  bits 12..5   TAG   (8 b transaction identifier)
//!  bits  4..0   LEN   (5 b: number of flits minus one, so up to 32 flits)
//! ```
//!
//! and the tail carries `CRC-32 (32 b) || DLL field (32 b: sequence number
//! and credit return, managed by [`crate::dll`])`. The CRC covers the
//! header, payload, *and* the DLL field: an undetected bit-flip in the
//! sequence number would silently break the link layer's exactly-once
//! delivery (a duplicate could be delivered under a fresh sequence number),
//! so the DLL stamps its field before the physical layer serializes and the
//! CRC is computed at [`Packet::encode`] time over everything but itself.

use crate::crc::crc32;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of one flit in bytes (128 bits).
pub const FLIT_BYTES: usize = 16;
/// Maximum payload carried by one packet (paper: 256 bytes).
pub const MAX_PAYLOAD: usize = 256;
/// Maximum flits per packet (paper: 32).
pub const MAX_FLITS: usize = 32;
/// Width of the ADDR field in bits.
pub const ADDR_BITS: u32 = 37;

/// A 128-bit flit on the wire.
pub type Flit = [u8; FLIT_BYTES];

/// Identifier of a DIMM in the system (the SRC/DST namespace, 5 bits).
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct DimmId(pub u8);

impl fmt::Display for DimmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DIMM-{}", self.0)
    }
}

/// Transaction commands (the 4-bit CMD field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum DlCommand {
    /// Remote read request (no payload).
    ReadReq = 0,
    /// Read return data.
    ReadResp = 1,
    /// Remote write request (payload = write data).
    WriteReq = 2,
    /// Write acknowledgement.
    WriteResp = 3,
    /// Inter-DIMM broadcast write (DST ignored; every DIMM accepts).
    Broadcast = 4,
    /// Synchronization message (barrier arrive/release, lock grant...).
    Sync = 5,
    /// Register a CPU-forwarding request with the polling proxy.
    FwdRegister = 6,
    /// Remote atomic read-modify-write.
    Atomic = 7,
    /// Atomic response.
    AtomicResp = 8,
}

impl DlCommand {
    /// Decodes the 4-bit CMD field.
    ///
    /// # Errors
    /// Returns [`ProtocolError::BadCommand`] for unassigned encodings.
    pub fn from_bits(bits: u8) -> Result<Self, ProtocolError> {
        Ok(match bits {
            0 => DlCommand::ReadReq,
            1 => DlCommand::ReadResp,
            2 => DlCommand::WriteReq,
            3 => DlCommand::WriteResp,
            4 => DlCommand::Broadcast,
            5 => DlCommand::Sync,
            6 => DlCommand::FwdRegister,
            7 => DlCommand::Atomic,
            8 => DlCommand::AtomicResp,
            other => return Err(ProtocolError::BadCommand(other)),
        })
    }

    /// Whether packets with this command expect a response packet.
    pub fn expects_response(self) -> bool {
        matches!(self, DlCommand::ReadReq | DlCommand::Atomic)
    }
}

/// Errors produced by packet construction and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// ADDR does not fit in 37 bits.
    AddrTooWide(u64),
    /// SRC or DST does not fit in 5 bits.
    IdTooWide(u8),
    /// Payload exceeds [`MAX_PAYLOAD`].
    PayloadTooLong(usize),
    /// CRC mismatch at the receiver.
    CrcMismatch {
        /// CRC carried in the tail.
        expected: u32,
        /// CRC computed over the received bytes.
        computed: u32,
    },
    /// Unassigned CMD encoding.
    BadCommand(u8),
    /// Flit stream shorter than the LEN field promises.
    Truncated {
        /// Flits promised by LEN.
        expected: usize,
        /// Flits received.
        got: usize,
    },
    /// An empty flit stream.
    Empty,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::AddrTooWide(a) => write!(f, "address {a:#x} exceeds 37 bits"),
            ProtocolError::IdTooWide(id) => write!(f, "DIMM id {id} exceeds 5 bits"),
            ProtocolError::PayloadTooLong(n) => {
                write!(f, "payload of {n} bytes exceeds {MAX_PAYLOAD}")
            }
            ProtocolError::CrcMismatch { expected, computed } => {
                write!(
                    f,
                    "crc mismatch: tail {expected:#010x}, computed {computed:#010x}"
                )
            }
            ProtocolError::BadCommand(c) => write!(f, "unassigned command encoding {c}"),
            ProtocolError::Truncated { expected, got } => {
                write!(f, "flit stream truncated: expected {expected}, got {got}")
            }
            ProtocolError::Empty => write!(f, "empty flit stream"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// The 64-bit packet header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PacketHeader {
    /// Source DIMM.
    pub src: DimmId,
    /// Destination DIMM (ignored by receivers of broadcasts).
    pub dst: DimmId,
    /// Transaction command.
    pub cmd: DlCommand,
    /// 37-bit address field (per-DIMM offset; DIMM bits live in `dst`).
    pub addr: u64,
    /// Transaction tag matching requests with responses.
    pub tag: u8,
}

impl PacketHeader {
    /// Creates a header, validating field widths.
    ///
    /// # Errors
    /// Returns [`ProtocolError::AddrTooWide`] or [`ProtocolError::IdTooWide`].
    pub fn new(
        src: DimmId,
        dst: DimmId,
        cmd: DlCommand,
        addr: u64,
        tag: u8,
    ) -> Result<Self, ProtocolError> {
        if addr >= (1u64 << ADDR_BITS) {
            return Err(ProtocolError::AddrTooWide(addr));
        }
        if src.0 >= 32 {
            return Err(ProtocolError::IdTooWide(src.0));
        }
        if dst.0 >= 32 {
            return Err(ProtocolError::IdTooWide(dst.0));
        }
        Ok(PacketHeader {
            src,
            dst,
            cmd,
            addr,
            tag,
        })
    }

    fn pack(&self, len_field: u8) -> u64 {
        debug_assert!(len_field < 32);
        ((self.src.0 as u64) << 59)
            | ((self.dst.0 as u64) << 54)
            | ((self.cmd as u64) << 50)
            | (self.addr << 13)
            | ((self.tag as u64) << 5)
            | len_field as u64
    }

    fn unpack(word: u64) -> Result<(Self, u8), ProtocolError> {
        let src = DimmId(((word >> 59) & 0x1F) as u8);
        let dst = DimmId(((word >> 54) & 0x1F) as u8);
        let cmd = DlCommand::from_bits(((word >> 50) & 0xF) as u8)?;
        let addr = (word >> 13) & ((1u64 << ADDR_BITS) - 1);
        let tag = ((word >> 5) & 0xFF) as u8;
        let len_field = (word & 0x1F) as u8;
        Ok((
            PacketHeader {
                src,
                dst,
                cmd,
                addr,
                tag,
            },
            len_field,
        ))
    }
}

/// A transaction-layer packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// The header.
    pub header: PacketHeader,
    /// Payload bytes (empty for requests without data).
    pub payload: Vec<u8>,
    /// The 32-bit DLL field in the tail (sequence / credit return),
    /// filled in by the data-link layer; zero until then.
    pub dll_field: u32,
}

/// The tail CRC: header + padded payload followed by the DLL field.
fn crc32_covering(body: &[u8], dll_field: u32) -> u32 {
    let mut covered = Vec::with_capacity(body.len() + 4);
    covered.extend_from_slice(body);
    covered.extend_from_slice(&dll_field.to_le_bytes());
    crc32(&covered)
}

impl Packet {
    /// A packet without payload (e.g. a read request).
    pub fn without_payload(header: PacketHeader) -> Self {
        Packet {
            header,
            payload: Vec::new(),
            dll_field: 0,
        }
    }

    /// A packet carrying `payload`.
    ///
    /// # Errors
    /// Returns [`ProtocolError::PayloadTooLong`] beyond 256 bytes.
    pub fn with_payload(header: PacketHeader, payload: Vec<u8>) -> Result<Self, ProtocolError> {
        if payload.len() > MAX_PAYLOAD {
            return Err(ProtocolError::PayloadTooLong(payload.len()));
        }
        Ok(Packet {
            header,
            payload,
            dll_field: 0,
        })
    }

    /// Number of flits this packet occupies on the wire.
    pub fn flit_count(&self) -> usize {
        (8 + self.payload.len() + 8).div_ceil(FLIT_BYTES)
    }

    /// Exact wire size in bytes (flits × 16).
    pub fn wire_bytes(&self) -> u64 {
        (self.flit_count() * FLIT_BYTES) as u64
    }

    /// Serializes into flits, computing the tail CRC over header, payload,
    /// and the DLL field (everything on the wire except the CRC itself).
    pub fn encode(&self) -> Vec<Flit> {
        let n_flits = self.flit_count();
        let mut bytes = Vec::with_capacity(n_flits * FLIT_BYTES);
        bytes.extend_from_slice(&self.header.pack((n_flits - 1) as u8).to_le_bytes());
        bytes.extend_from_slice(&self.payload);
        // Pad so the 8-byte tail lands at the end of the final flit.
        let body_padded = n_flits * FLIT_BYTES - 8;
        bytes.resize(body_padded, 0);
        let crc = crc32_covering(&bytes, self.dll_field);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes.extend_from_slice(&self.dll_field.to_le_bytes());
        debug_assert_eq!(bytes.len() % FLIT_BYTES, 0);
        bytes
            .chunks_exact(FLIT_BYTES)
            .map(|c| {
                let mut f = [0u8; FLIT_BYTES];
                f.copy_from_slice(c);
                f
            })
            .collect()
    }

    /// Deserializes and CRC-checks a flit stream.
    ///
    /// The payload length is recovered from the LEN field at flit
    /// granularity, so `decode(encode(p)) == p` holds when
    /// `p.payload.len()` is a multiple of 16 (one flit). The function layer
    /// pads payloads to flit granularity before transmission (zero padding
    /// inside the final flit is otherwise returned as payload bytes).
    ///
    /// # Errors
    /// Returns [`ProtocolError::Empty`], [`ProtocolError::Truncated`],
    /// [`ProtocolError::BadCommand`] or [`ProtocolError::CrcMismatch`].
    pub fn decode(flits: &[Flit]) -> Result<Packet, ProtocolError> {
        if flits.is_empty() {
            return Err(ProtocolError::Empty);
        }
        let head_word = u64::from_le_bytes(flits[0][..8].try_into().expect("flit >= 8 bytes"));
        let (header, len_field) = PacketHeader::unpack(head_word)?;
        let n_flits = len_field as usize + 1;
        if flits.len() < n_flits {
            return Err(ProtocolError::Truncated {
                expected: n_flits,
                got: flits.len(),
            });
        }
        let bytes: Vec<u8> = flits[..n_flits].iter().flatten().copied().collect();
        let body = &bytes[..n_flits * FLIT_BYTES - 8];
        let tail = &bytes[n_flits * FLIT_BYTES - 8..];
        let expected = u32::from_le_bytes(tail[..4].try_into().expect("tail"));
        let dll_field = u32::from_le_bytes(tail[4..8].try_into().expect("tail"));
        let computed = crc32_covering(body, dll_field);
        if expected != computed {
            return Err(ProtocolError::CrcMismatch { expected, computed });
        }
        let payload = body[8..].to_vec();
        Ok(Packet {
            header,
            payload,
            dll_field,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> PacketHeader {
        PacketHeader::new(
            DimmId(2),
            DimmId(13),
            DlCommand::WriteReq,
            0x1234_5678,
            0x42,
        )
        .unwrap()
    }

    #[test]
    fn header_field_limits() {
        assert!(PacketHeader::new(DimmId(32), DimmId(0), DlCommand::ReadReq, 0, 0).is_err());
        assert!(PacketHeader::new(DimmId(0), DimmId(32), DlCommand::ReadReq, 0, 0).is_err());
        assert!(
            PacketHeader::new(DimmId(0), DimmId(0), DlCommand::ReadReq, 1u64 << 37, 0).is_err()
        );
        // 37-bit max address is fine.
        assert!(PacketHeader::new(
            DimmId(0),
            DimmId(0),
            DlCommand::ReadReq,
            (1u64 << 37) - 1,
            0
        )
        .is_ok());
    }

    #[test]
    fn header_pack_unpack_roundtrip() {
        let h = header();
        let word = h.pack(9);
        let (h2, len) = PacketHeader::unpack(word).unwrap();
        assert_eq!(h, h2);
        assert_eq!(len, 9);
    }

    #[test]
    fn read_request_is_single_flit() {
        let p = Packet::without_payload(
            PacketHeader::new(DimmId(0), DimmId(1), DlCommand::ReadReq, 0x40, 1).unwrap(),
        );
        assert_eq!(p.flit_count(), 1);
        assert_eq!(p.wire_bytes(), 16);
        let flits = p.encode();
        assert_eq!(flits.len(), 1);
        assert_eq!(Packet::decode(&flits).unwrap(), p);
    }

    #[test]
    fn max_payload_is_17_flits() {
        let p = Packet::with_payload(header(), vec![7u8; MAX_PAYLOAD]).unwrap();
        assert_eq!(p.flit_count(), 17);
        let flits = p.encode();
        assert_eq!(Packet::decode(&flits).unwrap(), p);
    }

    #[test]
    fn payload_over_256_rejected() {
        assert_eq!(
            Packet::with_payload(header(), vec![0; MAX_PAYLOAD + 1]),
            Err(ProtocolError::PayloadTooLong(257))
        );
    }

    #[test]
    fn corruption_detected_anywhere() {
        // Every wire byte is covered: header, payload, padding, the CRC
        // itself, and the DLL field (an unprotected sequence number would
        // break exactly-once delivery undetected).
        let mut p = Packet::with_payload(header(), (0..64u8).collect()).unwrap();
        p.dll_field = 0x0102_0304;
        let flits = p.encode();
        let total = flits.len() * FLIT_BYTES;
        for byte in 0..total {
            let mut bad = flits.clone();
            bad[byte / FLIT_BYTES][byte % FLIT_BYTES] ^= 0x01;
            match Packet::decode(&bad) {
                Err(_) => {}
                Ok(dec) => panic!("corruption at byte {byte} decoded as {dec:?}"),
            }
        }
    }

    #[test]
    fn truncated_stream_detected() {
        let p = Packet::with_payload(header(), vec![1; 128]).unwrap();
        let flits = p.encode();
        assert!(matches!(
            Packet::decode(&flits[..flits.len() - 1]),
            Err(ProtocolError::Truncated { .. })
        ));
        assert_eq!(Packet::decode(&[]), Err(ProtocolError::Empty));
    }

    #[test]
    fn dll_field_roundtrips_and_is_crc_protected() {
        let mut p = Packet::without_payload(header());
        p.dll_field = 0xDEAD_BEEF;
        let flits = p.encode();
        let dec = Packet::decode(&flits).unwrap();
        assert_eq!(dec.dll_field, 0xDEAD_BEEF);
        // A flipped sequence-number bit must not decode as a valid packet.
        let mut bad = flits.clone();
        let last = bad.len() - 1;
        bad[last][FLIT_BYTES - 1] ^= 0x80;
        assert!(matches!(
            Packet::decode(&bad),
            Err(ProtocolError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn expects_response_classification() {
        assert!(DlCommand::ReadReq.expects_response());
        assert!(DlCommand::Atomic.expects_response());
        assert!(!DlCommand::WriteReq.expects_response());
        assert!(!DlCommand::Broadcast.expects_response());
    }

    #[test]
    fn command_bits_roundtrip() {
        for bits in 0..9u8 {
            let cmd = DlCommand::from_bits(bits).unwrap();
            assert_eq!(cmd as u8, bits);
        }
        assert!(DlCommand::from_bits(15).is_err());
    }
}
