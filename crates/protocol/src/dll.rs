//! Data-link layer: reliable delivery (ACK / timeout / retransmit) and
//! credit-based flow control (paper Section III-B, "Data Link Layer").
//!
//! Each unidirectional link has a [`DllEndpoint`] on its sending side. The
//! endpoint assigns sequence numbers (carried in the packet tail's DLL
//! field), holds unacknowledged packets for retransmission, and respects the
//! receiver's buffer credits. The receiving side validates the CRC, emits an
//! ACK for good packets, and de-duplicates retransmissions.

use crate::packet::{Flit, Packet, ProtocolError};
use dl_engine::Ps;
use std::collections::{BTreeMap, VecDeque};

/// Credit-based flow control for one link direction.
///
/// One credit corresponds to one packet-sized slot in the receiver's
/// DL-Buffer.
///
/// # Examples
///
/// ```
/// use dl_protocol::CreditCounter;
///
/// let mut c = CreditCounter::new(2);
/// assert!(c.try_consume());
/// assert!(c.try_consume());
/// assert!(!c.try_consume()); // exhausted
/// c.refill(1);
/// assert!(c.try_consume());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreditCounter {
    available: u32,
    max: u32,
}

impl CreditCounter {
    /// Creates a counter with `max` credits available.
    ///
    /// # Panics
    /// Panics if `max` is zero.
    pub fn new(max: u32) -> Self {
        assert!(max > 0, "credit pool must be non-empty");
        CreditCounter {
            available: max,
            max,
        }
    }

    /// Consumes one credit if available.
    pub fn try_consume(&mut self) -> bool {
        if self.available > 0 {
            self.available -= 1;
            true
        } else {
            false
        }
    }

    /// Returns `n` credits.
    ///
    /// # Panics
    /// Panics if the refill would exceed the pool size (a protocol bug).
    pub fn refill(&mut self, n: u32) {
        assert!(
            self.available + n <= self.max,
            "credit overflow: {} + {n} > {}",
            self.available,
            self.max
        );
        self.available += n;
    }

    /// Credits currently available.
    pub fn available(&self) -> u32 {
        self.available
    }

    /// Pool size.
    pub fn max(&self) -> u32 {
        self.max
    }
}

/// Something the link layer asks the physical layer to do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DllEvent {
    /// Transmit this packet (first transmission or retransmission).
    Transmit(Packet),
    /// Deliver this packet to the transaction layer (receiver side).
    Deliver(Packet),
    /// Send an acknowledgement for `seq` back to the sender.
    SendAck {
        /// Sequence number being acknowledged.
        seq: u32,
    },
    /// The packet with sequence number `seq` exhausted its retry budget
    /// without an ACK: the link is considered failed for that packet and
    /// retransmission stops (see [`DllEndpoint::with_max_retries`]).
    LinkFailed {
        /// Sequence number of the abandoned packet.
        seq: u32,
    },
}

/// Sender + receiver state machine for one link direction.
///
/// # Examples
///
/// ```
/// use dl_engine::Ps;
/// use dl_protocol::{DimmId, DlCommand, DllEndpoint, DllEvent, Packet, PacketHeader};
///
/// let mut tx = DllEndpoint::new(4, Ps::from_ns(100));
/// let mut rx = DllEndpoint::new(4, Ps::from_ns(100));
///
/// let h = PacketHeader::new(DimmId(0), DimmId(1), DlCommand::ReadReq, 0, 0)?;
/// let ev = tx.send(Ps::ZERO, Packet::without_payload(h));
/// let DllEvent::Transmit(on_wire) = &ev[0] else { panic!() };
///
/// let evs = rx.receive(Ps::from_ns(10), &on_wire.encode())?;
/// assert!(matches!(evs[0], DllEvent::Deliver(_)));
/// assert!(matches!(evs[1], DllEvent::SendAck { seq: 0 }));
/// tx.on_ack(0);
/// assert_eq!(tx.outstanding(), 0);
/// # Ok::<(), dl_protocol::ProtocolError>(())
/// ```
#[derive(Debug)]
pub struct DllEndpoint {
    // --- sender side ---
    credits: CreditCounter,
    next_seq: u32,
    /// seq -> (packet, retransmit deadline, retransmissions so far)
    unacked: BTreeMap<u32, (Packet, Ps, u32)>,
    /// Packets waiting for a credit.
    backlog: VecDeque<Packet>,
    retry_timeout: Ps,
    /// Retransmissions allowed per packet before the link is declared
    /// failed for it; `None` retries forever.
    max_retries: Option<u32>,
    retransmissions: u64,
    link_failures: u64,
    // --- receiver side ---
    /// Sequence numbers below this have all been delivered.
    delivered_low: u32,
    /// Delivered sequence numbers at or above `delivered_low` (compacted).
    delivered_set: std::collections::BTreeSet<u32>,
    duplicates: u64,
    crc_errors: u64,
}

impl DllEndpoint {
    /// Creates an endpoint with `credits` receive-buffer slots and the given
    /// retransmission timeout.
    pub fn new(credits: u32, retry_timeout: Ps) -> Self {
        DllEndpoint {
            credits: CreditCounter::new(credits),
            next_seq: 0,
            unacked: BTreeMap::new(),
            backlog: VecDeque::new(),
            retry_timeout,
            max_retries: None,
            retransmissions: 0,
            link_failures: 0,
            delivered_low: 0,
            delivered_set: std::collections::BTreeSet::new(),
            duplicates: 0,
            crc_errors: 0,
        }
    }

    /// Submits a packet for transmission. Returns the transmissions that may
    /// go on the wire now (empty if the link is out of credits).
    pub fn send(&mut self, now: Ps, packet: Packet) -> Vec<DllEvent> {
        self.backlog.push_back(packet);
        self.drain_backlog(now)
    }

    fn drain_backlog(&mut self, now: Ps) -> Vec<DllEvent> {
        let mut out = Vec::new();
        while !self.backlog.is_empty() && self.credits.try_consume() {
            let mut pkt = self.backlog.pop_front().expect("non-empty backlog");
            let seq = self.next_seq;
            self.next_seq += 1;
            pkt.dll_field = seq;
            self.unacked
                .insert(seq, (pkt.clone(), now + self.retry_timeout, 0));
            out.push(DllEvent::Transmit(pkt));
        }
        out
    }

    /// Handles an ACK from the receiver: frees the window slot and the
    /// credit. Unknown sequence numbers (late duplicate ACKs) are ignored.
    ///
    /// Returns whether a slot was freed; if so, call
    /// [`release_after_ack`](DllEndpoint::release_after_ack) to transmit any
    /// backlogged packets.
    pub fn on_ack(&mut self, seq: u32) -> bool {
        if self.unacked.remove(&seq).is_some() {
            self.credits.refill(1);
            true
        } else {
            false
        }
    }

    /// Releases backlogged packets after ACK processing at time `now`.
    pub fn release_after_ack(&mut self, now: Ps) -> Vec<DllEvent> {
        self.drain_backlog(now)
    }

    /// Retransmits every unacknowledged packet whose timeout expired.
    ///
    /// With a retry cap (see [`with_max_retries`](Self::with_max_retries)), a
    /// packet that has already been retransmitted `max_retries` times is
    /// abandoned instead: its slot and credit are released, the failure is
    /// counted, and a [`DllEvent::LinkFailed`] is emitted.
    pub fn poll_timeouts(&mut self, now: Ps) -> Vec<DllEvent> {
        let mut out = Vec::new();
        let mut failed = Vec::new();
        for (seq, (pkt, deadline, attempts)) in self.unacked.iter_mut() {
            if *deadline <= now {
                if self.max_retries.is_some_and(|cap| *attempts >= cap) {
                    failed.push(*seq);
                    continue;
                }
                *deadline = now + self.retry_timeout;
                *attempts += 1;
                self.retransmissions += 1;
                out.push(DllEvent::Transmit(pkt.clone()));
            }
        }
        for seq in failed {
            self.unacked.remove(&seq);
            self.credits.refill(1);
            self.link_failures += 1;
            out.push(DllEvent::LinkFailed { seq });
        }
        // Abandoning a packet frees its credit; backlogged traffic may now go.
        out.extend(self.drain_backlog(now));
        out
    }

    /// The earliest retransmission deadline, if any packet is unacked.
    ///
    /// A packet already at its retry cap still contributes its deadline on
    /// purpose: its final transmission deserves the same full timeout
    /// window to be ACKed as every earlier one, and the wakeup this
    /// deadline schedules is what performs the abandon —
    /// [`poll_timeouts`](Self::poll_timeouts) then emits
    /// [`DllEvent::LinkFailed`], refills the credit, and drains the
    /// backlog. Dropping capped packets from this minimum would either cut
    /// the final ACK window short or leave the endpoint wedged with the
    /// slot and credit held forever. The cost is one extra wakeup per
    /// abandoned packet, which the determinism audit accepts.
    pub fn next_timeout(&self) -> Option<Ps> {
        self.unacked.values().map(|(_, d, _)| *d).min()
    }

    /// Caps retransmissions per packet: after `max_retries` unanswered
    /// retransmissions (so `max_retries + 1` transmissions total) the next
    /// expired timeout abandons the packet and reports a link failure.
    #[must_use]
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = Some(max_retries);
        self
    }

    /// The configured retry cap, if any.
    pub fn max_retries(&self) -> Option<u32> {
        self.max_retries
    }

    /// Packets abandoned after exhausting the retry cap.
    pub fn link_failures(&self) -> u64 {
        self.link_failures
    }

    /// Receiver side: validates and delivers a flit stream.
    ///
    /// Returns `Deliver` + `SendAck` for a good packet, only `SendAck` for a
    /// duplicate (so the sender stops retransmitting), and an error for a
    /// CRC failure (the sender's timeout handles recovery — no NACK needed).
    ///
    /// # Errors
    /// Propagates decode errors; CRC failures are also counted.
    pub fn receive(&mut self, _now: Ps, flits: &[Flit]) -> Result<Vec<DllEvent>, ProtocolError> {
        let pkt = match Packet::decode(flits) {
            Ok(p) => p,
            Err(e) => {
                if matches!(e, ProtocolError::CrcMismatch { .. }) {
                    self.crc_errors += 1;
                }
                return Err(e);
            }
        };
        let seq = pkt.dll_field;
        // Exactly-once delivery under arbitrary reordering: a sequence
        // number is a duplicate iff it is below the compacted watermark or
        // in the delivered set.
        let is_dup = seq < self.delivered_low || self.delivered_set.contains(&seq);
        if is_dup {
            self.duplicates += 1;
            Ok(vec![DllEvent::SendAck { seq }])
        } else {
            self.delivered_set.insert(seq);
            while self.delivered_set.remove(&self.delivered_low) {
                self.delivered_low += 1;
            }
            Ok(vec![DllEvent::Deliver(pkt), DllEvent::SendAck { seq }])
        }
    }

    /// Unacknowledged packets currently held for retransmission.
    pub fn outstanding(&self) -> usize {
        self.unacked.len()
    }

    /// Packets waiting for credits.
    pub fn backlogged(&self) -> usize {
        self.backlog.len()
    }

    /// Total retransmissions performed.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Duplicate deliveries suppressed at the receiver.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// CRC failures observed at the receiver.
    pub fn crc_errors(&self) -> u64 {
        self.crc_errors
    }

    /// Credits currently available to the sender side.
    pub fn credits_available(&self) -> u32 {
        self.credits.available()
    }

    /// The sender side's credit pool size.
    pub fn credits_max(&self) -> u32 {
        self.credits.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{DimmId, DlCommand, PacketHeader};

    fn pkt(tag: u8) -> Packet {
        Packet::without_payload(
            PacketHeader::new(DimmId(0), DimmId(1), DlCommand::WriteReq, 0x40, tag).unwrap(),
        )
    }

    #[test]
    fn send_assigns_increasing_seqs() {
        let mut tx = DllEndpoint::new(8, Ps::from_ns(100));
        for i in 0..3 {
            let evs = tx.send(Ps::ZERO, pkt(i));
            let DllEvent::Transmit(p) = &evs[0] else {
                panic!()
            };
            assert_eq!(p.dll_field, i as u32);
        }
        assert_eq!(tx.outstanding(), 3);
    }

    #[test]
    fn credits_gate_transmission() {
        let mut tx = DllEndpoint::new(2, Ps::from_ns(100));
        assert_eq!(tx.send(Ps::ZERO, pkt(0)).len(), 1);
        assert_eq!(tx.send(Ps::ZERO, pkt(1)).len(), 1);
        // Third packet has no credit.
        assert_eq!(tx.send(Ps::ZERO, pkt(2)).len(), 0);
        assert_eq!(tx.backlogged(), 1);
        // An ACK frees a credit; the backlog drains.
        tx.on_ack(0);
        let evs = tx.release_after_ack(Ps::from_ns(50));
        assert_eq!(evs.len(), 1);
        assert_eq!(tx.backlogged(), 0);
    }

    #[test]
    fn timeout_retransmits_until_acked() {
        let mut tx = DllEndpoint::new(4, Ps::from_ns(100));
        tx.send(Ps::ZERO, pkt(0));
        assert!(tx.poll_timeouts(Ps::from_ns(50)).is_empty());
        let r1 = tx.poll_timeouts(Ps::from_ns(100));
        assert_eq!(r1.len(), 1);
        let r2 = tx.poll_timeouts(Ps::from_ns(250));
        assert_eq!(r2.len(), 1);
        assert_eq!(tx.retransmissions(), 2);
        tx.on_ack(0);
        assert!(tx.poll_timeouts(Ps::from_ns(1000)).is_empty());
        assert_eq!(tx.next_timeout(), None);
    }

    #[test]
    fn receiver_acks_and_dedupes() {
        let mut tx = DllEndpoint::new(4, Ps::from_ns(100));
        let mut rx = DllEndpoint::new(4, Ps::from_ns(100));
        let evs = tx.send(Ps::ZERO, pkt(9));
        let DllEvent::Transmit(on_wire) = &evs[0] else {
            panic!()
        };
        let flits = on_wire.encode();

        let first = rx.receive(Ps::ZERO, &flits).unwrap();
        assert!(matches!(&first[0], DllEvent::Deliver(p) if p.header.tag == 9));
        assert!(matches!(first[1], DllEvent::SendAck { seq: 0 }));

        // A retransmitted duplicate is acked but not re-delivered.
        let dup = rx.receive(Ps::ZERO, &flits).unwrap();
        assert_eq!(dup.len(), 1);
        assert!(matches!(dup[0], DllEvent::SendAck { seq: 0 }));
        assert_eq!(rx.duplicates(), 1);
    }

    #[test]
    fn corrupted_packet_counts_crc_error_and_recovers_by_retry() {
        let mut tx = DllEndpoint::new(4, Ps::from_ns(100));
        let mut rx = DllEndpoint::new(4, Ps::from_ns(100));
        let evs = tx.send(Ps::ZERO, pkt(1));
        let DllEvent::Transmit(on_wire) = &evs[0] else {
            panic!()
        };
        let mut flits = on_wire.encode();
        flits[0][3] ^= 0xFF; // corrupt in flight
        assert!(rx.receive(Ps::ZERO, &flits).is_err());
        assert_eq!(rx.crc_errors(), 1);

        // Sender times out and retransmits the clean copy.
        let retry = tx.poll_timeouts(Ps::from_ns(100));
        let DllEvent::Transmit(again) = &retry[0] else {
            panic!()
        };
        let evs = rx.receive(Ps::from_ns(120), &again.encode()).unwrap();
        assert!(matches!(&evs[0], DllEvent::Deliver(_)));
    }

    #[test]
    fn ack_for_unknown_seq_is_ignored() {
        let mut tx = DllEndpoint::new(4, Ps::from_ns(100));
        tx.send(Ps::ZERO, pkt(0));
        tx.on_ack(0);
        assert_eq!(tx.credits_available(), 4);
        // Duplicate ack must not over-refill credits.
        tx.on_ack(0);
        assert_eq!(tx.credits_available(), 4);
    }

    #[test]
    #[should_panic(expected = "credit overflow")]
    fn credit_overflow_panics() {
        let mut c = CreditCounter::new(1);
        c.refill(1);
    }

    #[test]
    fn retry_cap_surfaces_link_failure_and_frees_credit() {
        let mut tx = DllEndpoint::new(1, Ps::from_ns(100)).with_max_retries(2);
        assert_eq!(tx.max_retries(), Some(2));
        tx.send(Ps::ZERO, pkt(0));
        // A second packet is stuck behind the single credit.
        assert!(tx.send(Ps::ZERO, pkt(1)).is_empty());

        // Two retransmissions are allowed...
        let r1 = tx.poll_timeouts(Ps::from_ns(100));
        assert!(matches!(r1[0], DllEvent::Transmit(_)));
        let r2 = tx.poll_timeouts(Ps::from_ns(200));
        assert!(matches!(r2[0], DllEvent::Transmit(_)));
        assert_eq!(tx.retransmissions(), 2);

        // ...then the third expiry abandons the packet and the freed credit
        // releases the backlog in the same poll.
        let r3 = tx.poll_timeouts(Ps::from_ns(300));
        assert!(matches!(r3[0], DllEvent::LinkFailed { seq: 0 }));
        assert!(matches!(&r3[1], DllEvent::Transmit(p) if p.dll_field == 1));
        assert_eq!(tx.link_failures(), 1);
        assert_eq!(tx.outstanding(), 1); // only packet 1 remains
        assert_eq!(tx.backlogged(), 0);
    }

    #[test]
    fn capped_packet_keeps_its_abandon_deadline() {
        // A packet at its retry cap must still be visible in next_timeout():
        // the final transmission keeps a full ACK window, and the wakeup at
        // that deadline is what performs the abandon. (An endpoint that
        // dropped capped packets from the minimum would hold the slot and
        // credit forever once the caller stopped polling.)
        let mut tx = DllEndpoint::new(1, Ps::from_ns(100)).with_max_retries(1);
        tx.send(Ps::ZERO, pkt(0));
        assert!(tx.send(Ps::ZERO, pkt(1)).is_empty()); // backlogged
        assert_eq!(tx.next_timeout(), Some(Ps::from_ns(100)));

        // First expiry: the one allowed retransmission, now at the cap.
        let r1 = tx.poll_timeouts(Ps::from_ns(100));
        assert!(matches!(r1[0], DllEvent::Transmit(_)));
        // Still scheduled — the final attempt gets its full timeout window.
        assert_eq!(tx.next_timeout(), Some(Ps::from_ns(200)));

        // Second expiry: the scheduled wakeup abandons the packet, frees
        // the credit, and releases the backlog in the same poll.
        let r2 = tx.poll_timeouts(Ps::from_ns(200));
        assert!(matches!(r2[0], DllEvent::LinkFailed { seq: 0 }));
        assert!(matches!(&r2[1], DllEvent::Transmit(p) if p.dll_field == 1));
        // The deadline now tracks the released packet, not the dead one.
        assert_eq!(tx.next_timeout(), Some(Ps::from_ns(300)));
        assert!(tx.on_ack(1));
        assert_eq!(tx.next_timeout(), None);
    }

    #[test]
    fn uncapped_endpoint_retries_forever() {
        let mut tx = DllEndpoint::new(1, Ps::from_ns(100));
        assert_eq!(tx.max_retries(), None);
        tx.send(Ps::ZERO, pkt(0));
        for i in 1..=50u64 {
            let evs = tx.poll_timeouts(Ps::from_ns(100 * i));
            assert!(matches!(evs[0], DllEvent::Transmit(_)));
        }
        assert_eq!(tx.retransmissions(), 50);
        assert_eq!(tx.link_failures(), 0);
    }

    #[test]
    fn ack_before_cap_prevents_link_failure() {
        let mut tx = DllEndpoint::new(2, Ps::from_ns(100)).with_max_retries(1);
        tx.send(Ps::ZERO, pkt(0));
        tx.poll_timeouts(Ps::from_ns(100)); // the one allowed retry
        tx.on_ack(0);
        assert!(tx.poll_timeouts(Ps::from_ns(1000)).is_empty());
        assert_eq!(tx.link_failures(), 0);
    }
}
