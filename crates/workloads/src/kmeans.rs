//! K-Means clustering (paper Table IV).
//!
//! Points are thread-private (cacheable, local); the centroid table is
//! shared read-write (updated every iteration), hence uncacheable, and is
//! distributed round-robin across DIMMs. As any sane NMP implementation
//! would, each thread snapshots the centroids into a local scratch buffer
//! once per iteration (they are stable within an iteration) and scans the
//! local copy per point; the inter-DIMM traffic is the per-iteration
//! snapshot plus the atomic accumulator updates — point-to-point,
//! fine-grained and scattered, which is why the paper lists KM among the
//! broadcast-*unfriendly* IDC tasks.

use crate::layout::DataLayout;
use crate::trace::{Op, ThreadTrace, Workload};
use crate::WorkloadParams;
use dl_engine::DetRng;

/// Number of centroids.
const K: usize = 16;
/// Feature dimensions (8 × f64 = one 64-byte line per point/centroid).
const DIMS: u32 = 8;
/// Clustering iterations.
const ITERS: usize = 3;

/// Builds the K-Means workload. `scale` sets the *total* point count
/// (`2^(scale + 2)`), split evenly over the threads — so runs with
/// different thread counts (the NMP systems vs. the 16-core host) do the
/// same total work.
pub fn kmeans(params: &WorkloadParams) -> Workload {
    let threads = params.threads();
    let points_per_thread = ((1u64 << (params.scale + 2)) / threads as u64).max(16);
    let mut rng = DetRng::seed(params.seed).stream("kmeans");

    let home: Vec<usize> = (0..threads).map(|t| t / params.threads_per_dimm).collect();
    let mut layout = DataLayout::new(params.dimms);
    let points: Vec<_> = (0..threads)
        .map(|t| layout.alloc(home[t], points_per_thread * 64))
        .collect();
    // Centroids and their accumulators: centroid k lives on DIMM k % N.
    let centroids: Vec<_> = (0..K).map(|k| layout.alloc(k % params.dimms, 64)).collect();
    let accums: Vec<_> = (0..K).map(|k| layout.alloc(k % params.dimms, 64)).collect();
    // Per-thread local scratch holding this iteration's centroid snapshot.
    let scratch: Vec<_> = (0..threads)
        .map(|t| layout.alloc(home[t], (K * 64) as u64))
        .collect();

    // Pre-draw the per-point update probability stream so the trace is
    // deterministic and iteration-dependent reassignments taper off.
    let mut traces = vec![ThreadTrace::new(); threads];
    for iter in 0..ITERS {
        let reassign_p = match iter {
            0 => 1.0,
            1 => 0.3,
            _ => 0.1,
        };
        for (t, trace) in traces.iter_mut().enumerate() {
            // Snapshot the centroid table into the local scratch: K remote
            // uncacheable reads + local writes, once per iteration.
            for (k, c) in centroids.iter().enumerate() {
                trace.push(Op::Load {
                    addr: c.base(),
                    cacheable: false,
                });
                trace.push(Op::Store {
                    addr: scratch[t].line_of(k as u64, 64),
                    cacheable: true,
                });
            }
            for p in 0..points_per_thread {
                // Load the point (thread-private, cacheable, local).
                trace.push(Op::Load {
                    addr: points[t].line_of(p, 64),
                    cacheable: true,
                });
                // Scan the local snapshot.
                for k in 0..K {
                    trace.push(Op::Load {
                        addr: scratch[t].line_of(k as u64, 64),
                        cacheable: true,
                    });
                    trace.comp(DIMS * 2);
                }
                // Cluster reassignment updates the thread's *local* partial
                // sums (pure compute); the shared accumulators are only
                // touched once per iteration below.
                if rng.chance(reassign_p) {
                    let _ = rng.below(K as u64);
                    trace.comp(DIMS * 2);
                }
            }
            // Per-thread partial sums folded into the global accumulators.
            for a in &accums {
                trace.push(Op::Atomic { addr: a.base() });
                trace.comp(DIMS);
            }
            trace.push(Op::Barrier);
        }
        // The first thread of each DIMM recomputes its resident centroids.
        for (t, trace) in traces.iter_mut().enumerate() {
            if t % params.threads_per_dimm == 0 {
                let d = home[t];
                for (k, c) in centroids.iter().enumerate() {
                    if k % params.dimms == d {
                        trace.push(Op::Load {
                            addr: accums[k].base(),
                            cacheable: false,
                        });
                        trace.comp(DIMS * 4);
                        trace.push(Op::Store {
                            addr: c.base(),
                            cacheable: false,
                        });
                    }
                }
            }
            trace.push(Op::Barrier);
        }
    }
    Workload::new("KM", traces, layout, home)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centroid_snapshots_bound_remote_traffic() {
        let wl = kmeans(&WorkloadParams::small(4));
        // Snapshot + atomics only: remote ops are a small minority.
        let rf = wl.remote_fraction();
        assert!(rf > 0.001 && rf < 0.2, "rf = {rf}");
    }

    #[test]
    fn two_barriers_per_iteration() {
        let wl = kmeans(&WorkloadParams::small(2));
        for trace in wl.traces() {
            let n = trace
                .ops()
                .iter()
                .filter(|o| matches!(o, Op::Barrier))
                .count();
            assert_eq!(n, 2 * ITERS);
        }
    }

    #[test]
    fn uses_atomics_for_accumulation() {
        let wl = kmeans(&WorkloadParams::small(2));
        let atomics: usize = wl
            .traces()
            .iter()
            .flat_map(|t| t.ops())
            .filter(|o| matches!(o, Op::Atomic { .. }))
            .count();
        // K folds per thread per iteration.
        let threads = wl.traces().len();
        assert_eq!(atomics, threads * ITERS * K);
    }

    #[test]
    fn centroid_snapshot_touches_every_dimm() {
        let params = WorkloadParams::small(4);
        let wl = kmeans(&params);
        let layout = wl.layout();
        let mut dimms_touched = std::collections::HashSet::new();
        for op in wl.traces()[0].ops() {
            if let Op::Load {
                addr,
                cacheable: false,
            } = op
            {
                dimms_touched.insert(layout.dimm_of(*addr));
            }
        }
        assert_eq!(dimms_touched.len(), params.dimms);
    }
}
