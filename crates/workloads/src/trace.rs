//! The trace intermediate representation replayed by simulated cores.

use crate::layout::DataLayout;
use serde::{Deserialize, Serialize};

/// One operation in a thread's trace.
///
/// Memory operations are line-granular (64 bytes); larger transfers are
/// emitted as multiple operations by the workload generators. The
/// `cacheable` flag implements the paper's software-assisted coherence:
/// thread-private and shared read-only data may be cached, shared
/// read-write data must bypass the caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Busy the core for this many core cycles.
    Comp(u32),
    /// Read one line at `addr`.
    Load {
        /// Global physical address.
        addr: u64,
        /// Whether the line may be cached.
        cacheable: bool,
    },
    /// Write one line at `addr`.
    Store {
        /// Global physical address.
        addr: u64,
        /// Whether the line may be cached.
        cacheable: bool,
    },
    /// Read-modify-write one line at its home DIMM (always uncacheable;
    /// serializes at the home DIMM — used for locks and shared counters).
    Atomic {
        /// Global physical address.
        addr: u64,
    },
    /// Broadcast `bytes` starting at `addr` (which lives on this thread's
    /// home DIMM) to every other DIMM. Requires the explicit broadcast API
    /// of the paper's function layer.
    Broadcast {
        /// Global physical address of the source buffer.
        addr: u64,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// Global barrier across all threads of the workload.
    Barrier,
}

impl Op {
    /// The address this op touches, if it is a memory operation.
    pub fn addr(&self) -> Option<u64> {
        match self {
            Op::Load { addr, .. }
            | Op::Store { addr, .. }
            | Op::Atomic { addr }
            | Op::Broadcast { addr, .. } => Some(*addr),
            _ => None,
        }
    }
}

/// The operation sequence of one thread.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadTrace {
    ops: Vec<Op>,
}

impl ThreadTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an operation.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Appends `Comp(cycles)`, merging with a trailing `Comp` to keep traces
    /// compact.
    pub fn comp(&mut self, cycles: u32) {
        if cycles == 0 {
            return;
        }
        if let Some(Op::Comp(c)) = self.ops.last_mut() {
            *c = c.saturating_add(cycles);
        } else {
            self.ops.push(Op::Comp(cycles));
        }
    }

    /// The operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

impl FromIterator<Op> for ThreadTrace {
    fn from_iter<I: IntoIterator<Item = Op>>(iter: I) -> Self {
        ThreadTrace {
            ops: iter.into_iter().collect(),
        }
    }
}

impl Extend<Op> for ThreadTrace {
    fn extend<I: IntoIterator<Item = Op>>(&mut self, iter: I) {
        self.ops.extend(iter);
    }
}

/// A complete multi-threaded workload: one trace per thread plus the data
/// layout the addresses were generated against.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Workload {
    name: String,
    traces: Vec<ThreadTrace>,
    layout: DataLayout,
    /// DIMM whose memory each thread predominantly owns (the "natural"
    /// placement: thread i's partition lives here).
    home_dimm: Vec<usize>,
}

impl Workload {
    /// Assembles a workload.
    ///
    /// # Panics
    /// Panics if `home_dimm.len() != traces.len()`.
    pub fn new(
        name: impl Into<String>,
        traces: Vec<ThreadTrace>,
        layout: DataLayout,
        home_dimm: Vec<usize>,
    ) -> Self {
        assert_eq!(traces.len(), home_dimm.len(), "one home DIMM per thread");
        Workload {
            name: name.into(),
            traces,
            layout,
            home_dimm,
        }
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Per-thread traces.
    pub fn traces(&self) -> &[ThreadTrace] {
        &self.traces
    }

    /// The data layout addresses were allocated in.
    pub fn layout(&self) -> &DataLayout {
        &self.layout
    }

    /// The natural placement: `home_dimm()[t]` owns thread `t`'s partition.
    pub fn home_dimm(&self) -> &[usize] {
        &self.home_dimm
    }

    /// Total operations across all threads.
    pub fn total_ops(&self) -> u64 {
        self.traces.iter().map(|t| t.len() as u64).sum()
    }

    /// Total memory operations across all threads.
    pub fn total_mem_ops(&self) -> u64 {
        self.traces
            .iter()
            .flat_map(|t| t.ops())
            .filter(|op| op.addr().is_some())
            .count() as u64
    }

    /// Fraction of memory operations whose target DIMM differs from the
    /// issuing thread's home DIMM — a cheap static estimate of IDC
    /// intensity.
    pub fn remote_fraction(&self) -> f64 {
        let mut total = 0u64;
        let mut remote = 0u64;
        for (t, trace) in self.traces.iter().enumerate() {
            let home = self.home_dimm[t];
            for op in trace.ops() {
                if let Some(addr) = op.addr() {
                    total += 1;
                    if self.layout.dimm_of(addr) != home {
                        remote += 1;
                    }
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            remote as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::DataLayout;

    #[test]
    fn comp_merges_adjacent() {
        let mut t = ThreadTrace::new();
        t.comp(5);
        t.comp(7);
        assert_eq!(t.ops(), &[Op::Comp(12)]);
        t.push(Op::Barrier);
        t.comp(0); // no-op
        t.comp(1);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn op_addr_extraction() {
        assert_eq!(Op::Comp(3).addr(), None);
        assert_eq!(Op::Barrier.addr(), None);
        assert_eq!(
            Op::Load {
                addr: 64,
                cacheable: true
            }
            .addr(),
            Some(64)
        );
        assert_eq!(Op::Atomic { addr: 128 }.addr(), Some(128));
        assert_eq!(
            Op::Broadcast {
                addr: 0,
                bytes: 256
            }
            .addr(),
            Some(0)
        );
    }

    #[test]
    fn remote_fraction_counts_cross_dimm_traffic() {
        let mut layout = DataLayout::new(2);
        let a = layout.alloc(0, 4096);
        let b = layout.alloc(1, 4096);
        let mut t0 = ThreadTrace::new();
        t0.push(Op::Load {
            addr: a.base(),
            cacheable: false,
        }); // local
        t0.push(Op::Load {
            addr: b.base(),
            cacheable: false,
        }); // remote
        let wl = Workload::new("x", vec![t0], layout, vec![0]);
        assert!((wl.remote_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(wl.total_mem_ops(), 2);
    }

    #[test]
    fn trace_collects_from_iterator() {
        let t: ThreadTrace = [Op::Comp(1), Op::Barrier].into_iter().collect();
        assert_eq!(t.len(), 2);
    }
}
