//! Global address space and per-DIMM data placement.
//!
//! The system partitions the physical address space across DIMMs with the
//! DIMM id in the bits *above* the per-DIMM offset (the convention the
//! paper's 37-bit ADDR field assumes). Workload generators allocate their
//! arrays region-by-region on explicit DIMMs, which is how DIMM-NMP software
//! actually lays out data for the coarse-grained execution flow.

use serde::{Deserialize, Serialize};

/// Address-space bytes reserved per DIMM (16 GiB, matching the modelled
/// LR-DIMM capacity; 34 offset bits + 5 DIMM bits < the paper's 42-bit
/// physical space).
pub const BYTES_PER_DIMM: u64 = 1 << 34;

/// A contiguous allocation on one DIMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    base: u64,
    bytes: u64,
    dimm: usize,
}

impl Region {
    /// First byte's global address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The DIMM the region lives on.
    pub fn dimm(&self) -> usize {
        self.dimm
    }

    /// Address of the `i`-th element of `elem_bytes`-sized elements.
    ///
    /// # Panics
    /// Panics (in debug builds) if the element is out of range.
    #[inline]
    pub fn at(&self, i: u64, elem_bytes: u64) -> u64 {
        debug_assert!(
            (i + 1) * elem_bytes <= self.bytes,
            "element {i} x {elem_bytes} B exceeds region of {} B",
            self.bytes
        );
        self.base + i * elem_bytes
    }

    /// Address of the 64-byte line containing the `i`-th element.
    #[inline]
    pub fn line_of(&self, i: u64, elem_bytes: u64) -> u64 {
        self.at(i, elem_bytes) & !63
    }
}

/// Bump allocator over the partitioned global address space.
///
/// # Examples
///
/// ```
/// use dl_workloads::{DataLayout, BYTES_PER_DIMM};
///
/// let mut layout = DataLayout::new(4);
/// let a = layout.alloc(0, 1024);
/// let b = layout.alloc(2, 1024);
/// assert_eq!(layout.dimm_of(a.base()), 0);
/// assert_eq!(layout.dimm_of(b.base()), 2);
/// assert_eq!(b.base(), 2 * BYTES_PER_DIMM);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataLayout {
    dimms: usize,
    next_free: Vec<u64>,
}

impl DataLayout {
    /// Creates an empty layout over `dimms` DIMMs.
    ///
    /// # Panics
    /// Panics if `dimms` is zero or exceeds the 5-bit DIMM id space (32).
    pub fn new(dimms: usize) -> Self {
        assert!(
            dimms > 0 && dimms <= 32,
            "1..=32 DIMMs supported, got {dimms}"
        );
        DataLayout {
            dimms,
            next_free: vec![0; dimms],
        }
    }

    /// Number of DIMMs.
    pub fn dimms(&self) -> usize {
        self.dimms
    }

    /// Allocates `bytes` (rounded up to a 64-byte line) on `dimm`.
    ///
    /// # Panics
    /// Panics if `dimm` is out of range or the DIMM is full.
    pub fn alloc(&mut self, dimm: usize, bytes: u64) -> Region {
        assert!(dimm < self.dimms, "DIMM {dimm} out of range");
        let bytes = bytes.div_ceil(64) * 64;
        let offset = self.next_free[dimm];
        assert!(
            offset + bytes <= BYTES_PER_DIMM,
            "DIMM {dimm} exhausted: {offset} + {bytes} > {BYTES_PER_DIMM}"
        );
        self.next_free[dimm] = offset + bytes;
        Region {
            base: dimm as u64 * BYTES_PER_DIMM + offset,
            bytes,
            dimm,
        }
    }

    /// The DIMM owning a global address.
    #[inline]
    pub fn dimm_of(&self, addr: u64) -> usize {
        ((addr / BYTES_PER_DIMM) as usize) % self.dimms
    }

    /// The per-DIMM byte offset of a global address.
    #[inline]
    pub fn offset_of(&self, addr: u64) -> u64 {
        addr % BYTES_PER_DIMM
    }

    /// Bytes allocated so far on `dimm`.
    pub fn used(&self, dimm: usize) -> u64 {
        self.next_free[dimm]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_line_aligned_and_disjoint() {
        let mut l = DataLayout::new(2);
        let a = l.alloc(0, 100); // rounds to 128
        let b = l.alloc(0, 64);
        assert_eq!(a.bytes(), 128);
        assert_eq!(b.base(), a.base() + 128);
        assert_eq!(l.used(0), 192);
        assert_eq!(l.used(1), 0);
    }

    #[test]
    fn dimm_of_inverts_alloc() {
        let mut l = DataLayout::new(8);
        for d in 0..8 {
            let r = l.alloc(d, 4096);
            assert_eq!(l.dimm_of(r.base()), d);
            assert_eq!(l.dimm_of(r.at(63, 64)), d);
            assert_eq!(l.offset_of(r.base()), 0);
        }
    }

    #[test]
    fn region_indexing() {
        let mut l = DataLayout::new(1);
        let r = l.alloc(0, 1024);
        assert_eq!(r.at(3, 8), r.base() + 24);
        assert_eq!(r.line_of(9, 8), r.base() + 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_dimm_panics() {
        let mut l = DataLayout::new(2);
        l.alloc(2, 64);
    }

    #[test]
    #[should_panic(expected = "1..=32")]
    fn too_many_dimms_panics() {
        let _ = DataLayout::new(33);
    }
}
