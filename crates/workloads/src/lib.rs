#![forbid(unsafe_code)]
//! # dl-workloads
//!
//! The benchmark workloads of the DIMM-Link evaluation (paper Table IV and
//! Sections V-C/V-D), implemented as *trace generators*: each workload runs
//! its real algorithm at build time and records, per thread, the sequence of
//! compute bursts, line-granular memory accesses, synchronization events and
//! broadcasts that the simulated NMP cores (or host cores) then replay.
//!
//! | Paper workload | Builder | Input |
//! |---|---|---|
//! | BFS (breadth-first search) | [`graph_apps::bfs`] | R-MAT graph |
//! | PR (PageRank) | [`graph_apps::pagerank`] | R-MAT graph |
//! | SSSP (single-source shortest path) | [`graph_apps::sssp`] | R-MAT graph |
//! | SpMV (sparse matrix-vector) | [`graph_apps::spmv`] | R-MAT matrix |
//! | HS (Hotspot stencil) | [`stencil::hotspot`] | 2-D grid |
//! | NW (Needleman-Wunsch) | [`stencil::needleman_wunsch`] | 2-D wavefront |
//! | KM (K-Means) | [`kmeans::kmeans`] | random points |
//! | TS.Pow (SynCron) | [`tspow::ts_pow`] | time series |
//! | sync-interval sweep (Fig. 14-a) | [`synth::sync_sweep`] | synthetic |
//! | bulk-copy microbench (Fig. 1 / Table I) | [`synth::bulk_copy`] | synthetic |
//!
//! The paper's LiveJournal input (69 M edges) is substituted by a
//! deterministic R-MAT generator with the same skewed-degree structure at a
//! configurable scale (see DESIGN.md, "Substitutions").
//!
//! # Examples
//!
//! ```
//! use dl_workloads::{WorkloadKind, WorkloadParams};
//!
//! let params = WorkloadParams::small(4); // 4 DIMMs, 4 threads each
//! let wl = WorkloadKind::Bfs.build(&params);
//! assert_eq!(wl.traces().len(), 16);
//! assert!(wl.total_ops() > 0);
//! ```

pub mod graph;
pub mod graph_apps;
pub mod kmeans;
pub mod layout;
pub mod stencil;
pub mod synth;
pub mod trace;
pub mod tspow;

pub use graph::CsrGraph;
pub use layout::{DataLayout, Region, BYTES_PER_DIMM};
pub use trace::{Op, ThreadTrace, Workload};

use serde::{Deserialize, Serialize};

/// Parameters shared by every workload builder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkloadParams {
    /// Number of DIMMs data is partitioned over.
    pub dimms: usize,
    /// Threads per DIMM (the paper runs 4).
    pub threads_per_dimm: usize,
    /// Problem scale knob; each workload documents its meaning (R-MAT
    /// scale = log2 vertices, grid side, points, ...).
    pub scale: u32,
    /// Seed for deterministic input generation.
    pub seed: u64,
    /// Use the explicit-broadcast formulation (Fig. 12) where supported.
    pub broadcast: bool,
    /// Community-locality of graph inputs (see
    /// [`graph::CsrGraph::rmat_with_locality`]); fraction of edges redrawn
    /// near their source.
    pub locality: f64,
}

impl WorkloadParams {
    /// A small, test-friendly configuration.
    pub fn small(dimms: usize) -> Self {
        WorkloadParams {
            dimms,
            threads_per_dimm: 4,
            scale: 10,
            seed: 42,
            broadcast: false,
            locality: 0.85,
        }
    }

    /// The evaluation-scale default (R-MAT 14 graphs, larger grids).
    pub fn evaluation(dimms: usize) -> Self {
        WorkloadParams {
            dimms,
            threads_per_dimm: 4,
            scale: 14,
            seed: 42,
            broadcast: false,
            locality: 0.85,
        }
    }

    /// Total thread count.
    pub fn threads(&self) -> usize {
        self.dimms * self.threads_per_dimm
    }
}

/// The workload taxonomy used throughout the benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Breadth-first search.
    Bfs,
    /// Hotspot 2-D thermal stencil.
    Hotspot,
    /// K-Means clustering.
    KMeans,
    /// Needleman-Wunsch wavefront alignment.
    NeedlemanWunsch,
    /// PageRank.
    Pagerank,
    /// Single-source shortest path (Bellman-Ford rounds).
    Sssp,
    /// Sparse matrix × dense vector.
    Spmv,
    /// SynCron's TS.Pow matrix-profile task (synchronization-rich).
    TsPow,
}

impl WorkloadKind {
    /// The six point-to-point workloads of Fig. 10.
    pub const P2P_SET: [WorkloadKind; 6] = [
        WorkloadKind::Bfs,
        WorkloadKind::Hotspot,
        WorkloadKind::KMeans,
        WorkloadKind::NeedlemanWunsch,
        WorkloadKind::Pagerank,
        WorkloadKind::Sssp,
    ];

    /// The three broadcast workloads of Fig. 12.
    pub const BROADCAST_SET: [WorkloadKind; 3] = [
        WorkloadKind::Pagerank,
        WorkloadKind::Sssp,
        WorkloadKind::Spmv,
    ];

    /// Short name as used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            WorkloadKind::Bfs => "BFS",
            WorkloadKind::Hotspot => "HS",
            WorkloadKind::KMeans => "KM",
            WorkloadKind::NeedlemanWunsch => "NW",
            WorkloadKind::Pagerank => "PR",
            WorkloadKind::Sssp => "SSSP",
            WorkloadKind::Spmv => "SPMV",
            WorkloadKind::TsPow => "TS.Pow",
        }
    }

    /// Builds the workload's thread traces.
    pub fn build(self, params: &WorkloadParams) -> Workload {
        match self {
            WorkloadKind::Bfs => graph_apps::bfs(params),
            WorkloadKind::Hotspot => stencil::hotspot(params),
            WorkloadKind::KMeans => kmeans::kmeans(params),
            WorkloadKind::NeedlemanWunsch => stencil::needleman_wunsch(params),
            WorkloadKind::Pagerank => graph_apps::pagerank(params),
            WorkloadKind::Sssp => graph_apps::sssp(params),
            WorkloadKind::Spmv => graph_apps::spmv(params),
            WorkloadKind::TsPow => tspow::ts_pow(params),
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_builds_nonempty_traces() {
        let params = WorkloadParams::small(4);
        for kind in [
            WorkloadKind::Bfs,
            WorkloadKind::Hotspot,
            WorkloadKind::KMeans,
            WorkloadKind::NeedlemanWunsch,
            WorkloadKind::Pagerank,
            WorkloadKind::Sssp,
            WorkloadKind::Spmv,
            WorkloadKind::TsPow,
        ] {
            let wl = kind.build(&params);
            assert_eq!(wl.traces().len(), params.threads(), "{kind}");
            assert!(wl.total_ops() > 100, "{kind} produced a trivial trace");
            // Every trace touches memory.
            for (t, trace) in wl.traces().iter().enumerate() {
                assert!(
                    trace.ops().iter().any(|op| matches!(
                        op,
                        Op::Load { .. } | Op::Store { .. } | Op::Atomic { .. }
                    )),
                    "{kind} thread {t} never touches memory"
                );
            }
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let params = WorkloadParams::small(2);
        let a = WorkloadKind::Pagerank.build(&params);
        let b = WorkloadKind::Pagerank.build(&params);
        assert_eq!(a.total_ops(), b.total_ops());
        assert_eq!(a.traces()[0].ops()[..50], b.traces()[0].ops()[..50]);
    }

    #[test]
    fn broadcast_variants_emit_broadcast_ops() {
        let mut params = WorkloadParams::small(4);
        params.broadcast = true;
        for kind in WorkloadKind::BROADCAST_SET {
            let wl = kind.build(&params);
            let has_bc = wl
                .traces()
                .iter()
                .any(|t| t.ops().iter().any(|op| matches!(op, Op::Broadcast { .. })));
            assert!(has_bc, "{kind} broadcast variant has no Broadcast ops");
        }
    }

    #[test]
    fn barriers_are_balanced_across_threads() {
        // Every thread must pass the same number of barriers or the
        // simulation deadlocks.
        let params = WorkloadParams::small(4);
        for kind in WorkloadKind::P2P_SET {
            let wl = kind.build(&params);
            let counts: Vec<usize> = wl
                .traces()
                .iter()
                .map(|t| {
                    t.ops()
                        .iter()
                        .filter(|op| matches!(op, Op::Barrier))
                        .count()
                })
                .collect();
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "{kind}: unbalanced barrier counts {counts:?}"
            );
        }
    }
}
