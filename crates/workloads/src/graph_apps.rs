//! Graph-analytics trace generators: BFS, PageRank, SSSP, SpMV.
//!
//! All four run their real algorithm on an R-MAT input (the LiveJournal
//! substitute) while recording per-thread traces. Common structure:
//!
//! * Vertices are split into `T` contiguous, edge-balanced blocks; block `t`
//!   belongs to thread `t` and its CSR slice plus vertex state live on the
//!   thread's home DIMM (`t / threads_per_dimm`).
//! * CSR topology (offsets/targets/weights) is read-only → cacheable.
//! * Vertex state written during the run (dist/rank/acc) is shared
//!   read-write → uncacheable, per the paper's software-assisted coherence.
//! * The broadcast variants (Fig. 12) replicate the remotely-read vector on
//!   every DIMM and refresh the replicas with explicit `Broadcast` ops each
//!   iteration, mirroring the ABC-DIMM formulation.

use crate::graph::CsrGraph;
use crate::layout::{DataLayout, Region};
use crate::trace::{Op, ThreadTrace, Workload};
use crate::WorkloadParams;
use dl_engine::DetRng;

/// Bytes per vertex-state element.
const ELEM: u64 = 8;
/// Graph targets are u32.
const TGT: u64 = 4;

/// Per-thread graph partition context shared by the four kernels.
struct GraphCtx {
    graph: CsrGraph,
    /// Block start vertex per thread (len = threads + 1).
    block: Vec<u32>,
    /// owner[v] = thread owning vertex v.
    owner: Vec<u16>,
    layout: DataLayout,
    /// Per-thread region holding its vertices' 8-byte state.
    state: Vec<Region>,
    /// Per-thread region holding its CSR slice's target array.
    targets: Vec<Region>,
    /// Per-thread region holding its CSR slice's offsets array.
    offsets: Vec<Region>,
    /// Per-DIMM full-vector replica (broadcast variants).
    replica: Vec<Region>,
    home: Vec<usize>,
    threads: usize,
}

impl GraphCtx {
    fn new(params: &WorkloadParams, edge_factor: u32) -> Self {
        let threads = params.threads();
        let mut rng = DetRng::seed(params.seed).stream("graph");
        let graph =
            CsrGraph::rmat_with_locality(params.scale, edge_factor, params.locality, &mut rng);
        let n = graph.vertices();

        // Edge-balanced contiguous blocks.
        let total_edges = graph.edges();
        let per_thread = total_edges.div_ceil(threads as u64).max(1);
        let mut block = Vec::with_capacity(threads + 1);
        block.push(0u32);
        let mut acc = 0u64;
        let mut t = 0usize;
        for v in 0..n {
            acc += graph.degree(v);
            if acc >= per_thread * (t as u64 + 1) && t + 1 < threads {
                block.push(v + 1);
                t += 1;
            }
        }
        while block.len() < threads + 1 {
            block.push(n);
        }
        *block.last_mut().expect("non-empty") = n;

        let mut owner = vec![0u16; n as usize];
        for t in 0..threads {
            for v in block[t]..block[t + 1] {
                owner[v as usize] = t as u16;
            }
        }

        let home: Vec<usize> = (0..threads).map(|t| t / params.threads_per_dimm).collect();
        let mut layout = DataLayout::new(params.dimms);
        let mut state = Vec::with_capacity(threads);
        let mut targets = Vec::with_capacity(threads);
        let mut offsets = Vec::with_capacity(threads);
        for t in 0..threads {
            let verts = (block[t + 1] - block[t]) as u64;
            let edges = graph.row_start(block[t + 1]) - graph.row_start(block[t]);
            state.push(layout.alloc(home[t], (verts * ELEM).max(64)));
            targets.push(layout.alloc(home[t], (edges * TGT).max(64)));
            offsets.push(layout.alloc(home[t], ((verts + 1) * ELEM).max(64)));
        }
        let replica: Vec<Region> = (0..params.dimms)
            .map(|d| layout.alloc(d, (n as u64 * ELEM).max(64)))
            .collect();

        GraphCtx {
            graph,
            block,
            owner,
            layout,
            state,
            targets,
            offsets,
            replica,
            home,
            threads,
        }
    }

    #[inline]
    fn owner_of(&self, v: u32) -> usize {
        self.owner[v as usize] as usize
    }

    /// Line address of vertex `v`'s state element.
    #[inline]
    fn state_line(&self, v: u32) -> u64 {
        let t = self.owner_of(v);
        self.state[t].line_of((v - self.block[t]) as u64, ELEM)
    }

    /// Line address of `v`'s state in DIMM `d`'s replica.
    #[inline]
    fn replica_line(&self, d: usize, v: u32) -> u64 {
        self.replica[d].line_of(v as u64, ELEM)
    }

    /// Emits the CSR-walk loads for vertex `v` into `trace`: one offsets
    /// line plus the target-array lines covering its edges (all local,
    /// cacheable).
    fn emit_row_loads(&self, trace: &mut ThreadTrace, v: u32) {
        let t = self.owner_of(v);
        let local_v = (v - self.block[t]) as u64;
        trace.push(Op::Load {
            addr: self.offsets[t].line_of(local_v, ELEM),
            cacheable: true,
        });
        let deg = self.graph.degree(v);
        if deg == 0 {
            return;
        }
        let first = self.graph.row_start(v) - self.graph.row_start(self.block[t]);
        let first_line = first * TGT / 64;
        let last_line = (first + deg - 1) * TGT / 64;
        for line in first_line..=last_line {
            trace.push(Op::Load {
                addr: self.targets[t].base() + line * 64,
                cacheable: true,
            });
        }
    }

    /// Per-thread broadcast of this thread's state partition: emitted as a
    /// sequence of max-payload broadcasts covering the partition.
    fn emit_partition_broadcast(&self, trace: &mut ThreadTrace, t: usize) {
        let bytes = self.state[t].bytes();
        let mut off = 0u64;
        while off < bytes {
            let chunk = (bytes - off).min(256) as u32;
            trace.push(Op::Broadcast {
                addr: self.state[t].base() + off,
                bytes: chunk,
            });
            off += chunk as u64;
        }
    }

    fn into_workload(self, name: &str, traces: Vec<ThreadTrace>) -> Workload {
        Workload::new(name, traces, self.layout, self.home)
    }
}

/// Breadth-first search (level-synchronous, from the max-degree vertex).
///
/// `scale` = log2(vertices); edge factor 8.
pub fn bfs(params: &WorkloadParams) -> Workload {
    let ctx = GraphCtx::new(params, 8);
    let n = ctx.graph.vertices() as usize;
    let root = ctx.graph.max_degree_vertex();
    let mut traces = vec![ThreadTrace::new(); ctx.threads];

    let mut dist = vec![u32::MAX; n];
    dist[root as usize] = 0;
    let mut frontier = vec![root];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            let t = ctx.owner_of(v);
            let trace = &mut traces[t];
            trace.comp(4);
            ctx.emit_row_loads(trace, v);
            for (u, _) in ctx.graph.neighbors(v) {
                trace.comp(2);
                // dist[] is shared read-write: uncacheable, possibly remote.
                trace.push(Op::Load {
                    addr: ctx.state_line(u),
                    cacheable: false,
                });
                if dist[u as usize] == u32::MAX {
                    dist[u as usize] = dist[v as usize] + 1;
                    trace.push(Op::Store {
                        addr: ctx.state_line(u),
                        cacheable: false,
                    });
                    next.push(u);
                }
            }
        }
        for trace in &mut traces {
            trace.push(Op::Barrier);
        }
        frontier = next;
    }
    ctx.into_workload("BFS", traces)
}

/// PageRank: `iters` pull-style iterations over the reversed graph; each
/// edge reads the source vertex's rank (remote when cross-partition).
pub fn pagerank(params: &WorkloadParams) -> Workload {
    const ITERS: usize = 3;
    let ctx = GraphCtx::new(params, 8);
    let mut traces = vec![ThreadTrace::new(); ctx.threads];

    for _iter in 0..ITERS {
        if params.broadcast {
            // Refresh every DIMM's replica of the rank vector.
            for (t, trace) in traces.iter_mut().enumerate() {
                ctx.emit_partition_broadcast(trace, t);
            }
            for trace in &mut traces {
                trace.push(Op::Barrier);
            }
        }
        for (t, trace) in traces.iter_mut().enumerate() {
            let home = ctx.home[t];
            for v in ctx.block[t]..ctx.block[t + 1] {
                trace.comp(4);
                ctx.emit_row_loads(trace, v);
                for (u, _) in ctx.graph.neighbors(v) {
                    trace.comp(2);
                    if params.broadcast {
                        // Read the local replica (refreshed above).
                        trace.push(Op::Load {
                            addr: ctx.replica_line(home, u),
                            cacheable: true,
                        });
                    } else {
                        trace.push(Op::Load {
                            addr: ctx.state_line(u),
                            cacheable: false,
                        });
                    }
                }
                trace.comp(6);
                trace.push(Op::Store {
                    addr: ctx.state_line(v),
                    cacheable: false,
                });
            }
        }
        for trace in &mut traces {
            trace.push(Op::Barrier);
        }
    }
    let name = if params.broadcast { "PR-BC" } else { "PR" };
    ctx.into_workload(name, traces)
}

/// Single-source shortest path: Bellman-Ford rounds until no distance
/// changes (bounded), relaxing every owned edge per round.
pub fn sssp(params: &WorkloadParams) -> Workload {
    const MAX_ROUNDS: usize = 4;
    let ctx = GraphCtx::new(params, 8);
    let n = ctx.graph.vertices() as usize;
    let root = ctx.graph.max_degree_vertex();
    let mut traces = vec![ThreadTrace::new(); ctx.threads];

    let mut dist = vec![u64::MAX; n];
    dist[root as usize] = 0;
    for _round in 0..MAX_ROUNDS {
        if params.broadcast {
            for (t, trace) in traces.iter_mut().enumerate() {
                ctx.emit_partition_broadcast(trace, t);
            }
            for trace in &mut traces {
                trace.push(Op::Barrier);
            }
        }
        let mut changed = false;
        let snapshot = dist.clone();
        for (t, trace) in traces.iter_mut().enumerate() {
            let home = ctx.home[t];
            for v in ctx.block[t]..ctx.block[t + 1] {
                trace.comp(2);
                if snapshot[v as usize] == u64::MAX {
                    // Cheap local check of own distance.
                    trace.push(Op::Load {
                        addr: ctx.state_line(v),
                        cacheable: false,
                    });
                    continue;
                }
                ctx.emit_row_loads(trace, v);
                for (u, w) in ctx.graph.neighbors(v) {
                    trace.comp(2);
                    if params.broadcast {
                        trace.push(Op::Load {
                            addr: ctx.replica_line(home, u),
                            cacheable: true,
                        });
                    } else {
                        trace.push(Op::Load {
                            addr: ctx.state_line(u),
                            cacheable: false,
                        });
                    }
                    let cand = snapshot[v as usize] + w as u64;
                    if cand < dist[u as usize] {
                        dist[u as usize] = cand;
                        changed = true;
                        trace.push(Op::Store {
                            addr: ctx.state_line(u),
                            cacheable: false,
                        });
                    }
                }
            }
        }
        for trace in &mut traces {
            trace.push(Op::Barrier);
        }
        if !changed {
            break;
        }
    }
    let name = if params.broadcast { "SSSP-BC" } else { "SSSP" };
    ctx.into_workload(name, traces)
}

/// Sparse matrix × dense vector (one pass). The vector `x` is read-only
/// during the pass (cacheable); the broadcast variant replicates it first.
pub fn spmv(params: &WorkloadParams) -> Workload {
    let ctx = GraphCtx::new(params, 8);
    let mut traces = vec![ThreadTrace::new(); ctx.threads];

    if params.broadcast {
        for (t, trace) in traces.iter_mut().enumerate() {
            ctx.emit_partition_broadcast(trace, t);
        }
        for trace in &mut traces {
            trace.push(Op::Barrier);
        }
    }
    for (t, trace) in traces.iter_mut().enumerate() {
        let home = ctx.home[t];
        for v in ctx.block[t]..ctx.block[t + 1] {
            trace.comp(2);
            ctx.emit_row_loads(trace, v);
            for (u, _) in ctx.graph.neighbors(v) {
                trace.comp(2);
                if params.broadcast {
                    trace.push(Op::Load {
                        addr: ctx.replica_line(home, u),
                        cacheable: true,
                    });
                } else {
                    // x is read-only: cacheable even when remote.
                    trace.push(Op::Load {
                        addr: ctx.state_line(u),
                        cacheable: true,
                    });
                }
            }
            trace.comp(4);
            trace.push(Op::Store {
                addr: ctx.state_line(v),
                cacheable: false,
            });
        }
    }
    for trace in &mut traces {
        trace.push(Op::Barrier);
    }
    let name = if params.broadcast { "SPMV-BC" } else { "SPMV" };
    ctx.into_workload(name, traces)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams::small(4)
    }

    #[test]
    fn bfs_visits_most_of_the_graph() {
        let wl = bfs(&params());
        // BFS on a connected-ish R-MAT component generates edge work.
        assert!(wl.total_mem_ops() > 1_000);
        // dist accesses cross partitions.
        assert!(wl.remote_fraction() > 0.1, "rf = {}", wl.remote_fraction());
    }

    #[test]
    fn pagerank_has_three_iterations_of_barriers() {
        let wl = pagerank(&params());
        let barriers = wl.traces()[0]
            .ops()
            .iter()
            .filter(|o| matches!(o, Op::Barrier))
            .count();
        assert_eq!(barriers, 3);
    }

    #[test]
    fn broadcast_pr_replaces_remote_loads_with_local() {
        let mut p = params();
        let base = pagerank(&p);
        p.broadcast = true;
        let bc = pagerank(&p);
        assert!(
            bc.remote_fraction() < base.remote_fraction() / 2.0,
            "bc {} vs base {}",
            bc.remote_fraction(),
            base.remote_fraction()
        );
    }

    #[test]
    fn edge_balanced_blocks() {
        let ctx = GraphCtx::new(&params(), 8);
        let total = ctx.graph.edges();
        let per = total / ctx.threads as u64;
        for t in 0..ctx.threads {
            let edges: u64 = (ctx.block[t]..ctx.block[t + 1])
                .map(|v| ctx.graph.degree(v))
                .sum();
            assert!(
                edges < 3 * per.max(1),
                "thread {t} holds {edges} of {total} edges (target {per})"
            );
        }
    }

    #[test]
    fn state_lines_live_on_owner_home_dimm() {
        let ctx = GraphCtx::new(&params(), 8);
        for v in (0..ctx.graph.vertices()).step_by(97) {
            let t = ctx.owner_of(v);
            assert_eq!(ctx.layout.dimm_of(ctx.state_line(v)), ctx.home[t]);
        }
    }

    #[test]
    fn sssp_converges_and_emits_stores() {
        let wl = sssp(&params());
        let stores: usize = wl
            .traces()
            .iter()
            .flat_map(|t| t.ops())
            .filter(|o| matches!(o, Op::Store { .. }))
            .count();
        assert!(stores > 100, "SSSP relaxed only {stores} edges");
    }

    #[test]
    fn spmv_p2p_reads_are_cacheable() {
        let wl = spmv(&params());
        let uncached_loads = wl
            .traces()
            .iter()
            .flat_map(|t| t.ops())
            .filter(|o| {
                matches!(
                    o,
                    Op::Load {
                        cacheable: false,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(uncached_loads, 0, "x is read-only and must be cacheable");
    }
}
