//! Grid workloads: the Hotspot thermal stencil and Needleman-Wunsch
//! wavefront alignment (paper Table IV).

use crate::layout::{DataLayout, Region};
use crate::trace::{Op, ThreadTrace, Workload};
use crate::WorkloadParams;

/// Bytes per grid cell.
const ELEM: u64 = 8;
/// Cells per 64-byte line.
const PER_LINE: u64 = 64 / ELEM;

/// Hotspot: iterative 5-point stencil over a 2-D temperature grid.
///
/// The grid (side `2^(scale/2 + 2)`) is split into `T` horizontal strips;
/// each strip's temperature and power rows live on the owning thread's home
/// DIMM. Temperature is shared read-write (uncacheable: neighbouring strips
/// read each other's boundary rows every iteration — the IDC traffic), power
/// is read-only (cacheable). Four iterations with a barrier each.
pub fn hotspot(params: &WorkloadParams) -> Workload {
    const ITERS: usize = 4;
    let threads = params.threads();
    let side = 1u64 << (params.scale / 2 + 2);
    let rows_per_thread = (side / threads as u64).max(1);

    let home: Vec<usize> = (0..threads).map(|t| t / params.threads_per_dimm).collect();
    let mut layout = DataLayout::new(params.dimms);
    let temp: Vec<Region> = (0..threads)
        .map(|t| layout.alloc(home[t], rows_per_thread * side * ELEM))
        .collect();
    let power: Vec<Region> = (0..threads)
        .map(|t| layout.alloc(home[t], rows_per_thread * side * ELEM))
        .collect();

    // Line address of (row, col..col+7) in the global grid.
    let line_of = |row: u64, col: u64| -> u64 {
        let t = ((row / rows_per_thread) as usize).min(threads - 1);
        let local = row - t as u64 * rows_per_thread;
        temp[t].line_of(local * side + col, ELEM)
    };

    let mut traces = vec![ThreadTrace::new(); threads];
    for _iter in 0..ITERS {
        for (t, trace) in traces.iter_mut().enumerate() {
            let row0 = t as u64 * rows_per_thread;
            for r in row0..row0 + rows_per_thread {
                for cl in 0..side / PER_LINE {
                    let col = cl * PER_LINE;
                    // Centre line + vertical neighbours (shared rw).
                    trace.push(Op::Load {
                        addr: line_of(r, col),
                        cacheable: false,
                    });
                    if r > 0 {
                        trace.push(Op::Load {
                            addr: line_of(r - 1, col),
                            cacheable: false,
                        });
                    }
                    if r + 1 < side {
                        trace.push(Op::Load {
                            addr: line_of(r + 1, col),
                            cacheable: false,
                        });
                    }
                    // Power is read-only.
                    let local = r - row0;
                    trace.push(Op::Load {
                        addr: power[t].line_of(local * side + col, ELEM),
                        cacheable: true,
                    });
                    trace.comp(PER_LINE as u32 * 6);
                    trace.push(Op::Store {
                        addr: line_of(r, col),
                        cacheable: false,
                    });
                }
            }
            trace.push(Op::Barrier);
        }
    }
    Workload::new("HS", traces, layout, home)
}

/// Needleman-Wunsch: wavefront dynamic programming over an `S × S` score
/// matrix tiled into `T × T` blocks; thread `t` owns block-row `t`.
///
/// Each anti-diagonal of blocks is computed in parallel and separated by a
/// barrier. A block reads its **top** boundary row from the block above
/// (owned by the previous thread → inter-DIMM traffic when the threads'
/// home DIMMs differ) and its left boundary from its own previous block
/// (local).
pub fn needleman_wunsch(params: &WorkloadParams) -> Workload {
    let threads = params.threads();
    // The matrix side is scale-determined but never smaller than one line
    // of cells per block at 64 threads, so every supported thread count
    // tiles the same matrix (total work is thread-count-invariant).
    let side = (1u64 << (params.scale / 2 + 2)).max(PER_LINE * 64);
    let block = side / threads as u64;
    let nblocks = threads; // block-rows == threads; block-cols == threads

    let home: Vec<usize> = (0..threads).map(|t| t / params.threads_per_dimm).collect();
    let mut layout = DataLayout::new(params.dimms);
    // Each thread stores its block-row of the score matrix plus the input
    // sequence slice (read-only).
    let score: Vec<Region> = (0..threads)
        .map(|t| layout.alloc(home[t], block * side * ELEM))
        .collect();
    let seq: Vec<Region> = (0..threads)
        .map(|t| layout.alloc(home[t], (block * ELEM).max(64)))
        .collect();

    let score_line = |brow: usize, local_r: u64, col: u64| -> u64 {
        score[brow].line_of(local_r * side + col, ELEM)
    };

    let mut traces = vec![ThreadTrace::new(); threads];
    for diag in 0..(2 * nblocks - 1) {
        for brow in 0..nblocks {
            let t = brow;
            let trace = &mut traces[t];
            let bcol = diag as i64 - brow as i64;
            if bcol < 0 || bcol >= nblocks as i64 {
                continue;
            }
            let bcol = bcol as u64;
            let col0 = bcol * block;

            // Read the sequence slices (read-only, cacheable).
            trace.push(Op::Load {
                addr: seq[t].base(),
                cacheable: true,
            });

            // Top boundary row from the block above (remote when the
            // previous thread lives on another DIMM).
            if brow > 0 {
                for cl in 0..block / PER_LINE {
                    trace.push(Op::Load {
                        addr: score_line(brow - 1, block - 1, col0 + cl * PER_LINE),
                        cacheable: false,
                    });
                }
            }
            // Left boundary column from this thread's previous block
            // (local): one line per row.
            if bcol > 0 {
                for r in 0..block {
                    trace.push(Op::Load {
                        addr: score_line(brow, r, col0 - PER_LINE),
                        cacheable: false,
                    });
                }
            }
            // Interior: per line of cells, one read-modify-write pass.
            for r in 0..block {
                for cl in 0..block / PER_LINE {
                    let col = col0 + cl * PER_LINE;
                    trace.comp(PER_LINE as u32 * 6);
                    trace.push(Op::Load {
                        addr: score_line(brow, r, col),
                        cacheable: false,
                    });
                    trace.push(Op::Store {
                        addr: score_line(brow, r, col),
                        cacheable: false,
                    });
                }
            }
        }
        for trace in &mut traces {
            trace.push(Op::Barrier);
        }
    }
    Workload::new("NW", traces, layout, home)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotspot_boundary_rows_cross_dimms() {
        let wl = hotspot(&WorkloadParams::small(4));
        assert!(wl.remote_fraction() > 0.0);
        // Interior traffic dominates: remote share stays modest.
        assert!(wl.remote_fraction() < 0.3, "rf = {}", wl.remote_fraction());
    }

    #[test]
    fn hotspot_barriers_per_iteration() {
        let wl = hotspot(&WorkloadParams::small(2));
        for trace in wl.traces() {
            let n = trace
                .ops()
                .iter()
                .filter(|o| matches!(o, Op::Barrier))
                .count();
            assert_eq!(n, 4);
        }
    }

    #[test]
    fn nw_has_wavefront_barriers() {
        let params = WorkloadParams::small(2);
        let wl = needleman_wunsch(&params);
        let t = params.threads();
        for trace in wl.traces() {
            let n = trace
                .ops()
                .iter()
                .filter(|o| matches!(o, Op::Barrier))
                .count();
            assert_eq!(n, 2 * t - 1);
        }
    }

    #[test]
    fn nw_top_boundary_is_remote_for_cross_dimm_rows() {
        let params = WorkloadParams::small(4);
        let wl = needleman_wunsch(&params);
        // Thread 4 (first thread of DIMM 1) reads thread 3's rows (DIMM 0).
        let layout = wl.layout();
        let t4_home = wl.home_dimm()[4];
        let remote_loads = wl.traces()[4]
            .ops()
            .iter()
            .filter(|o| match o {
                Op::Load { addr, .. } => layout.dimm_of(*addr) != t4_home,
                _ => false,
            })
            .count();
        assert!(
            remote_loads > 0,
            "thread 4 should read DIMM 0's boundary rows"
        );
    }

    #[test]
    fn hotspot_power_reads_are_cacheable() {
        let wl = hotspot(&WorkloadParams::small(2));
        let cacheable = wl
            .traces()
            .iter()
            .flat_map(|t| t.ops())
            .filter(|o| {
                matches!(
                    o,
                    Op::Load {
                        cacheable: true,
                        ..
                    }
                )
            })
            .count();
        assert!(cacheable > 0);
    }
}
