//! CSR graphs and the R-MAT generator used as the LiveJournal substitute.

use dl_engine::DetRng;
use serde::{Deserialize, Serialize};

/// A directed graph in compressed-sparse-row form with edge weights.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    targets: Vec<u32>,
    weights: Vec<u32>,
}

impl CsrGraph {
    /// Builds a CSR graph from an edge list (deduplicated, self-loops
    /// dropped, sorted per row).
    pub fn from_edges(vertices: u32, mut edges: Vec<(u32, u32, u32)>) -> Self {
        edges.retain(|&(s, d, _)| s != d && s < vertices && d < vertices);
        edges.sort_unstable_by_key(|&(s, d, _)| (s, d));
        edges.dedup_by_key(|e| (e.0, e.1));
        let mut offsets = vec![0u64; vertices as usize + 1];
        for &(s, _, _) in &edges {
            offsets[s as usize + 1] += 1;
        }
        for i in 0..vertices as usize {
            offsets[i + 1] += offsets[i];
        }
        let targets = edges.iter().map(|e| e.1).collect();
        let weights = edges.iter().map(|e| e.2).collect();
        CsrGraph {
            offsets,
            targets,
            weights,
        }
    }

    /// Deterministic R-MAT (Kronecker) generator: `2^scale` vertices and
    /// `edge_factor * 2^scale` directed edges with the canonical
    /// (0.57, 0.19, 0.19, 0.05) partition probabilities — the same skewed,
    /// community-structured degree distribution as social graphs like the
    /// paper's LiveJournal input.
    pub fn rmat(scale: u32, edge_factor: u32, rng: &mut DetRng) -> Self {
        Self::rmat_with_locality(scale, edge_factor, 0.0, rng)
    }

    /// R-MAT with an explicit community-locality knob: with probability
    /// `locality`, an edge's destination is redrawn near its source
    /// (within a 1/64th-of-the-graph window), modelling the strong
    /// community structure a locality-preserving partition of a social
    /// graph exposes. NMP graph frameworks partition exactly to exploit
    /// this — it is what keeps the paper's inter-DIMM traffic a minority
    /// of accesses while still dominating stall time.
    ///
    /// # Panics
    /// Panics if `locality` is outside `[0, 1]`.
    pub fn rmat_with_locality(
        scale: u32,
        edge_factor: u32,
        locality: f64,
        rng: &mut DetRng,
    ) -> Self {
        assert!((0.0..=1.0).contains(&locality), "locality must be in [0,1]");
        let n = 1u32 << scale;
        let m = (n as u64 * edge_factor as u64) as usize;
        let window = (n as u64 / 64).max(2);
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let (mut s, mut d) = (0u32, 0u32);
            for _ in 0..scale {
                let r = rng.unit();
                let (sb, db) = if r < 0.57 {
                    (0, 0)
                } else if r < 0.76 {
                    (0, 1)
                } else if r < 0.95 {
                    (1, 0)
                } else {
                    (1, 1)
                };
                s = (s << 1) | sb;
                d = (d << 1) | db;
            }
            if locality > 0.0 && rng.chance(locality) {
                // Redraw the destination near the source.
                let lo = (s as u64).saturating_sub(window / 2);
                d = (lo + rng.below(window)).min(n as u64 - 1) as u32;
            }
            let w = 1 + rng.below(63) as u32;
            edges.push((s, d, w));
        }
        Self::from_edges(n, edges)
    }

    /// A uniform random graph (Erdős–Rényi-like) for tests.
    pub fn uniform(vertices: u32, edges: usize, rng: &mut DetRng) -> Self {
        let list = (0..edges)
            .map(|_| {
                (
                    rng.below(vertices as u64) as u32,
                    rng.below(vertices as u64) as u32,
                    1 + rng.below(63) as u32,
                )
            })
            .collect();
        Self::from_edges(vertices, list)
    }

    /// Number of vertices.
    pub fn vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    pub fn edges(&self) -> u64 {
        self.targets.len() as u64
    }

    /// Out-degree of `v`.
    pub fn degree(&self, v: u32) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Offset of `v`'s first edge in the target/weight arrays.
    pub fn row_start(&self, v: u32) -> u64 {
        self.offsets[v as usize]
    }

    /// Neighbors of `v` with weights.
    pub fn neighbors(&self, v: u32) -> impl Iterator<Item = (u32, u32)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.targets[lo..hi]
            .iter()
            .zip(&self.weights[lo..hi])
            .map(|(&t, &w)| (t, w))
    }

    /// The vertex with the largest out-degree (the canonical BFS/SSSP root
    /// for skewed graphs; deterministic).
    pub fn max_degree_vertex(&self) -> u32 {
        (0..self.vertices())
            .max_by_key(|&v| self.degree(v))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_from_edges_sorts_and_dedups() {
        let g = CsrGraph::from_edges(
            4,
            vec![
                (1, 0, 5),
                (0, 2, 1),
                (0, 1, 2),
                (0, 1, 9),
                (2, 2, 1),
                (3, 9, 1),
            ],
        );
        assert_eq!(g.vertices(), 4);
        assert_eq!(g.edges(), 3); // dup (0,1), self-loop (2,2), oob (3,9) dropped
        let n: Vec<(u32, u32)> = g.neighbors(0).collect();
        assert_eq!(n, vec![(1, 2), (2, 1)]);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn rmat_is_skewed_and_deterministic() {
        let mut r1 = DetRng::seed(7);
        let g1 = CsrGraph::rmat(10, 8, &mut r1);
        let mut r2 = DetRng::seed(7);
        let g2 = CsrGraph::rmat(10, 8, &mut r2);
        assert_eq!(g1, g2);
        assert_eq!(g1.vertices(), 1024);
        assert!(g1.edges() > 4000, "dedup removed too much: {}", g1.edges());

        // Degree skew: the max degree should far exceed the mean.
        let mean = g1.edges() as f64 / g1.vertices() as f64;
        let max = g1.degree(g1.max_degree_vertex()) as f64;
        assert!(max > 8.0 * mean, "max {max} vs mean {mean}: not skewed");
    }

    #[test]
    fn uniform_graph_has_requested_shape() {
        let mut rng = DetRng::seed(1);
        let g = CsrGraph::uniform(100, 500, &mut rng);
        assert_eq!(g.vertices(), 100);
        assert!(g.edges() <= 500 && g.edges() > 400);
    }

    #[test]
    fn row_start_is_monotone() {
        let mut rng = DetRng::seed(3);
        let g = CsrGraph::rmat(8, 4, &mut rng);
        let mut prev = 0;
        for v in 0..g.vertices() {
            let s = g.row_start(v);
            assert!(s >= prev);
            prev = s;
        }
        assert_eq!(g.row_start(0), 0);
    }
}
