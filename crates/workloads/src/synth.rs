//! Synthetic microbenchmarks backing Fig. 1, Table I, and Fig. 14-a.

use crate::layout::DataLayout;
use crate::trace::{Op, ThreadTrace, Workload};
use crate::WorkloadParams;
use dl_engine::DetRng;

/// The synchronization-interval sweep of Fig. 14-a: every thread repeats
/// `Comp(interval) → one local access → Barrier` for `rounds` rounds, so the
/// barrier cost dominates as `interval` shrinks.
pub fn sync_sweep(params: &WorkloadParams, interval_cycles: u32, rounds: usize) -> Workload {
    let threads = params.threads();
    let home: Vec<usize> = (0..threads).map(|t| t / params.threads_per_dimm).collect();
    let mut layout = DataLayout::new(params.dimms);
    let scratch: Vec<_> = (0..threads)
        .map(|t| layout.alloc(home[t], 64 * rounds as u64))
        .collect();

    let mut traces = vec![ThreadTrace::new(); threads];
    for (t, trace) in traces.iter_mut().enumerate() {
        for r in 0..rounds {
            trace.comp(interval_cycles);
            trace.push(Op::Load {
                addr: scratch[t].line_of(r as u64, 64),
                cacheable: true,
            });
            trace.push(Op::Barrier);
        }
    }
    Workload::new(format!("SYNC-{interval_cycles}"), traces, layout, home)
}

/// Bulk point-to-point copy (Fig. 1 / Table I): one thread per DIMM pair
/// streams `bytes` from the next DIMM into its own memory, line by line.
///
/// With `pairs = dimms / 2` disjoint (source, destination) pairs, the
/// aggregate measured bandwidth exposes each IDC mechanism's scaling:
/// CPU-forwarding serializes on the shared channels, a dedicated bus
/// serializes on the bus, DIMM-Link streams over disjoint links.
pub fn bulk_copy(params: &WorkloadParams, bytes: u64) -> Workload {
    assert!(params.dimms >= 2, "bulk copy needs at least two DIMMs");
    let threads = params.threads();
    let home: Vec<usize> = (0..threads).map(|t| t / params.threads_per_dimm).collect();
    let mut layout = DataLayout::new(params.dimms);
    let buffers: Vec<_> = (0..params.dimms)
        .map(|d| layout.alloc(d, bytes.max(64)))
        .collect();

    let lines = bytes.div_ceil(64);
    let mut traces = vec![ThreadTrace::new(); threads];
    // One active thread per even DIMM: DIMM d pulls from DIMM d+1.
    for d in (0..params.dimms - 1).step_by(2) {
        let t = d * params.threads_per_dimm; // first thread of the DIMM
        let trace = &mut traces[t];
        for l in 0..lines {
            trace.push(Op::Load {
                addr: buffers[d + 1].line_of(l, 64),
                cacheable: false,
            });
            trace.push(Op::Store {
                addr: buffers[d].line_of(l, 64),
                cacheable: false,
            });
        }
    }
    for trace in &mut traces {
        trace.push(Op::Barrier);
    }
    Workload::new(format!("COPY-{bytes}B"), traces, layout, home)
}

/// Uniform random access microbench: each thread issues `ops_per_thread`
/// uncacheable loads, a `remote_prob` fraction of them to a uniformly random
/// other DIMM. Used by unit/integration tests and the Table I measurement.
pub fn uniform_random(
    params: &WorkloadParams,
    ops_per_thread: usize,
    remote_prob: f64,
) -> Workload {
    let threads = params.threads();
    let home: Vec<usize> = (0..threads).map(|t| t / params.threads_per_dimm).collect();
    let mut layout = DataLayout::new(params.dimms);
    let buf_lines = 4096u64;
    let buffers: Vec<_> = (0..params.dimms)
        .map(|d| layout.alloc(d, buf_lines * 64))
        .collect();

    let mut rng = DetRng::seed(params.seed).stream("uniform");
    let mut traces = vec![ThreadTrace::new(); threads];
    for (t, trace) in traces.iter_mut().enumerate() {
        for _ in 0..ops_per_thread {
            let target = if params.dimms > 1 && rng.chance(remote_prob) {
                let mut d = rng.below(params.dimms as u64) as usize;
                if d == home[t] {
                    d = (d + 1) % params.dimms;
                }
                d
            } else {
                home[t]
            };
            let line = rng.below(buf_lines);
            trace.push(Op::Load {
                addr: buffers[target].line_of(line, 64),
                cacheable: false,
            });
            trace.comp(2);
        }
        trace.push(Op::Barrier);
    }
    Workload::new("UNIFORM", traces, layout, home)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_sweep_shape() {
        let wl = sync_sweep(&WorkloadParams::small(2), 500, 10);
        for trace in wl.traces() {
            let barriers = trace
                .ops()
                .iter()
                .filter(|o| matches!(o, Op::Barrier))
                .count();
            assert_eq!(barriers, 10);
            let comp: u64 = trace
                .ops()
                .iter()
                .map(|o| if let Op::Comp(c) = o { *c as u64 } else { 0 })
                .sum();
            assert_eq!(comp, 5000);
        }
    }

    #[test]
    fn bulk_copy_pairs_disjoint_dimms() {
        let params = WorkloadParams::small(4);
        let wl = bulk_copy(&params, 64 * 100);
        let layout = wl.layout();
        // Active threads: 0 (DIMM0 <- DIMM1) and 8 (DIMM2 <- DIMM3).
        let active: Vec<usize> = wl
            .traces()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.len() > 1)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(active, vec![0, 2 * params.threads_per_dimm]);
        for &t in &active {
            let h = wl.home_dimm()[t];
            for op in wl.traces()[t].ops() {
                if let Op::Load { addr, .. } = op {
                    assert_eq!(
                        layout.dimm_of(*addr),
                        h + 1,
                        "loads pull from the next DIMM"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_random_controls_remote_fraction() {
        let p = WorkloadParams::small(4);
        let local = uniform_random(&p, 500, 0.0);
        let heavy = uniform_random(&p, 500, 1.0);
        assert_eq!(local.remote_fraction(), 0.0);
        assert_eq!(heavy.remote_fraction(), 1.0);
        let half = uniform_random(&p, 2000, 0.5);
        assert!((half.remote_fraction() - 0.5).abs() < 0.05);
    }
}
