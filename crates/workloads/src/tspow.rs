//! TS.Pow — the SynCron time-series task used by the paper's
//! synchronization sensitivity study (Fig. 14-b).
//!
//! Matrix-profile-style computation: each thread slides a window over its
//! segment of the series, computes a distance profile (compute-heavy), and
//! frequently updates a *global* minimum behind a lock — the fine-grained
//! synchronization that makes the task stress the IDC mechanism.

use crate::layout::DataLayout;
use crate::trace::{Op, ThreadTrace, Workload};
use crate::WorkloadParams;
use dl_engine::DetRng;

/// Data lines per window.
const WINDOW_LINES: u64 = 4;

/// Builds TS.Pow. `scale` sets the *total* window count (`2^(scale + 4)`),
/// split evenly over the threads so total work is thread-count-invariant.
pub fn ts_pow(params: &WorkloadParams) -> Workload {
    let threads = params.threads();
    let windows = ((1u64 << (params.scale + 4)) / threads as u64).max(16);
    let mut rng = DetRng::seed(params.seed).stream("tspow");

    let home: Vec<usize> = (0..threads).map(|t| t / params.threads_per_dimm).collect();
    let mut layout = DataLayout::new(params.dimms);
    let series: Vec<_> = (0..threads)
        .map(|t| layout.alloc(home[t], (windows + WINDOW_LINES) * 64))
        .collect();
    // The lock and global minimum live on DIMM 0 (the master).
    let lock = layout.alloc(0, 64);
    let global_min = layout.alloc(0, 64);

    let mut traces = vec![ThreadTrace::new(); threads];
    // Simulate the actual running minimum so update frequency decays the
    // way it does in the real algorithm (early windows update often).
    let mut current_min = f64::INFINITY;
    let mut per_thread_dist: Vec<Vec<f64>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        per_thread_dist.push((0..windows).map(|_| rng.unit()).collect());
    }

    for (t, trace) in traces.iter_mut().enumerate() {
        for w in 0..windows {
            // Stream the window data (thread-private, cacheable).
            for l in 0..WINDOW_LINES {
                trace.push(Op::Load {
                    addr: series[t].line_of(w + l, 64),
                    cacheable: true,
                });
            }
            trace.comp(WINDOW_LINES as u32 * 16);

            let d = per_thread_dist[t][w as usize];
            if d < current_min {
                current_min = d;
                // Lock, read-check-update, unlock: two atomics plus an
                // uncacheable read-modify-write of the shared minimum.
                trace.push(Op::Atomic { addr: lock.base() });
                trace.push(Op::Load {
                    addr: global_min.base(),
                    cacheable: false,
                });
                trace.comp(8);
                trace.push(Op::Store {
                    addr: global_min.base(),
                    cacheable: false,
                });
                trace.push(Op::Atomic { addr: lock.base() });
            }
        }
        trace.push(Op::Barrier);
    }
    Workload::new("TS.Pow", traces, layout, home)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_traffic_targets_master_dimm() {
        let params = WorkloadParams::small(4);
        let wl = ts_pow(&params);
        let layout = wl.layout();
        for trace in wl.traces() {
            for op in trace.ops() {
                if let Op::Atomic { addr } = op {
                    assert_eq!(layout.dimm_of(*addr), 0);
                }
            }
        }
    }

    #[test]
    fn updates_decay_over_time() {
        let wl = ts_pow(&WorkloadParams::small(2));
        // Thread 0 sees a fresh minimum often; later threads rarely beat it.
        let atomics = |t: usize| {
            wl.traces()[t]
                .ops()
                .iter()
                .filter(|o| matches!(o, Op::Atomic { .. }))
                .count()
        };
        assert!(atomics(0) > atomics(wl.traces().len() - 1));
        assert!(atomics(0) >= 2, "lock/unlock pairs expected");
    }

    #[test]
    fn one_final_barrier_per_thread() {
        let wl = ts_pow(&WorkloadParams::small(2));
        for trace in wl.traces() {
            let n = trace
                .ops()
                .iter()
                .filter(|o| matches!(o, Op::Barrier))
                .count();
            assert_eq!(n, 1);
        }
    }
}
