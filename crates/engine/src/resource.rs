//! Contended, utilization-tracked resources.
//!
//! Memory channels, the AIM dedicated bus, and DIMM-Link SerDes links are all
//! modelled as shared resources: a transfer occupies the resource for a
//! duration; overlapping transfers queue. The resource additionally
//! integrates its busy time, which is how the paper's "memory bus
//! occupation" metric (Fig. 15-b) is measured.
//!
//! Scheduling is **work-conserving** (gap-filling): a reservation starts at
//! the earliest instant at or after its request time with enough idle
//! capacity. This matters because multi-stage transactions (read a channel,
//! cross the host, write another channel) reserve later stages at future
//! times; a naive single-cursor FIFO would permanently waste the idle gap in
//! front of every future reservation, silently serializing pipelined
//! traffic.

use crate::time::Ps;
use std::collections::VecDeque;

/// Reservations older than this (relative to the newest request time) are
/// pruned; requests are assumed never to arrive more than this far in the
/// past (event-driven callers are near-time-ordered).
const RETENTION: Ps = Ps::from_us(50);

/// A shared, capacity-1 resource (bus, link, port) with gap-filling
/// reservation.
///
/// # Examples
///
/// ```
/// use dl_engine::{Resource, Ps};
///
/// let mut bus = Resource::new("memory-bus");
/// let first = bus.reserve(Ps::from_ns(0), Ps::from_ns(10));
/// assert_eq!(first, Ps::from_ns(10));
/// // A transfer requested at t=5 queues behind the first one.
/// let second = bus.reserve(Ps::from_ns(5), Ps::from_ns(10));
/// assert_eq!(second, Ps::from_ns(20));
/// assert_eq!(bus.busy_time(), Ps::from_ns(20));
/// // A reservation far in the future leaves the gap usable:
/// bus.reserve(Ps::from_us(1), Ps::from_ns(10));
/// let gap_fill = bus.reserve(Ps::from_ns(20), Ps::from_ns(10));
/// assert_eq!(gap_fill, Ps::from_ns(30));
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    name: String,
    /// Sorted, disjoint busy intervals `[start, end)`.
    intervals: VecDeque<(Ps, Ps)>,
    /// Largest request time seen (drives pruning).
    high_water: Ps,
    /// End of the latest busy interval ever pruned: the schedule before
    /// this instant is forgotten, including its idle gaps.
    pruned_until: Ps,
    busy: Ps,
    reservations: u64,
    /// Reservations requested before [`Resource::pruned_until`]. The idle
    /// gaps such a request could have filled are already discarded, so it
    /// is scheduled pessimistically (possibly later than a perfect
    /// schedule would allow). Always zero in a well-behaved simulation.
    out_of_window: u64,
}

impl Resource {
    /// Creates an idle resource with a diagnostic `name`.
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            intervals: VecDeque::new(),
            high_water: Ps::ZERO,
            pruned_until: Ps::ZERO,
            busy: Ps::ZERO,
            reservations: 0,
            out_of_window: 0,
        }
    }

    /// Reserves the resource for `dur`, starting at the earliest idle gap at
    /// or after `now`. Returns the completion time.
    pub fn reserve(&mut self, now: Ps, dur: Ps) -> Ps {
        self.reserve_with_start(now, dur).1
    }

    /// Like [`Resource::reserve`] but also returns the start time, which is
    /// useful when the caller needs the queueing delay separately.
    pub fn reserve_with_start(&mut self, now: Ps, dur: Ps) -> (Ps, Ps) {
        self.busy += dur;
        self.reservations += 1;
        self.high_water = self.high_water.max(now);
        self.prune();
        self.check_window(now);
        if dur == Ps::ZERO {
            return (now, now);
        }
        // Find the first gap of length >= dur starting at or after `now`.
        let mut start = now;
        for &(s, e) in self.intervals.iter() {
            if e <= start {
                continue;
            }
            if s >= start + dur {
                break;
            }
            start = e;
        }
        let end = start + dur;
        self.insert_interval(start, end);
        (start, end)
    }

    /// Like [`reserve_with_start`](Resource::reserve_with_start), but the
    /// occupancy may **split across idle gaps** instead of requiring one
    /// contiguous slot: the work starts in the earliest idle instant at or
    /// after `now` and fills forward, skipping already-reserved intervals,
    /// until `dur` of idle time is consumed.
    ///
    /// Returns `(start_of_first_segment, end_of_last_segment)`.
    ///
    /// This models resources that time-multiplex at fine granularity
    /// (flit-interleaved links with virtual-channel buffers): a short
    /// transfer requested early is not forced to queue behind a long
    /// reservation whose traffic arrives later, which is exactly how a
    /// contiguous-slot model diverges from cycle-accurate wormhole routing
    /// under contention.
    pub fn reserve_split_with_start(&mut self, now: Ps, dur: Ps) -> (Ps, Ps) {
        self.busy += dur;
        self.reservations += 1;
        self.high_water = self.high_water.max(now);
        self.prune();
        self.check_window(now);
        if dur == Ps::ZERO {
            return (now, now);
        }
        let mut remaining = dur;
        let mut cursor = now;
        let mut first_start: Option<Ps> = None;
        let mut segments: Vec<(Ps, Ps)> = Vec::new();
        let mut idx = 0;
        while remaining > Ps::ZERO {
            // Skip busy intervals entirely behind the cursor.
            while idx < self.intervals.len() && self.intervals[idx].1 <= cursor {
                idx += 1;
            }
            if idx < self.intervals.len() && self.intervals[idx].0 <= cursor {
                // Cursor sits inside a busy interval: hop over it.
                cursor = self.intervals[idx].1;
                idx += 1;
                continue;
            }
            let gap_end = if idx < self.intervals.len() {
                self.intervals[idx].0
            } else {
                Ps::MAX
            };
            let take = remaining.min(gap_end.saturating_sub(cursor));
            segments.push((cursor, cursor + take));
            first_start.get_or_insert(cursor);
            remaining = remaining.saturating_sub(take);
            cursor = gap_end;
        }
        let end = segments.last().expect("dur > 0 yields a segment").1;
        for (s, e) in segments {
            self.insert_interval(s, e);
        }
        (first_start.unwrap_or(now), end)
    }

    /// Inserts busy interval `[start, end)`, merging with neighbours.
    ///
    /// Under `feature = "audit"`, panics if the interval strictly overlaps
    /// an existing reservation: this is a capacity-1 resource, so both
    /// reservation paths place work in idle gaps only, and an overlap means
    /// the schedule was double-booked.
    fn insert_interval(&mut self, start: Ps, end: Ps) {
        #[cfg(feature = "audit")]
        for &(s, e) in self.intervals.iter() {
            assert!(
                e <= start || end <= s,
                "resource '{}': reservation [{start}, {end}) overlaps busy [{s}, {e}) — \
                 capacity-1 schedule double-booked",
                self.name
            );
        }
        let mut pos = self.intervals.partition_point(|&(s, _)| s < start);
        // Walk back over intervals that touch `start`.
        while pos > 0 && self.intervals[pos - 1].1 >= start {
            pos -= 1;
        }
        let mut new_s = start;
        let mut new_e = end;
        while pos < self.intervals.len() && self.intervals[pos].0 <= new_e {
            let (s, e) = self.intervals[pos];
            if e < new_s {
                pos += 1;
                continue;
            }
            new_s = new_s.min(s);
            new_e = new_e.max(e);
            self.intervals.remove(pos);
        }
        self.intervals.insert(pos, (new_s, new_e));
    }

    fn prune(&mut self) {
        let watermark = self.high_water.saturating_sub(RETENTION);
        while let Some(&(_, e)) = self.intervals.front() {
            if e < watermark && self.intervals.len() > 1 {
                self.intervals.pop_front();
                self.pruned_until = self.pruned_until.max(e);
            } else {
                break;
            }
        }
    }

    /// Contract check: a request predating the pruned schedule horizon may
    /// have lost the idle gap it would have filled — the reservation is
    /// still scheduled, but possibly later than the true gap-filling
    /// schedule. Catch that loudly instead of silently.
    fn check_window(&mut self, now: Ps) {
        if now < self.pruned_until {
            self.out_of_window += 1;
            // The audit build makes this a hard error even with
            // debug_assertions off; otherwise debug builds assert and
            // release builds count (telemetry for long sweeps).
            #[cfg(feature = "audit")]
            panic!(
                "resource '{}': reservation requested at {now} predates the \
                 pruned schedule horizon {} — idle gaps it could have filled \
                 were already discarded, so it may be mis-scheduled",
                self.name, self.pruned_until
            );
            #[cfg(not(feature = "audit"))]
            debug_assert!(
                false,
                "resource '{}': reservation requested at {now} predates the \
                 pruned schedule horizon {} — idle gaps it could have filled \
                 were already discarded, so it may be mis-scheduled",
                self.name, self.pruned_until
            );
        }
    }

    /// The end of the last scheduled reservation (the time after which the
    /// resource is certainly idle).
    pub fn free_at(&self) -> Ps {
        self.intervals.back().map_or(Ps::ZERO, |&(_, e)| e)
    }

    /// Whether the resource has no reservation at or after `now`.
    pub fn is_free(&self, now: Ps) -> bool {
        self.free_at() <= now
    }

    /// Total time the resource has been occupied.
    pub fn busy_time(&self) -> Ps {
        self.busy
    }

    /// Number of reservations made so far.
    pub fn reservations(&self) -> u64 {
        self.reservations
    }

    /// Reservations requested before the pruned schedule horizon (intervals
    /// older than [`RETENTION`] relative to the high-water mark are
    /// discarded together with the idle gaps around them). Non-zero means
    /// some reservations may have been scheduled later than a perfect
    /// gap-filling schedule would allow; debug builds additionally
    /// `debug_assert!` on the first offence.
    pub fn out_of_window(&self) -> u64 {
        self.out_of_window
    }

    /// Fraction of `[0, total]` this resource was occupied.
    ///
    /// Returns 0 for a zero-length window.
    pub fn utilization(&self, total: Ps) -> f64 {
        if total == Ps::ZERO {
            0.0
        } else {
            self.busy.as_ps() as f64 / total.as_ps() as f64
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Counts `dur` of occupancy without scheduling it: used for work that
    /// provably happened during past idle time (e.g. backlogged polling
    /// periods) and therefore must contribute to utilization statistics but
    /// must not delay future reservations.
    pub fn account_busy(&mut self, dur: Ps) {
        self.busy += dur;
        self.reservations += 1;
    }

    /// Resets occupancy accounting (used between profiling and measured runs).
    pub fn reset_accounting(&mut self) {
        self.busy = Ps::ZERO;
        self.reservations = 0;
    }
}

/// A [`Resource`] with an associated bandwidth, reserving by transfer size.
///
/// # Examples
///
/// ```
/// use dl_engine::{BandwidthResource, Ps};
///
/// // A 25 GB/s DIMM-Link lane: 256 bytes take ~10.24 ns to serialize.
/// let mut link = BandwidthResource::new("dl-lane", 25_000_000_000);
/// let done = link.transfer(Ps::ZERO, 256);
/// assert_eq!(done, Ps::from_ps(10_240));
/// ```
#[derive(Debug, Clone)]
pub struct BandwidthResource {
    inner: Resource,
    bytes_per_sec: u64,
    bytes_moved: u64,
}

impl BandwidthResource {
    /// Creates a resource moving `bytes_per_sec` bytes per second.
    ///
    /// # Panics
    /// Panics if `bytes_per_sec` is zero.
    pub fn new(name: impl Into<String>, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be non-zero");
        BandwidthResource {
            inner: Resource::new(name),
            bytes_per_sec,
            bytes_moved: 0,
        }
    }

    /// Duration needed to move `bytes` at this resource's bandwidth
    /// (rounded up to a whole picosecond, minimum 1 ps for non-empty
    /// transfers).
    pub fn duration_of(&self, bytes: u64) -> Ps {
        if bytes == 0 {
            return Ps::ZERO;
        }
        let ps = (bytes as u128 * 1_000_000_000_000u128).div_ceil(self.bytes_per_sec as u128);
        Ps::from_ps(ps as u64)
    }

    /// Reserves the resource to move `bytes` starting no earlier than `now`;
    /// returns the completion time.
    pub fn transfer(&mut self, now: Ps, bytes: u64) -> Ps {
        self.bytes_moved += bytes;
        let dur = self.duration_of(bytes);
        self.inner.reserve(now, dur)
    }

    /// Reserves for `bytes` and returns `(start, end)`.
    pub fn transfer_with_start(&mut self, now: Ps, bytes: u64) -> (Ps, Ps) {
        self.bytes_moved += bytes;
        let dur = self.duration_of(bytes);
        self.inner.reserve_with_start(now, dur)
    }

    /// Reserves for `bytes`, allowing the occupancy to split across idle
    /// gaps (see [`Resource::reserve_split_with_start`]); returns
    /// `(start_of_first_segment, end_of_last_segment)`.
    pub fn transfer_split_with_start(&mut self, now: Ps, bytes: u64) -> (Ps, Ps) {
        self.bytes_moved += bytes;
        let dur = self.duration_of(bytes);
        self.inner.reserve_split_with_start(now, dur)
    }

    /// Occupies the resource for a fixed duration unrelated to bandwidth
    /// (e.g. a polling register read on a memory channel).
    pub fn occupy(&mut self, now: Ps, dur: Ps) -> Ps {
        self.inner.reserve(now, dur)
    }

    /// See [`Resource::account_busy`].
    pub fn account_busy(&mut self, dur: Ps) {
        self.inner.account_busy(dur);
    }

    /// Whether the resource is idle at `now`.
    pub fn is_free(&self, now: Ps) -> bool {
        self.inner.is_free(now)
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Configured bandwidth in bytes per second.
    pub fn bytes_per_sec(&self) -> u64 {
        self.bytes_per_sec
    }

    /// The earliest time a new reservation could start.
    pub fn free_at(&self) -> Ps {
        self.inner.free_at()
    }

    /// Total time occupied.
    pub fn busy_time(&self) -> Ps {
        self.inner.busy_time()
    }

    /// Fraction of `[0, total]` occupied.
    pub fn utilization(&self, total: Ps) -> f64 {
        self.inner.utilization(total)
    }

    /// Number of reservations made so far.
    pub fn reservations(&self) -> u64 {
        self.inner.reservations()
    }

    /// See [`Resource::out_of_window`].
    pub fn out_of_window(&self) -> u64 {
        self.inner.out_of_window()
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// Resets occupancy accounting (used between profiling and measured runs).
    pub fn reset_accounting(&mut self) {
        self.inner.reset_accounting();
        self.bytes_moved = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_serialization() {
        let mut r = Resource::new("r");
        assert_eq!(r.reserve(Ps::from_ns(0), Ps::from_ns(4)), Ps::from_ns(4));
        assert_eq!(r.reserve(Ps::from_ns(1), Ps::from_ns(4)), Ps::from_ns(8));
        // A late request starts immediately once the resource is free.
        assert_eq!(
            r.reserve(Ps::from_ns(100), Ps::from_ns(1)),
            Ps::from_ns(101)
        );
        assert_eq!(r.reservations(), 3);
    }

    #[test]
    fn utilization_integrates_busy_time() {
        let mut r = Resource::new("r");
        r.reserve(Ps::ZERO, Ps::from_ns(25));
        assert!((r.utilization(Ps::from_ns(100)) - 0.25).abs() < 1e-12);
        assert_eq!(r.utilization(Ps::ZERO), 0.0);
    }

    #[test]
    fn reserve_with_start_reports_queueing() {
        let mut r = Resource::new("r");
        r.reserve(Ps::ZERO, Ps::from_ns(10));
        let (start, end) = r.reserve_with_start(Ps::from_ns(2), Ps::from_ns(5));
        assert_eq!(start, Ps::from_ns(10));
        assert_eq!(end, Ps::from_ns(15));
    }

    #[test]
    fn bandwidth_duration_rounds_up() {
        let link = BandwidthResource::new("l", 1_000_000_000_000); // 1 byte/ps
        assert_eq!(link.duration_of(0), Ps::ZERO);
        assert_eq!(link.duration_of(7), Ps::from_ps(7));
        let slow = BandwidthResource::new("s", 3); // 3 bytes/sec
                                                   // 1 byte at 3 B/s = 333.33... ms, rounded up.
        assert_eq!(slow.duration_of(1), Ps::from_ps(333_333_333_334));
    }

    #[test]
    fn transfers_queue_and_count_bytes() {
        let mut link = BandwidthResource::new("l", 1_000_000_000_000);
        let a = link.transfer(Ps::ZERO, 100);
        let b = link.transfer(Ps::ZERO, 100);
        assert_eq!(a, Ps::from_ps(100));
        assert_eq!(b, Ps::from_ps(200));
        assert_eq!(link.bytes_moved(), 200);
    }

    #[test]
    fn reset_accounting_clears_counters_not_schedule() {
        let mut r = Resource::new("r");
        r.reserve(Ps::ZERO, Ps::from_ns(10));
        r.reset_accounting();
        assert_eq!(r.busy_time(), Ps::ZERO);
        assert_eq!(r.reservations(), 0);
        // The schedule (free_at) is preserved: the bus is still busy.
        assert_eq!(r.free_at(), Ps::from_ns(10));
    }

    #[test]
    fn gap_filling_backfills_idle_time() {
        let mut r = Resource::new("r");
        // A future reservation leaves the earlier gap usable.
        assert_eq!(
            r.reserve(Ps::from_ns(1000), Ps::from_ns(10)),
            Ps::from_ns(1010)
        );
        assert_eq!(r.reserve(Ps::from_ns(0), Ps::from_ns(10)), Ps::from_ns(10));
        // A gap too small is skipped.
        let end = r.reserve(Ps::from_ns(995), Ps::from_ns(10));
        assert_eq!(end, Ps::from_ns(1020));
        assert_eq!(r.busy_time(), Ps::from_ns(30));
    }

    #[test]
    fn pipelined_stages_do_not_serialize() {
        // The regression behind this design: stage-2 reservations at
        // now+offset must not consume the idle time before them.
        let mut r = Resource::new("cpu");
        let mut last = Ps::ZERO;
        for i in 0..100u64 {
            let stage2_at = Ps::from_ns(10 * i + 150);
            last = r.reserve(stage2_at, Ps::from_ns(5));
        }
        // 100 x 5 ns of work arriving every 10 ns: finishes ~ last arrival,
        // not 100 x 150 ns.
        assert!(
            last < Ps::from_ns(10 * 100 + 150 + 20),
            "serialized: {last}"
        );
    }

    #[test]
    fn account_busy_counts_without_scheduling() {
        let mut r = Resource::new("r");
        r.account_busy(Ps::from_ns(100));
        assert_eq!(r.busy_time(), Ps::from_ns(100));
        assert_eq!(r.free_at(), Ps::ZERO);
        assert_eq!(r.reserve(Ps::ZERO, Ps::from_ns(5)), Ps::from_ns(5));
    }

    #[test]
    fn adjacent_reservations_merge() {
        let mut r = Resource::new("r");
        for i in 0..1000u64 {
            r.reserve(Ps::from_ns(i), Ps::from_ns(1));
        }
        assert_eq!(r.free_at(), Ps::from_ns(1000));
        assert_eq!(r.busy_time(), Ps::from_ns(1000));
    }

    #[test]
    fn requests_inside_retention_window_are_in_contract() {
        // The documented contract: a request exactly RETENTION behind the
        // high-water mark is still in-window and schedules normally.
        let mut r = Resource::new("r");
        let far = Ps::from_us(200);
        r.reserve(far, Ps::from_ns(10));
        let edge = far.saturating_sub(RETENTION);
        let end = r.reserve(edge, Ps::from_ns(10));
        assert_eq!(end, edge + Ps::from_ns(10), "in-window gap fill");
        assert_eq!(r.out_of_window(), 0);
    }

    #[test]
    fn late_requests_without_pruning_are_in_contract() {
        // Regression: a request far behind the high-water mark is fine as
        // long as nothing has been pruned — the full schedule (and its
        // gaps) is still known. The AIM dedicated bus hits this: one long
        // transfer pushes the high-water mark out, and the next request
        // still arrives at t=0.
        let mut r = Resource::new("aim-bus");
        r.reserve(Ps::ZERO, Ps::from_us(120));
        let end = r.reserve(Ps::ZERO, Ps::from_ns(10));
        assert_eq!(end, Ps::from_us(120) + Ps::from_ns(10));
        assert_eq!(r.out_of_window(), 0);
    }

    // Requests predating the pruned schedule horizon violate the contract:
    // the gap they would fill is already discarded. Debug builds assert;
    // release builds count (telemetry for long sweeps).
    fn prune_then_request_before_horizon(r: &mut Resource) {
        r.reserve(Ps::ZERO, Ps::from_ns(10));
        r.reserve(Ps::from_us(200), Ps::from_ns(10));
        // This call's prune discards [0, 10 ns) — then the request at 5 ns
        // lands before the pruned horizon.
        let _ = r.reserve(Ps::from_ns(5), Ps::from_ns(10));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "pruned schedule horizon")]
    fn out_of_window_request_asserts_in_debug() {
        let mut r = Resource::new("r");
        prune_then_request_before_horizon(&mut r);
    }

    #[test]
    #[cfg(all(not(debug_assertions), not(feature = "audit")))]
    fn out_of_window_request_is_counted_in_release() {
        let mut r = Resource::new("r");
        prune_then_request_before_horizon(&mut r);
        assert_eq!(r.out_of_window(), 1);
    }

    #[test]
    #[cfg(feature = "audit")]
    #[should_panic(expected = "pruned schedule horizon")]
    fn audit_makes_out_of_window_a_hard_error() {
        // Unlike the plain build (debug_assert), the audit build panics
        // even with debug_assertions off.
        let mut r = Resource::new("r");
        prune_then_request_before_horizon(&mut r);
    }

    #[test]
    #[cfg(feature = "audit")]
    #[should_panic(expected = "double-booked")]
    fn audit_catches_double_booking() {
        // No public path double-books (both reservation paths fill idle
        // gaps only) — drive the internal insert directly to prove the
        // auditor would catch a future scheduling bug.
        let mut r = Resource::new("r");
        r.insert_interval(Ps::from_ns(0), Ps::from_ns(10));
        r.insert_interval(Ps::from_ns(5), Ps::from_ns(7));
    }

    #[test]
    fn heavy_mixed_usage_stays_overlap_free() {
        // Exercised under the audit feature in CI: contiguous, split, and
        // gap-filling reservations interleaved must never double-book.
        let mut r = Resource::new("r");
        for i in 0..200u64 {
            r.reserve(Ps::from_ns(7 * i), Ps::from_ns(3));
            r.reserve_split_with_start(Ps::from_ns(5 * i), Ps::from_ns(2));
            r.reserve_with_start(Ps::from_ns(11 * i + 1), Ps::from_ns(1));
        }
        assert!(r.busy_time() > Ps::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bandwidth_panics() {
        let _ = BandwidthResource::new("z", 0);
    }

    #[test]
    fn split_reservation_matches_contiguous_when_uncontended() {
        let mut a = Resource::new("a");
        let mut b = Resource::new("b");
        let plain = a.reserve_with_start(Ps::from_ns(3), Ps::from_ns(10));
        let split = b.reserve_split_with_start(Ps::from_ns(3), Ps::from_ns(10));
        assert_eq!(plain, split);
        assert_eq!(a.busy_time(), b.busy_time());
    }

    #[test]
    fn split_reservation_uses_gap_too_small_for_contiguous() {
        // A 10 ns transfer requested at t=0 against a busy window [6, 20):
        // contiguous scheduling must wait until 20; split scheduling starts
        // at 0, runs 6 ns, and finishes the remaining 4 ns after 20.
        let mut r = Resource::new("r");
        r.reserve(Ps::from_ns(6), Ps::from_ns(14));
        let (start, end) = r.reserve_split_with_start(Ps::ZERO, Ps::from_ns(10));
        assert_eq!(start, Ps::ZERO);
        assert_eq!(end, Ps::from_ns(24));
        // Occupancy is conserved: [0, 24) is now fully busy.
        assert_eq!(r.free_at(), Ps::from_ns(24));
        assert_eq!(r.busy_time(), Ps::from_ns(24));
    }

    #[test]
    fn split_reservation_spans_multiple_gaps() {
        let mut r = Resource::new("r");
        r.reserve(Ps::from_ns(2), Ps::from_ns(2)); // busy [2, 4)
        r.reserve(Ps::from_ns(6), Ps::from_ns(2)); // busy [6, 8)
                                                   // 7 ns of work from t=0: gaps [0,2) + [4,6) + [8, 11).
        let (start, end) = r.reserve_split_with_start(Ps::ZERO, Ps::from_ns(7));
        assert_eq!(start, Ps::ZERO);
        assert_eq!(end, Ps::from_ns(11));
        assert_eq!(r.free_at(), Ps::from_ns(11));
    }

    #[test]
    fn split_reservation_zero_duration_is_noop() {
        let mut r = Resource::new("r");
        let (s, e) = r.reserve_split_with_start(Ps::from_ns(5), Ps::ZERO);
        assert_eq!((s, e), (Ps::from_ns(5), Ps::from_ns(5)));
        assert_eq!(r.free_at(), Ps::ZERO);
    }

    #[test]
    fn split_zero_duration_inside_busy_interval_schedules_nothing() {
        // Edge case under the overlap auditor: a zero-length request whose
        // `now` lands inside a busy interval must not insert a degenerate
        // interval (which would look like a double-booking).
        let mut r = Resource::new("r");
        r.reserve(Ps::from_ns(0), Ps::from_ns(10));
        let (s, e) = r.reserve_split_with_start(Ps::from_ns(5), Ps::ZERO);
        assert_eq!((s, e), (Ps::from_ns(5), Ps::from_ns(5)));
        assert_eq!(r.free_at(), Ps::from_ns(10));
        assert_eq!(r.out_of_window(), 0);
    }

    #[test]
    fn split_reservation_exactly_at_pruned_horizon_is_legal() {
        // The pruned-horizon contract is `now < pruned_until` = violation;
        // a request at exactly the horizon still sees every surviving gap
        // and must schedule normally (no panic under audit, no counter).
        let mut r = Resource::new("r");
        r.reserve(Ps::ZERO, Ps::from_ns(10));
        // Push the high-water mark far enough that prune() discards
        // [0, 10 ns): pruned_until becomes 10 ns.
        r.reserve(Ps::from_us(200), Ps::from_ns(10));
        let (s, e) = r.reserve_split_with_start(Ps::from_ns(10), Ps::from_ns(5));
        assert_eq!((s, e), (Ps::from_ns(10), Ps::from_ns(15)));
        assert_eq!(r.out_of_window(), 0);
    }

    #[test]
    fn fully_overlapping_split_requests_serialize() {
        // Two identical split requests: the second must queue entirely
        // behind the first (capacity 1), not share its segments. Under
        // `--features audit` the insert-time overlap assert also proves no
        // double-booking happened.
        let mut r = Resource::new("r");
        r.reserve(Ps::from_ns(4), Ps::from_ns(4)); // busy [4, 8)
        let a = r.reserve_split_with_start(Ps::ZERO, Ps::from_ns(6));
        let b = r.reserve_split_with_start(Ps::ZERO, Ps::from_ns(6));
        // First: [0,4) + [8,10); second fills what's left: [10, 16).
        assert_eq!(a, (Ps::ZERO, Ps::from_ns(10)));
        assert_eq!(b, (Ps::from_ns(10), Ps::from_ns(16)));
        // Occupancy conserved: [0, 16) fully busy, 4+6+6 ns accounted.
        assert_eq!(r.free_at(), Ps::from_ns(16));
        assert_eq!(r.busy_time(), Ps::from_ns(16));
    }

    #[test]
    fn many_interleaved_split_requests_never_double_book() {
        // Stress the splitter against the audit overlap assert: staggered
        // arrivals, varied durations, plus contiguous traffic in between.
        let mut r = Resource::new("r");
        for i in 0..100u64 {
            r.reserve(Ps::from_ns(13 * i), Ps::from_ns(4));
            r.reserve_split_with_start(Ps::from_ns(3 * i), Ps::from_ns(1 + i % 5));
        }
        let expected: u64 = 100 * 4 + (0..100u64).map(|i| 1 + i % 5).sum::<u64>();
        assert_eq!(r.busy_time(), Ps::from_ns(expected));
    }
}
