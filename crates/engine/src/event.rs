//! Deterministic discrete-event queue.

use crate::time::Ps;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<T> {
    at: Ps,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    // Reversed so that the std max-heap yields the *earliest* entry first;
    // ties break on insertion order (FIFO) for determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// Every simulator in this workspace drives its model by popping the earliest
/// pending event, advancing the clock to its timestamp, and handling it.
/// Events scheduled for the same timestamp are delivered in insertion order,
/// which makes simulations bit-reproducible across runs.
///
/// # Examples
///
/// ```
/// use dl_engine::{EventQueue, Ps};
///
/// let mut q = EventQueue::new();
/// q.push(Ps::from_ns(5), 'b');
/// q.push(Ps::from_ns(5), 'c'); // same time: FIFO order preserved
/// q.push(Ps::from_ns(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Default)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
    scheduled: u64,
    /// Timestamp of the last popped event: the queue's notion of "current
    /// sim time", against which the audit build checks causality.
    #[cfg(feature = "audit")]
    now: Ps,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            scheduled: 0,
            #[cfg(feature = "audit")]
            now: Ps::ZERO,
        }
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Under `feature = "audit"`, panics if `at` predates the timestamp of
    /// the last popped event — scheduling into the past means a handler's
    /// effect could never be observed in causal order.
    pub fn push(&mut self, at: Ps, payload: T) {
        #[cfg(feature = "audit")]
        assert!(
            at >= self.now,
            "causality violation: event scheduled at {at} but sim time already advanced to {}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Ps, T)> {
        let next = self.heap.pop().map(|e| (e.at, e.payload));
        #[cfg(feature = "audit")]
        if let Some((at, _)) = &next {
            self.now = *at;
        }
        next
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Ps> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (a cheap progress metric).
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("pending", &self.heap.len())
            .field("scheduled", &self.scheduled)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Ps::from_ns(3), 3u32);
        q.push(Ps::from_ns(1), 1u32);
        q.push(Ps::from_ns(2), 2u32);
        assert_eq!(q.pop(), Some((Ps::from_ns(1), 1)));
        assert_eq!(q.pop(), Some((Ps::from_ns(2), 2)));
        assert_eq!(q.pop(), Some((Ps::from_ns(3), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(Ps::from_ns(7), i);
        }
        for i in 0..100u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(Ps::from_ns(9), ());
        assert_eq!(q.peek_time(), Some(Ps::from_ns(9)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn counts_scheduled() {
        let mut q = EventQueue::new();
        q.push(Ps::ZERO, ());
        q.push(Ps::ZERO, ());
        q.pop();
        assert_eq!(q.total_scheduled(), 2);
    }

    #[cfg(feature = "audit")]
    #[test]
    #[should_panic(expected = "causality violation")]
    fn audit_rejects_scheduling_into_the_past() {
        let mut q = EventQueue::new();
        q.push(Ps::from_ns(10), ());
        q.pop(); // sim time is now 10 ns
        q.push(Ps::from_ns(9), ()); // handler schedules before its own cause
    }

    #[cfg(feature = "audit")]
    #[test]
    fn audit_accepts_scheduling_at_current_time() {
        // Zero-latency (same-timestamp) events are causal: FIFO tie-break
        // delivers them after their cause.
        let mut q = EventQueue::new();
        q.push(Ps::from_ns(10), 0u32);
        q.pop();
        q.push(Ps::from_ns(10), 1u32);
        q.push(Ps::from_ns(11), 2u32);
        assert_eq!(q.pop(), Some((Ps::from_ns(10), 1)));
        assert_eq!(q.pop(), Some((Ps::from_ns(11), 2)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Ps::from_ns(10), "late");
        q.push(Ps::from_ns(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(Ps::from_ns(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }
}
