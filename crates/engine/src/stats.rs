//! Statistics collection: named scalar sets and latency histograms.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An ordered map of named scalar statistics.
///
/// Components export their counters into a `StatSet` at the end of a run; the
/// benchmark harness merges and serializes these to build the paper's tables.
///
/// # Examples
///
/// ```
/// use dl_engine::stats::StatSet;
///
/// let mut s = StatSet::new();
/// s.add("dram.activates", 10.0);
/// s.add("dram.activates", 5.0);
/// assert_eq!(s.get("dram.activates"), Some(15.0));
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct StatSet {
    values: BTreeMap<String, f64>,
}

impl StatSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `name` to `value`, replacing any prior value.
    pub fn set(&mut self, name: impl Into<String>, value: f64) {
        self.values.insert(name.into(), value);
    }

    /// Adds `value` to `name` (starting from zero).
    pub fn add(&mut self, name: impl Into<String>, value: f64) {
        *self.values.entry(name.into()).or_insert(0.0) += value;
    }

    /// Looks up a statistic.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.values.get(name).copied()
    }

    /// Merges `other` into `self`, summing overlapping names.
    pub fn merge(&mut self, other: &StatSet) {
        for (k, v) in &other.values {
            *self.values.entry(k.clone()).or_insert(0.0) += v;
        }
    }

    /// Copies every entry of `other` under `prefix.`.
    pub fn absorb_prefixed(&mut self, prefix: &str, other: &StatSet) {
        for (k, v) in &other.values {
            self.values.insert(format!("{prefix}.{k}"), *v);
        }
    }

    /// Iterates entries in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.values.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set holds no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for StatSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.values {
            writeln!(f, "{k:<48} {v:>16.3}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a StatSet {
    type Item = (&'a String, &'a f64);
    type IntoIter = std::collections::btree_map::Iter<'a, String, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

/// A power-of-two bucketed histogram for latency distributions.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 also counts zero.
///
/// # Examples
///
/// ```
/// use dl_engine::stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.mean(), 26.5);
/// assert!(h.percentile(0.5) <= 4);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// An upper bound on the `q`-quantile (`0.0..=1.0`), at bucket
    /// resolution.
    ///
    /// # Panics
    /// Panics if `q` is outside `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target.max(1) {
                // Upper edge of bucket i.
                return if i >= 63 {
                    u64::MAX
                } else {
                    (1u64 << (i + 1)) - 1
                };
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Geometric mean of a sequence of positive values.
///
/// Returns 0 for an empty sequence. Values `<= 0` are skipped (they would
/// make the geomean undefined); callers should ensure inputs are positive.
///
/// # Examples
///
/// ```
/// use dl_engine::stats::geomean;
/// assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
/// ```
pub fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u32;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statset_set_add_get() {
        let mut s = StatSet::new();
        s.set("a", 1.0);
        s.add("a", 2.0);
        s.add("b", 5.0);
        assert_eq!(s.get("a"), Some(3.0));
        assert_eq!(s.get("b"), Some(5.0));
        assert_eq!(s.get("c"), None);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn statset_merge_sums() {
        let mut a = StatSet::new();
        a.set("x", 1.0);
        let mut b = StatSet::new();
        b.set("x", 2.0);
        b.set("y", 3.0);
        a.merge(&b);
        assert_eq!(a.get("x"), Some(3.0));
        assert_eq!(a.get("y"), Some(3.0));
    }

    #[test]
    fn statset_prefix_absorb() {
        let mut inner = StatSet::new();
        inner.set("reads", 7.0);
        let mut outer = StatSet::new();
        outer.absorb_prefixed("dimm0", &inner);
        assert_eq!(outer.get("dimm0.reads"), Some(7.0));
    }

    #[test]
    fn statset_display_is_nonempty() {
        let mut s = StatSet::new();
        s.set("k", 1.0);
        assert!(s.to_string().contains('k'));
    }

    #[test]
    fn histogram_basic_moments() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        for v in [4u64, 4, 8, 16] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.mean(), 8.0);
        assert_eq!(h.min(), 4);
        assert_eq!(h.max(), 16);
    }

    #[test]
    fn histogram_percentile_bounds() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        assert!((500..=1023).contains(&p50), "p50 bound was {p50}");
        assert!(h.percentile(1.0) >= 1000);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(2);
        let mut b = Histogram::new();
        b.record(1024);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 2);
        assert_eq!(a.max(), 1024);
    }

    #[test]
    fn histogram_records_zero() {
        let mut h = Histogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn geomean_matches_definition() {
        assert_eq!(geomean(std::iter::empty()), 0.0);
        let g = geomean([1.0, 10.0, 100.0].into_iter());
        assert!((g - 10.0).abs() < 1e-9);
    }
}
