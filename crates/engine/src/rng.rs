//! Deterministic random number generation.
//!
//! Every stochastic choice in the workspace (graph generation, initial data
//! values, randomized initial thread placement) flows through [`DetRng`] so
//! that experiments are bit-reproducible from a single seed.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded, splittable deterministic RNG.
///
/// # Examples
///
/// ```
/// use dl_engine::DetRng;
/// use rand::RngCore;
///
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Independent named streams derived from one seed:
/// let mut g = DetRng::seed(42).stream("graph");
/// let mut w = DetRng::seed(42).stream("weights");
/// assert_ne!(g.next_u64(), w.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: ChaCha8Rng,
    seed: u64,
}

impl DetRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        DetRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// Derives an independent stream keyed by `label`.
    ///
    /// Streams with different labels (or parents with different seeds)
    /// produce statistically independent sequences.
    ///
    /// Under `feature = "audit"`, a per-thread registry records which
    /// `(parent seed, label)` owns each derived seed; if a *different*
    /// origin later derives the same seed, two components would silently
    /// share one random sequence (correlated "independent" draws), and the
    /// derivation panics instead. Re-deriving the same stream from the same
    /// origin is legitimate and not flagged.
    pub fn stream(&self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        #[cfg(feature = "audit")]
        audit::record_stream(h, self.seed, label);
        DetRng::seed(h)
    }

    /// The seed this RNG was created from.
    pub fn initial_seed(&self) -> u64 {
        self.seed
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        self.inner.gen_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

/// Stream-collision registry for the audit build.
///
/// The registry is thread-local: simulations are single-threaded per sweep
/// point, and per-thread state keeps the parallel sweep harness free of
/// cross-point false positives.
#[cfg(feature = "audit")]
mod audit {
    use std::cell::RefCell;
    use std::collections::BTreeMap;

    thread_local! {
        /// derived seed → (parent seed, label) that first claimed it.
        static STREAMS: RefCell<BTreeMap<u64, (u64, String)>> = RefCell::new(BTreeMap::new());
    }

    pub(super) fn record_stream(derived: u64, parent: u64, label: &str) {
        STREAMS.with(|reg| {
            let mut reg = reg.borrow_mut();
            match reg.get(&derived) {
                Some((p, l)) if *p != parent || l != label => panic!(
                    "RNG stream collision: stream({label:?}) of seed {parent} derives \
                     {derived:#018x}, already owned by stream({l:?}) of seed {p} — \
                     two components would share one random sequence"
                ),
                Some(_) => {}
                None => {
                    reg.insert(derived, (parent, label.to_string()));
                }
            }
        });
    }

    /// Clears this thread's registry (for tests and for harnesses that
    /// reuse one thread across independent simulations).
    pub fn reset_stream_registry() {
        STREAMS.with(|reg| reg.borrow_mut().clear());
    }
}

/// See [`audit::reset_stream_registry`]: clears the audit build's
/// per-thread RNG stream registry between independent simulations.
#[cfg(feature = "audit")]
pub fn audit_reset_stream_registry() {
    audit::reset_stream_registry();
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let root = DetRng::seed(9);
        let mut s1 = root.stream("alpha");
        let mut s1b = root.stream("alpha");
        let mut s2 = root.stream("beta");
        assert_eq!(s1.next_u64(), s1b.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[cfg(feature = "audit")]
    #[test]
    fn audit_allows_rederiving_the_same_stream() {
        crate::rng::audit_reset_stream_registry();
        let root = DetRng::seed(11);
        for _ in 0..10 {
            let _ = root.stream("placement"); // same origin every time: fine
        }
    }

    #[cfg(feature = "audit")]
    #[test]
    #[should_panic(expected = "RNG stream collision")]
    fn audit_catches_stream_collisions() {
        crate::rng::audit_reset_stream_registry();
        // Engineer a collision in the FNV-style derivation: with
        // multiplier p (odd, hence invertible mod 2^64), the seed
        //   seed2 = basis ^ ((basis ^ seed1) * p⁻¹ ^ 'x')
        // makes stream("x") of seed2 derive the same value as stream("")
        // of seed1 — two different origins, one random sequence.
        const BASIS: u64 = 0xcbf2_9ce4_8422_2325;
        const P: u64 = 0x100_0000_01b3;
        let mut inv: u64 = 1;
        for _ in 0..6 {
            // Newton iteration doubles correct low bits each round.
            inv = inv.wrapping_mul(2u64.wrapping_sub(P.wrapping_mul(inv)));
        }
        assert_eq!(P.wrapping_mul(inv), 1);
        let seed1 = 42u64;
        let target = BASIS ^ seed1;
        let seed2 = BASIS ^ (target.wrapping_mul(inv) ^ b'x' as u64);
        let _ = DetRng::seed(seed1).stream("");
        let _ = DetRng::seed(seed2).stream("x"); // derives the same seed
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_in_range_and_chance_extremes() {
        let mut r = DetRng::seed(4);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
