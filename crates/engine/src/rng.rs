//! Deterministic random number generation.
//!
//! Every stochastic choice in the workspace (graph generation, initial data
//! values, randomized initial thread placement) flows through [`DetRng`] so
//! that experiments are bit-reproducible from a single seed.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded, splittable deterministic RNG.
///
/// # Examples
///
/// ```
/// use dl_engine::DetRng;
/// use rand::RngCore;
///
/// let mut a = DetRng::seed(42);
/// let mut b = DetRng::seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Independent named streams derived from one seed:
/// let mut g = DetRng::seed(42).stream("graph");
/// let mut w = DetRng::seed(42).stream("weights");
/// assert_ne!(g.next_u64(), w.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: ChaCha8Rng,
    seed: u64,
}

impl DetRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed(seed: u64) -> Self {
        DetRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// Derives an independent stream keyed by `label`.
    ///
    /// Streams with different labels (or parents with different seeds)
    /// produce statistically independent sequences.
    pub fn stream(&self, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed;
        for b in label.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        DetRng::seed(h)
    }

    /// The seed this RNG was created from.
    pub fn initial_seed(&self) -> u64 {
        self.seed
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be non-zero");
        self.inner.gen_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = DetRng::seed(7);
        let mut b = DetRng::seed(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed(1);
        let mut b = DetRng::seed(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let root = DetRng::seed(9);
        let mut s1 = root.stream("alpha");
        let mut s1b = root.stream("alpha");
        let mut s2 = root.stream("beta");
        assert_eq!(s1.next_u64(), s1b.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = DetRng::seed(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_in_range_and_chance_extremes() {
        let mut r = DetRng::seed(4);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
