//! Deterministic run budgets: bound a simulation by scheduled events or
//! simulated time, never by wall clock.
//!
//! A [`RunBudget`] lives on the system configuration and is checked inside
//! the event loop, so exceeding it is a property of the simulation itself —
//! the same configuration produces the same [`RunStatus`] on every machine
//! and at every sweep thread count. Wall-clock watchdogs, which are
//! inherently nondeterministic, belong to the benchmark harness
//! (`crates/bench`), the only crate the `wall-clock` lint allows to read
//! host time.
//!
//! # Examples
//!
//! ```
//! use dl_engine::budget::{BudgetKind, RunBudget, RunStatus};
//! use dl_engine::Ps;
//!
//! let b = RunBudget::default(); // unlimited
//! assert_eq!(b.check(1_000_000, Ps::from_ms(5)), None);
//!
//! let b = RunBudget {
//!     max_events: Some(100),
//!     max_sim_ps: None,
//! };
//! assert_eq!(b.check(101, Ps::ZERO), Some(BudgetKind::Events));
//! let status = RunStatus::BudgetExceeded(BudgetKind::Events);
//! assert!(!status.is_complete());
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::Ps;

/// Deterministic limits on one simulation run. `None` means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RunBudget {
    /// Maximum events scheduled over the run (the event queue's
    /// `total_scheduled` counter).
    pub max_events: Option<u64>,
    /// Maximum simulated time in picoseconds.
    pub max_sim_ps: Option<u64>,
}

impl RunBudget {
    /// An unlimited budget (what every run had before budgets existed).
    pub const UNLIMITED: RunBudget = RunBudget {
        max_events: None,
        max_sim_ps: None,
    };

    /// True when neither limit is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_events.is_none() && self.max_sim_ps.is_none()
    }

    /// Checks the budget against the run's progress counters; returns which
    /// limit was exceeded, if any. Events are checked first so the verdict
    /// is well-defined when both trip at once.
    pub fn check(&self, events_scheduled: u64, now: Ps) -> Option<BudgetKind> {
        if self.max_events.is_some_and(|cap| events_scheduled > cap) {
            return Some(BudgetKind::Events);
        }
        if self.max_sim_ps.is_some_and(|cap| now.as_ps() > cap) {
            return Some(BudgetKind::SimTime);
        }
        None
    }
}

/// Which limit of a [`RunBudget`] was exceeded.
///
/// # Overshoot contract
///
/// Budgets are observed at the *top* of the engine's epoch loop, before the
/// next batch of events is processed. A single event handler may schedule
/// many follow-up events (remote reads fan out into memory ticks, network
/// hops, and wake-ups), so the recorded `events_scheduled` at the moment a
/// run stops can exceed `max_events` by up to the fan-out of the events
/// handled in the final epoch. The overshoot is a deterministic function of
/// the configuration and workload — the same run always stops at the same
/// point with the same counters — but callers must treat `max_events` as a
/// trigger threshold, not an exact ceiling on the final counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BudgetKind {
    /// The scheduled-event cap.
    Events,
    /// The simulated-time cap.
    SimTime,
    /// The engine's built-in hard backstop (a fixed, very large scheduled-
    /// event cap that catches runaway event loops even when the run's own
    /// [`RunBudget`] is unlimited).
    Backstop,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetKind::Events => "event budget",
            BudgetKind::SimTime => "simulated-time budget",
            BudgetKind::Backstop => "hard event backstop",
        })
    }
}

/// How a simulation run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RunStatus {
    /// The run finished on its own.
    Completed,
    /// The run was cut off by its [`RunBudget`]; results cover the
    /// simulated prefix only.
    BudgetExceeded(BudgetKind),
}

// Manual impl: a `#[default]` variant attribute could trip the vendored
// serde derive's attribute parsing.
#[allow(clippy::derivable_impls)]
impl Default for RunStatus {
    fn default() -> Self {
        RunStatus::Completed
    }
}

impl RunStatus {
    /// True when the run finished without hitting a budget.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunStatus::Completed)
    }

    /// Combines the statuses of two phases of one experiment (e.g. the
    /// profiling run and the measured run): any budget violation wins.
    pub fn merge(self, other: RunStatus) -> RunStatus {
        match self {
            RunStatus::Completed => other,
            exceeded => exceeded,
        }
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunStatus::Completed => f.write_str("completed"),
            RunStatus::BudgetExceeded(kind) => write!(f, "exceeded the {kind}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = RunBudget::UNLIMITED;
        assert!(b.is_unlimited());
        assert_eq!(b.check(u64::MAX, Ps::from_ps(u64::MAX >> 1)), None);
    }

    #[test]
    fn caps_are_inclusive() {
        let b = RunBudget {
            max_events: Some(10),
            max_sim_ps: Some(100),
        };
        assert_eq!(b.check(10, Ps::from_ps(100)), None);
        assert_eq!(b.check(11, Ps::from_ps(100)), Some(BudgetKind::Events));
        assert_eq!(b.check(10, Ps::from_ps(101)), Some(BudgetKind::SimTime));
        // Events win when both trip on the same check.
        assert_eq!(b.check(11, Ps::from_ps(101)), Some(BudgetKind::Events));
    }

    #[test]
    fn status_merge_prefers_the_violation() {
        let ok = RunStatus::Completed;
        let bad = RunStatus::BudgetExceeded(BudgetKind::SimTime);
        assert_eq!(ok.merge(ok), ok);
        assert_eq!(ok.merge(bad), bad);
        assert_eq!(bad.merge(ok), bad);
        assert!(ok.is_complete() && !bad.is_complete());
    }

    #[test]
    fn status_round_trips_through_json() {
        for s in [
            RunStatus::Completed,
            RunStatus::BudgetExceeded(BudgetKind::Events),
            RunStatus::BudgetExceeded(BudgetKind::SimTime),
            RunStatus::BudgetExceeded(BudgetKind::Backstop),
        ] {
            let text = serde_json::to_string(&s).unwrap();
            let back: RunStatus = serde_json::from_str(&text).unwrap();
            assert_eq!(back, s);
        }
    }
}
