//! Conservative parallel-DES building blocks: cross-partition envelopes,
//! per-partition outboxes, and the deterministic epoch merge.
//!
//! The simulation core partitions system state (one partition per DIMM) and
//! advances all partitions in bounded time *epochs*. Within an epoch a
//! partition only processes events strictly before the epoch boundary and
//! never touches another partition's state; anything that must cross a
//! partition boundary is recorded in the partition's [`Outbox`]. At the
//! epoch barrier every outbox is drained and the collected [`Envelope`]s
//! are merged into one totally ordered batch by
//! `(timestamp, source partition id, source sequence number)` — see
//! [`merge_epoch`]. Because each component of that key is deterministic
//! (virtual time, fixed partitioning, per-source FIFO counter), the merged
//! order is independent of how many OS threads executed the epoch, which
//! is what makes the parallel engine byte-identical at any `--sim-threads`
//! value.
//!
//! # Examples
//!
//! ```
//! use dl_engine::epoch::{merge_epoch, Outbox};
//! use dl_engine::Ps;
//!
//! let mut a = Outbox::new(0);
//! let mut b = Outbox::new(1);
//! a.send(Ps::from_ns(5), "a-first");
//! b.send(Ps::from_ns(5), "b-first");
//! a.send(Ps::from_ns(3), "a-second");
//! let batch = merge_epoch(vec![a.drain(), b.drain()]);
//! let order: Vec<&str> = batch.iter().map(|e| e.payload).collect();
//! // Same timestamp: partition 0 before partition 1; the earlier
//! // timestamp wins regardless of send order.
//! assert_eq!(order, ["a-second", "a-first", "b-first"]);
//! ```

use crate::Ps;

/// One cross-partition message: a payload stamped with the virtual time it
/// takes effect, the partition that emitted it, and that partition's
/// per-run sequence number (its position among everything the source ever
/// sent). The triple `(at, src, seq)` is a total order over all envelopes
/// of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Virtual time the message takes effect at the destination.
    pub at: Ps,
    /// Source partition id (the fixed logical partition, not an OS thread).
    pub src: usize,
    /// Monotone per-source sequence number; breaks `(at, src)` ties in
    /// emission order.
    pub seq: u64,
    /// The message itself.
    pub payload: T,
}

/// A partition's staging buffer for outbound cross-partition messages.
///
/// The outbox assigns sequence numbers in emission order and never reorders
/// or drops; the coordinator drains it at each epoch barrier. Sequence
/// numbers continue across epochs so the total order is stable over the
/// whole run.
#[derive(Debug)]
pub struct Outbox<T> {
    src: usize,
    next_seq: u64,
    pending: Vec<Envelope<T>>,
}

impl<T> Outbox<T> {
    /// An empty outbox owned by partition `src`.
    pub fn new(src: usize) -> Self {
        Outbox {
            src,
            next_seq: 0,
            pending: Vec::new(),
        }
    }

    /// Stages a message taking effect at virtual time `at`.
    pub fn send(&mut self, at: Ps, payload: T) {
        self.pending.push(Envelope {
            at,
            src: self.src,
            seq: self.next_seq,
            payload,
        });
        self.next_seq += 1;
    }

    /// Takes everything staged since the last drain, in emission order.
    /// Sequence numbering continues where it left off.
    pub fn drain(&mut self) -> Vec<Envelope<T>> {
        std::mem::take(&mut self.pending)
    }

    /// Number of messages currently staged.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Total messages ever sent (drained or not).
    pub fn total_sent(&self) -> u64 {
        self.next_seq
    }
}

/// Merges per-partition envelope batches into the canonical epoch order:
/// ascending `(timestamp, source partition id, source sequence number)`.
///
/// The result is independent of how the input batches are arranged (which
/// partition's batch comes first, or whether a partition's batch was split),
/// because the sort key is carried inside each envelope. The sort is a
/// total order — no two envelopes share `(at, src, seq)` since `seq` is
/// unique per source — so the unstable sort is deterministic here.
pub fn merge_epoch<T>(batches: Vec<Vec<Envelope<T>>>) -> Vec<Envelope<T>> {
    let mut all: Vec<Envelope<T>> = batches.into_iter().flatten().collect();
    all.sort_unstable_by_key(|x| (x.at, x.src, x.seq));
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_assigns_sequence_numbers_in_emission_order() {
        let mut o = Outbox::new(3);
        o.send(Ps::from_ns(10), "x");
        o.send(Ps::from_ns(1), "y");
        assert_eq!(o.len(), 2);
        let batch = o.drain();
        assert!(o.is_empty());
        assert_eq!(batch[0].seq, 0);
        assert_eq!(batch[1].seq, 1);
        assert!(batch.iter().all(|e| e.src == 3));
        // Numbering continues across drains.
        o.send(Ps::from_ns(2), "z");
        assert_eq!(o.drain()[0].seq, 2);
        assert_eq!(o.total_sent(), 3);
    }

    #[test]
    fn merge_orders_by_time_then_source_then_sequence() {
        let mut a = Outbox::new(0);
        let mut b = Outbox::new(1);
        b.send(Ps::from_ns(5), "b0@5");
        b.send(Ps::from_ns(5), "b1@5");
        a.send(Ps::from_ns(5), "a0@5");
        a.send(Ps::from_ns(2), "a1@2");
        let merged = merge_epoch(vec![b.drain(), a.drain()]);
        let order: Vec<&str> = merged.iter().map(|e| e.payload).collect();
        assert_eq!(order, ["a1@2", "a0@5", "b0@5", "b1@5"]);
    }

    #[test]
    fn merge_is_independent_of_batch_arrangement() {
        let envelopes: Vec<Envelope<u32>> = vec![
            Envelope {
                at: Ps::from_ns(7),
                src: 1,
                seq: 0,
                payload: 10,
            },
            Envelope {
                at: Ps::from_ns(7),
                src: 0,
                seq: 4,
                payload: 20,
            },
            Envelope {
                at: Ps::from_ns(1),
                src: 2,
                seq: 9,
                payload: 30,
            },
            Envelope {
                at: Ps::from_ns(7),
                src: 0,
                seq: 2,
                payload: 40,
            },
        ];
        let forward = merge_epoch(vec![envelopes.clone()]);
        let mut rev = envelopes.clone();
        rev.reverse();
        let split = merge_epoch(vec![rev[..2].to_vec(), Vec::new(), rev[2..].to_vec()]);
        assert_eq!(forward, split);
        let payloads: Vec<u32> = forward.iter().map(|e| e.payload).collect();
        assert_eq!(payloads, [30, 40, 20, 10]);
    }
}
