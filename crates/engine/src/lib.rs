#![forbid(unsafe_code)]
//! # dl-engine
//!
//! Discrete-event simulation substrate for the DIMM-Link reproduction.
//!
//! The paper's evaluation is built on Zsim + Ramulator + BookSim; this crate
//! provides the common machinery those simulators share and that every other
//! crate in this workspace builds on:
//!
//! * a global picosecond-resolution clock ([`Ps`]) and frequency conversions
//!   ([`Freq`]),
//! * a deterministic event queue ([`EventQueue`]) with stable FIFO ordering
//!   for simultaneous events,
//! * contended, utilization-tracked resources ([`Resource`],
//!   [`BandwidthResource`]) used to model memory channels, SerDes links, and
//!   shared buses,
//! * statistics plumbing ([`stats::StatSet`], [`stats::Histogram`]),
//! * a seeded deterministic RNG ([`rng::DetRng`]).
//!
//! # Examples
//!
//! ```
//! use dl_engine::{EventQueue, Ps};
//!
//! let mut q = EventQueue::new();
//! q.push(Ps::from_ns(10), "later");
//! q.push(Ps::from_ns(1), "sooner");
//! assert_eq!(q.pop(), Some((Ps::from_ns(1), "sooner")));
//! assert_eq!(q.pop(), Some((Ps::from_ns(10), "later")));
//! ```

pub mod budget;
pub mod epoch;
pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use budget::{BudgetKind, RunBudget, RunStatus};
pub use event::EventQueue;
pub use resource::{BandwidthResource, Resource};
pub use rng::DetRng;
pub use time::{Freq, Ps};
