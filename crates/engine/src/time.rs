//! Simulation time and frequency types.
//!
//! The global clock is a `u64` count of **picoseconds**. Picoseconds are fine
//! enough to represent every clock domain in the modelled system exactly
//! enough (DDR4-2400 tCK = 833 ps, a 3 GHz host cycle = 333 ps) while leaving
//! ~200 days of simulated time before overflow — many orders of magnitude
//! beyond any experiment in this repository.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in picoseconds.
///
/// `Ps` is used both as an absolute timestamp and as a duration; the
/// arithmetic provided is the subset that is meaningful for either reading.
///
/// # Examples
///
/// ```
/// use dl_engine::Ps;
/// let t = Ps::from_ns(2) + Ps::from_ps(500);
/// assert_eq!(t.as_ps(), 2_500);
/// assert_eq!(t.as_ns_f64(), 2.5);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Ps(u64);

impl Ps {
    /// The zero timestamp (simulation start).
    pub const ZERO: Ps = Ps(0);
    /// The largest representable timestamp; used as "never".
    pub const MAX: Ps = Ps(u64::MAX);

    /// Creates a time value from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        Ps(ps)
    }

    /// Creates a time value from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        Ps(ns * 1_000)
    }

    /// Creates a time value from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        Ps(us * 1_000_000)
    }

    /// Creates a time value from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        Ps(ms * 1_000_000_000)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// This time expressed in (fractional) nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time expressed in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// This time expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This time expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, rhs: Ps) -> Ps {
        Ps(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Ps) -> Option<Ps> {
        self.0.checked_add(rhs.0).map(Ps)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: Ps) -> Ps {
        Ps(self.0.max(rhs.0))
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: Ps) -> Ps {
        Ps(self.0.min(rhs.0))
    }

    /// Number of whole cycles of `freq` that fit in this span.
    ///
    /// Used to convert measured spans back into "core cycles" when reporting
    /// statistics in the units the paper uses.
    #[inline]
    pub fn cycles_at(self, freq: Freq) -> u64 {
        let period = freq.period().as_ps();
        self.0.checked_div(period).unwrap_or(0)
    }
}

impl fmt::Display for Ps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", self.0)
        }
    }
}

impl Add for Ps {
    type Output = Ps;
    #[inline]
    fn add(self, rhs: Ps) -> Ps {
        Ps(self.0 + rhs.0)
    }
}

impl AddAssign for Ps {
    #[inline]
    fn add_assign(&mut self, rhs: Ps) {
        self.0 += rhs.0;
    }
}

impl Sub for Ps {
    type Output = Ps;
    /// # Panics
    /// Panics in debug builds if `rhs > self`; use [`Ps::saturating_sub`]
    /// when the ordering is not guaranteed.
    #[inline]
    fn sub(self, rhs: Ps) -> Ps {
        Ps(self.0 - rhs.0)
    }
}

impl SubAssign for Ps {
    #[inline]
    fn sub_assign(&mut self, rhs: Ps) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Ps {
    type Output = Ps;
    #[inline]
    fn mul(self, rhs: u64) -> Ps {
        Ps(self.0 * rhs)
    }
}

impl Div<u64> for Ps {
    type Output = Ps;
    #[inline]
    fn div(self, rhs: u64) -> Ps {
        Ps(self.0 / rhs)
    }
}

impl Sum for Ps {
    fn sum<I: Iterator<Item = Ps>>(iter: I) -> Ps {
        iter.fold(Ps::ZERO, Add::add)
    }
}

/// A clock frequency in hertz.
///
/// # Examples
///
/// ```
/// use dl_engine::{Freq, Ps};
/// let core = Freq::from_ghz(2.0);
/// assert_eq!(core.period(), Ps::from_ps(500));
/// assert_eq!(core.cycles(5), Ps::from_ps(2_500));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Freq(u64);

impl Freq {
    /// Creates a frequency from hertz.
    ///
    /// # Panics
    /// Panics if `hz` is zero.
    pub fn from_hz(hz: u64) -> Self {
        assert!(hz > 0, "frequency must be non-zero");
        Freq(hz)
    }

    /// Creates a frequency from megahertz.
    pub fn from_mhz(mhz: u64) -> Self {
        Self::from_hz(mhz * 1_000_000)
    }

    /// Creates a frequency from (fractional) gigahertz.
    ///
    /// # Panics
    /// Panics if `ghz` is not strictly positive.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz > 0.0, "frequency must be positive");
        Self::from_hz((ghz * 1e9).round() as u64)
    }

    /// The frequency in hertz.
    #[inline]
    pub fn as_hz(self) -> u64 {
        self.0
    }

    /// The clock period, rounded to the nearest picosecond.
    #[inline]
    pub fn period(self) -> Ps {
        Ps(((1e12 / self.0 as f64).round() as u64).max(1))
    }

    /// The duration of `n` cycles at this frequency.
    #[inline]
    pub fn cycles(self, n: u64) -> Ps {
        Ps(self.period().as_ps() * n)
    }
}

impl fmt::Display for Freq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}GHz", self.0 as f64 / 1e9)
        } else {
            write!(f, "{:.0}MHz", self.0 as f64 / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ps_constructors_compose() {
        assert_eq!(Ps::from_ns(1), Ps::from_ps(1_000));
        assert_eq!(Ps::from_us(1), Ps::from_ns(1_000));
        assert_eq!(Ps::from_ms(1), Ps::from_us(1_000));
    }

    #[test]
    fn ps_arithmetic() {
        let a = Ps::from_ns(5);
        let b = Ps::from_ns(3);
        assert_eq!(a + b, Ps::from_ns(8));
        assert_eq!(a - b, Ps::from_ns(2));
        assert_eq!(b.saturating_sub(a), Ps::ZERO);
        assert_eq!(a * 2, Ps::from_ns(10));
        assert_eq!(a / 5, Ps::from_ns(1));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn ps_display_picks_unit() {
        assert_eq!(Ps::from_ps(12).to_string(), "12ps");
        assert_eq!(Ps::from_ns(12).to_string(), "12.000ns");
        assert_eq!(Ps::from_us(12).to_string(), "12.000us");
        assert_eq!(Ps::from_ms(12).to_string(), "12.000ms");
    }

    #[test]
    fn freq_period_rounds() {
        assert_eq!(Freq::from_ghz(1.0).period(), Ps::from_ps(1_000));
        assert_eq!(Freq::from_ghz(3.0).period(), Ps::from_ps(333));
        // DDR4-2400 I/O clock is 1200 MHz.
        assert_eq!(Freq::from_mhz(1200).period(), Ps::from_ps(833));
    }

    #[test]
    fn cycles_at_inverts_cycles() {
        let f = Freq::from_ghz(2.0);
        assert_eq!(f.cycles(17).cycles_at(f), 17);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_freq_panics() {
        let _ = Freq::from_hz(0);
    }

    #[test]
    fn sum_of_ps() {
        let total: Ps = [Ps::from_ns(1), Ps::from_ns(2), Ps::from_ns(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Ps::from_ns(6));
    }
}
