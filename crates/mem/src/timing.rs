//! DDR4 timing parameters and DIMM geometry.

use dl_engine::{Freq, Ps};
use serde::{Deserialize, Serialize};

/// Row-buffer management policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RowPolicy {
    /// Keep rows open after access (FR-FCFS exploits row hits; the paper's
    /// configuration).
    Open,
    /// Auto-precharge after every access (no row hits, but conflicts pay no
    /// explicit PRE).
    Closed,
}

/// Physical-to-DRAM address mapping scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingScheme {
    /// `row | rank | bank | column | line`: sequential lines walk a row,
    /// row-sized strides walk banks (the default).
    RowRankBankCol,
    /// Same layout with the bank index XOR-folded with low row bits —
    /// breaks pathological same-bank strides (permutation-based
    /// interleaving).
    BankXor,
}

/// DDR4 device timing constraints, expressed in memory-clock cycles (tCK).
///
/// The defaults follow the DDR4-2400 (CL17) speed grade of the Micron
/// 32 GB LR-DIMM datasheet the paper cites for its simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramTiming {
    /// Memory clock period in picoseconds (DDR4-2400: 833 ps).
    pub tck_ps: u64,
    /// CAS latency (READ command to first data).
    pub cl: u32,
    /// RAS-to-CAS delay (ACT to READ/WRITE).
    pub rcd: u32,
    /// Row precharge time (PRE to ACT).
    pub rp: u32,
    /// Minimum row-open time (ACT to PRE).
    pub ras: u32,
    /// ACT-to-ACT delay, different banks, same rank.
    pub rrd: u32,
    /// Four-activate window.
    pub faw: u32,
    /// CAS-to-CAS delay (same bank group).
    pub ccd: u32,
    /// READ-to-PRE delay.
    pub rtp: u32,
    /// Write recovery time (end of write data to PRE).
    pub wr: u32,
    /// CAS write latency.
    pub cwl: u32,
    /// Write-to-read turnaround.
    pub wtr: u32,
    /// Data burst duration (BL8 = 4 tCK on the DDR bus).
    pub bl: u32,
    /// Average refresh interval.
    pub refi: u32,
    /// Refresh cycle time.
    pub rfc: u32,
}

impl DramTiming {
    /// DDR4-2400 CL17 timing (tCK = 833 ps).
    pub fn ddr4_2400() -> Self {
        DramTiming {
            tck_ps: 833,
            cl: 17,
            rcd: 17,
            rp: 17,
            ras: 39,
            rrd: 6,
            faw: 26,
            ccd: 6,
            rtp: 9,
            wr: 18,
            cwl: 12,
            wtr: 9,
            bl: 4,
            refi: 9363, // 7.8 us
            rfc: 420,   // 350 ns
        }
    }

    /// Converts a cycle count to simulated time.
    #[inline]
    pub fn t(&self, cycles: u32) -> Ps {
        Ps::from_ps(self.tck_ps * cycles as u64)
    }

    /// The memory (command) clock frequency.
    pub fn clock(&self) -> Freq {
        Freq::from_hz((1e12 / self.tck_ps as f64).round() as u64)
    }

    /// Peak data bandwidth of one rank's data path, in bytes/second
    /// (one 64-byte line per burst of `bl` cycles).
    pub fn peak_bandwidth(&self, line_bytes: u64) -> u64 {
        (line_bytes as f64 / (self.t(self.bl).as_secs_f64())).round() as u64
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::ddr4_2400()
    }
}

/// Full configuration of one DIMM's memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Device timing.
    pub timing: DramTiming,
    /// Ranks per DIMM.
    pub ranks: u32,
    /// Bank groups per rank.
    pub bank_groups: u32,
    /// Banks per bank group.
    pub banks_per_group: u32,
    /// Rows per bank.
    pub rows: u32,
    /// Row-buffer (page) size in bytes.
    pub row_bytes: u32,
    /// Cache-line / access granularity in bytes.
    pub line_bytes: u32,
    /// Maximum consecutive row hits served before an older request is
    /// prioritized (FR-FCFS starvation cap).
    pub hit_streak_cap: u32,
    /// Whether each rank has an independent data path.
    ///
    /// True for DIMM-NMP (the paper: "the NMP cores can access local ranks
    /// in parallel; the aggregated memory bandwidth is proportional to the
    /// total number of ranks").
    pub bus_per_rank: bool,
    /// Row-buffer policy.
    pub row_policy: RowPolicy,
    /// Address mapping scheme.
    pub mapping: MappingScheme,
}

impl DramConfig {
    /// The paper's simulated LR-DIMM: DDR4-2400, 2 ranks, 4 bank groups ×
    /// 4 banks, 8 KB rows.
    pub fn ddr4_2400_lrdimm() -> Self {
        DramConfig {
            timing: DramTiming::ddr4_2400(),
            ranks: 2,
            bank_groups: 4,
            banks_per_group: 4,
            rows: 65_536,
            row_bytes: 8_192,
            line_bytes: 64,
            hit_streak_cap: 4,
            bus_per_rank: true,
            row_policy: RowPolicy::Open,
            mapping: MappingScheme::RowRankBankCol,
        }
    }

    /// Total banks per rank.
    pub fn banks_per_rank(&self) -> u32 {
        self.bank_groups * self.banks_per_group
    }

    /// Total banks in the DIMM.
    pub fn total_banks(&self) -> u32 {
        self.ranks * self.banks_per_rank()
    }

    /// Lines per row.
    pub fn lines_per_row(&self) -> u32 {
        self.row_bytes / self.line_bytes
    }

    /// Addressable capacity of the DIMM in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.ranks as u64 * self.banks_per_rank() as u64 * self.rows as u64 * self.row_bytes as u64
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if !self.line_bytes.is_power_of_two() || self.line_bytes == 0 {
            return Err(format!(
                "line_bytes must be a power of two, got {}",
                self.line_bytes
            ));
        }
        if !self.row_bytes.is_multiple_of(self.line_bytes) {
            return Err("row_bytes must be a multiple of line_bytes".into());
        }
        for (name, v) in [
            ("ranks", self.ranks),
            ("bank_groups", self.bank_groups),
            ("banks_per_group", self.banks_per_group),
            ("rows", self.rows),
        ] {
            if v == 0 || !v.is_power_of_two() {
                return Err(format!("{name} must be a non-zero power of two, got {v}"));
            }
        }
        if self.hit_streak_cap == 0 {
            return Err("hit_streak_cap must be >= 1".into());
        }
        Ok(())
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self::ddr4_2400_lrdimm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddr4_2400_peak_bandwidth_is_19_2_gbps() {
        let t = DramTiming::ddr4_2400();
        let bw = t.peak_bandwidth(64);
        // 64 B / (4 * 833 ps) = 19.2 GB/s.
        assert!((bw as f64 - 19.2e9).abs() / 19.2e9 < 0.01, "bw = {bw}");
    }

    #[test]
    fn clock_matches_tck() {
        let t = DramTiming::ddr4_2400();
        assert_eq!(t.clock().period(), Ps::from_ps(833));
    }

    #[test]
    fn t_converts_cycles() {
        let t = DramTiming::ddr4_2400();
        assert_eq!(t.t(2), Ps::from_ps(1666));
    }

    #[test]
    fn lrdimm_capacity_and_geometry() {
        let c = DramConfig::ddr4_2400_lrdimm();
        assert_eq!(c.total_banks(), 32);
        assert_eq!(c.lines_per_row(), 128);
        // 2 ranks * 16 banks * 64Ki rows * 8 KiB = 16 GiB
        assert_eq!(c.capacity_bytes(), 16 * (1u64 << 30));
        c.validate().expect("default config must be valid");
    }

    #[test]
    fn validate_rejects_bad_geometry() {
        let mut c = DramConfig::ddr4_2400_lrdimm();
        c.ranks = 3;
        assert!(c.validate().is_err());
        let mut c2 = DramConfig::ddr4_2400_lrdimm();
        c2.line_bytes = 48;
        assert!(c2.validate().is_err());
        let mut c3 = DramConfig::ddr4_2400_lrdimm();
        c3.hit_streak_cap = 0;
        assert!(c3.validate().is_err());
    }
}
