//! Per-DIMM memory controller: FR-FCFS scheduling over DDR4 bank/rank state.
//!
//! The controller is event-driven. Callers [`enqueue`](MemController::enqueue)
//! requests, then repeatedly call [`service`](MemController::service) with the
//! current time; `service` issues every command sequence that is legal at that
//! time, returns the requests whose data bursts have finished, and caches the
//! next time the controller needs attention ([`next_wake`](MemController::next_wake)).
//!
//! Modelled constraints: open-page row-buffer policy with row hit / empty /
//! conflict timing (tRCD/tRP/tRAS/tCL/tCWL/tCCD/tRTP/tWR), activation
//! throttling (tRRD, tFAW), write-to-read turnaround (tWTR), per-rank data-bus
//! serialization of bursts, and periodic refresh (tREFI/tRFC). FR-FCFS
//! prefers row hits over older requests, with a configurable hit-streak cap
//! to avoid starving row-conflict requests.

use crate::address::DimmAddr;
use crate::timing::{DramConfig, RowPolicy};
use dl_engine::stats::{Histogram, StatSet};
use dl_engine::{Ps, Resource};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read access; completes when the data burst has returned.
    Read,
    /// A write access; completes when the data burst has been consumed.
    Write,
}

/// One line-sized DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-chosen identifier returned in the [`Completion`].
    pub id: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Decoded DRAM coordinates.
    pub addr: DimmAddr,
}

impl MemRequest {
    /// Convenience constructor.
    pub fn new(id: u64, kind: AccessKind, addr: DimmAddr) -> Self {
        MemRequest { id, kind, addr }
    }
}

/// A finished request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The identifier given at enqueue time.
    pub id: u64,
    /// Time the data burst finished.
    pub at: Ps,
    /// Whether the access hit an open row.
    pub row_hit: bool,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u32>,
    /// Earliest time a CAS may issue to the open row.
    cas_ready: Ps,
    /// Earliest time a PRE may issue.
    pre_ready: Ps,
    /// Consecutive row hits served (FR-FCFS starvation cap).
    hit_streak: u32,
}

impl Bank {
    fn closed() -> Self {
        Bank {
            open_row: None,
            cas_ready: Ps::ZERO,
            pre_ready: Ps::ZERO,
            hit_streak: 0,
        }
    }
}

#[derive(Debug)]
struct Rank {
    /// Issue times of the most recent activations (tFAW window).
    act_window: VecDeque<Ps>,
    /// Earliest time a READ CAS may issue after a write burst (tWTR).
    wtr_ready: Ps,
    /// Data path for bursts.
    bus: Resource,
    /// Start of the next refresh window.
    next_refresh: Ps,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    req: MemRequest,
    arrival: Ps,
}

#[derive(Debug, Clone, Copy)]
struct Plan {
    first_cmd_at: Ps,
    hit: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Finish {
    at: Ps,
    id: u64,
    row_hit: bool,
}

impl PartialOrd for Finish {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Finish {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.id.cmp(&other.id))
    }
}

/// FR-FCFS memory controller for one DIMM.
///
/// See the [module documentation](self) for the driving protocol.
#[derive(Debug)]
pub struct MemController {
    name: String,
    cfg: DramConfig,
    banks: Vec<Bank>,
    ranks: Vec<Rank>,
    queue: VecDeque<Pending>,
    finishes: BinaryHeap<Reverse<Finish>>,
    next_wake: Option<Ps>,
    // statistics
    reads: u64,
    writes: u64,
    activates: u64,
    row_hits: u64,
    row_misses: u64,
    refreshes: u64,
    queue_latency: Histogram,
}

impl MemController {
    /// Creates a controller with all banks closed.
    ///
    /// # Panics
    /// Panics if `cfg` is invalid (see [`DramConfig::validate`]).
    pub fn new(name: impl Into<String>, cfg: &DramConfig) -> Self {
        cfg.validate().expect("invalid DRAM configuration");
        let name = name.into();
        let ranks = (0..cfg.ranks)
            .map(|r| Rank {
                act_window: VecDeque::with_capacity(4),
                wtr_ready: Ps::ZERO,
                bus: Resource::new(format!("{name}.rank{r}.bus")),
                next_refresh: cfg.timing.t(cfg.timing.refi),
            })
            .collect();
        MemController {
            cfg: *cfg,
            banks: vec![Bank::closed(); cfg.total_banks() as usize],
            ranks,
            queue: VecDeque::new(),
            finishes: BinaryHeap::new(),
            next_wake: None,
            reads: 0,
            writes: 0,
            activates: 0,
            row_hits: 0,
            row_misses: 0,
            refreshes: 0,
            queue_latency: Histogram::new(),
            name,
        }
    }

    /// Queues a request. Call [`service`](MemController::service) afterwards
    /// (with the same `now`) to let it issue.
    pub fn enqueue(&mut self, now: Ps, req: MemRequest) {
        self.queue.push_back(Pending { req, arrival: now });
        // Force a re-evaluation no later than now.
        self.next_wake = Some(self.next_wake.map_or(now, |w| w.min(now)));
    }

    /// Number of requests waiting or in flight.
    pub fn inflight(&self) -> usize {
        self.queue.len() + self.finishes.len()
    }

    /// Issues every command sequence legal at `now` and returns requests
    /// whose data bursts completed at or before `now`.
    pub fn service(&mut self, now: Ps) -> Vec<Completion> {
        self.apply_refreshes(now);

        // Issue as long as something can start now.
        while let Some((idx, plan)) = self.pick(now) {
            let pending = self.queue.remove(idx).expect("picked index in range");
            self.issue(now, pending, plan);
        }

        // Pop completions.
        let mut done = Vec::new();
        while let Some(&Reverse(f)) = self.finishes.peek() {
            if f.at > now {
                break;
            }
            self.finishes.pop();
            done.push(Completion {
                id: f.id,
                at: f.at,
                row_hit: f.row_hit,
            });
        }

        // Cache the next interesting time. Times at or before `now` are
        // ignored (they belong to requests that are blocked behind their
        // bank's chosen candidate; the candidate's own future time, or a
        // pending completion, covers the bank's progress).
        let mut wake: Option<Ps> = None;
        let consider = |t: Ps, wake: &mut Option<Ps>| {
            if t > now {
                *wake = Some(wake.map_or(t, |w| w.min(t)));
            }
        };
        if let Some(Reverse(f)) = self.finishes.peek() {
            consider(f.at, &mut wake);
        }
        for p in &self.queue {
            let plan = self.plan_for(&p.req, now);
            consider(plan.first_cmd_at, &mut wake);
        }
        if !self.queue.is_empty() || !self.finishes.is_empty() {
            // Refresh only matters while work is pending.
            if let Some(refr) = self.ranks.iter().map(|r| r.next_refresh).min() {
                consider(refr, &mut wake);
            }
        }
        self.next_wake = wake;
        done
    }

    /// The next time `service` would make progress, cached by the last
    /// `service` call (or forced by `enqueue`).
    pub fn next_wake(&self) -> Option<Ps> {
        self.next_wake
    }

    fn apply_refreshes(&mut self, now: Ps) {
        let t = self.cfg.timing;
        let banks_per_rank = self.cfg.banks_per_rank() as usize;
        for (r, rank) in self.ranks.iter_mut().enumerate() {
            while rank.next_refresh <= now {
                let start = rank.next_refresh;
                let end = start + t.t(t.rfc);
                for b in 0..banks_per_rank {
                    let bank = &mut self.banks[r * banks_per_rank + b];
                    bank.open_row = None;
                    bank.hit_streak = 0;
                    bank.cas_ready = bank.cas_ready.max(end);
                    bank.pre_ready = bank.pre_ready.max(end);
                }
                rank.next_refresh = start + t.t(t.refi);
                self.refreshes += 1;
            }
        }
    }

    /// Earliest time an ACT may issue on `rank`, requested at `at`.
    fn act_ok(&self, rank: usize, at: Ps) -> Ps {
        let t = self.cfg.timing;
        let w = &self.ranks[rank].act_window;
        let mut earliest = at;
        if let Some(&last) = w.back() {
            earliest = earliest.max(last + t.t(t.rrd));
        }
        if w.len() >= 4 {
            earliest = earliest.max(w[w.len() - 4] + t.t(t.faw));
        }
        earliest
    }

    fn plan_for(&self, req: &MemRequest, now: Ps) -> Plan {
        let bank = &self.banks[req.addr.flat_bank(&self.cfg)];
        let rank = req.addr.rank as usize;
        match bank.open_row {
            Some(row) if row == req.addr.row => Plan {
                first_cmd_at: now.max(bank.cas_ready).max(self.read_wtr(req, rank)),
                hit: true,
            },
            Some(_) => {
                let pre_at = now.max(bank.pre_ready);
                Plan {
                    first_cmd_at: pre_at,
                    hit: false,
                }
            }
            None => {
                let act_at = self.act_ok(rank, now.max(bank.pre_ready));
                Plan {
                    first_cmd_at: act_at,
                    hit: false,
                }
            }
        }
    }

    fn read_wtr(&self, req: &MemRequest, rank: usize) -> Ps {
        match req.kind {
            AccessKind::Read => self.ranks[rank].wtr_ready,
            AccessKind::Write => Ps::ZERO,
        }
    }

    /// FR-FCFS pick with per-bank fairness.
    ///
    /// Each bank independently selects its next request: the oldest row hit
    /// while the bank's hit streak is below the cap, otherwise the oldest
    /// request for that bank (so capped banks drain conflicts instead of
    /// starving them behind an endless stream of ready hits). Among the
    /// per-bank candidates, the first one legal at `now` is issued.
    fn pick(&self, now: Ps) -> Option<(usize, Plan)> {
        // flat_bank -> chosen queue index (oldest or oldest-hit).
        let mut candidate: Vec<Option<usize>> = vec![None; self.banks.len()];
        for (i, p) in self.queue.iter().enumerate() {
            let flat = p.req.addr.flat_bank(&self.cfg);
            let bank = &self.banks[flat];
            let is_hit = bank.open_row == Some(p.req.addr.row);
            let hits_allowed = bank.hit_streak < self.cfg.hit_streak_cap;
            match candidate[flat] {
                None => candidate[flat] = Some(i),
                Some(cur) => {
                    // Upgrade the oldest non-hit to the oldest hit while the
                    // streak cap permits hit-first scheduling.
                    let cur_hit = bank.open_row == Some(self.queue[cur].req.addr.row);
                    if hits_allowed && is_hit && !cur_hit {
                        candidate[flat] = Some(i);
                    }
                }
            }
        }
        let mut best: Option<(usize, Plan)> = None;
        for i in candidate.into_iter().flatten() {
            let plan = self.plan_for(&self.queue[i].req, now);
            if plan.first_cmd_at > now {
                continue;
            }
            // Prefer the oldest issuable candidate for determinism.
            if best.is_none_or(|(b, _)| i < b) {
                best = Some((i, plan));
            }
        }
        best
    }

    fn issue(&mut self, now: Ps, pending: Pending, plan: Plan) {
        let t = self.cfg.timing;
        let req = pending.req;
        let rank_idx = req.addr.rank as usize;
        let flat = req.addr.flat_bank(&self.cfg);

        // Command schedule.
        let cas_at = if plan.hit {
            plan.first_cmd_at
        } else {
            let (pre_extra, base) = match self.banks[flat].open_row {
                Some(_) => (t.t(t.rp), plan.first_cmd_at), // PRE then ACT
                None => (Ps::ZERO, plan.first_cmd_at),
            };
            let act_at = self.act_ok(rank_idx, base + pre_extra);
            let rank = &mut self.ranks[rank_idx];
            rank.act_window.push_back(act_at);
            while rank.act_window.len() > 4 {
                rank.act_window.pop_front();
            }
            self.activates += 1;
            let bank = &mut self.banks[flat];
            bank.open_row = Some(req.addr.row);
            // tRAS lower-bounds the next precharge.
            bank.pre_ready = act_at + t.t(t.ras);
            let mut cas = act_at + t.t(t.rcd);
            if matches!(req.kind, AccessKind::Read) {
                cas = cas.max(self.ranks[rank_idx].wtr_ready);
            }
            cas
        };

        // Data burst on the rank data path.
        let data_start = match req.kind {
            AccessKind::Read => cas_at + t.t(t.cl),
            AccessKind::Write => cas_at + t.t(t.cwl),
        };
        // With `bus_per_rank` (DIMM-NMP: each rank has an independent data
        // path) bursts of different ranks overlap; otherwise all ranks share
        // one data bus (a conventional DIMM/channel).
        let bus_rank = if self.cfg.bus_per_rank { rank_idx } else { 0 };
        let (burst_start, burst_end) = {
            let rank = &mut self.ranks[bus_rank];
            rank.bus.reserve_with_start(data_start, t.t(t.bl))
        };

        // Bank bookkeeping.
        let bank = &mut self.banks[flat];
        bank.cas_ready = cas_at + t.t(t.ccd);
        match req.kind {
            AccessKind::Read => {
                bank.pre_ready = bank.pre_ready.max(cas_at + t.t(t.rtp));
                self.reads += 1;
            }
            AccessKind::Write => {
                bank.pre_ready = bank.pre_ready.max(burst_end + t.t(t.wr));
                self.ranks[rank_idx].wtr_ready = burst_end + t.t(t.wtr);
                self.writes += 1;
            }
        }
        let bank = &mut self.banks[flat];
        if plan.hit {
            bank.hit_streak += 1;
            self.row_hits += 1;
        } else {
            bank.hit_streak = 1;
            self.row_misses += 1;
        }
        if matches!(self.cfg.row_policy, RowPolicy::Closed) {
            // Auto-precharge: the row closes immediately after the access;
            // the next activation waits for the implicit precharge to
            // finish (the accumulated pre_ready constraints plus tRP).
            bank.open_row = None;
            bank.hit_streak = 0;
            bank.pre_ready += t.t(t.rp);
        }
        let _ = burst_start;

        self.queue_latency
            .record((burst_end.saturating_sub(pending.arrival)).as_ps());
        self.finishes.push(Reverse(Finish {
            at: burst_end,
            id: req.id,
            row_hit: plan.hit,
        }));
        let _ = now;
    }

    /// Total bytes moved (reads + writes, one line each).
    pub fn bytes_moved(&self) -> u64 {
        (self.reads + self.writes) * self.cfg.line_bytes as u64
    }

    /// Number of row activations issued.
    pub fn activates(&self) -> u64 {
        self.activates
    }

    /// Reads serviced.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes serviced.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Row-buffer hit-rate over all serviced requests (0 when idle).
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// The configuration this controller was built with.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Request latency distribution (enqueue to burst completion, in ps).
    pub fn latency_histogram(&self) -> &Histogram {
        &self.queue_latency
    }

    /// Exports counters as named statistics.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.set("reads", self.reads as f64);
        s.set("writes", self.writes as f64);
        s.set("activates", self.activates as f64);
        s.set("row_hits", self.row_hits as f64);
        s.set("row_misses", self.row_misses as f64);
        s.set("refreshes", self.refreshes as f64);
        s.set("bytes_moved", self.bytes_moved() as f64);
        s.set("row_hit_rate", self.row_hit_rate());
        s.set("avg_latency_ps", self.queue_latency.mean());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::DimmAddressMap;

    fn setup() -> (DramConfig, DimmAddressMap, MemController) {
        let cfg = DramConfig::ddr4_2400_lrdimm();
        let map = DimmAddressMap::new(&cfg);
        let mc = MemController::new("t", &cfg);
        (cfg, map, mc)
    }

    /// Drives the controller until all `n` requests complete; returns
    /// completions in finish order.
    fn drain(mc: &mut MemController, n: usize) -> Vec<Completion> {
        let mut done = Vec::new();
        let mut now = Ps::ZERO;
        let mut guard = 0;
        while done.len() < n {
            done.extend(mc.service(now));
            if done.len() >= n {
                break;
            }
            now = mc
                .next_wake()
                .expect("controller stalled with work pending");
            guard += 1;
            assert!(guard < 1_000_000, "runaway drain loop");
        }
        done
    }

    #[test]
    fn single_read_latency_is_rcd_cl_bl() {
        let (cfg, map, mut mc) = setup();
        let t = cfg.timing;
        mc.enqueue(
            Ps::ZERO,
            MemRequest::new(1, AccessKind::Read, map.decode(0)),
        );
        let done = drain(&mut mc, 1);
        let expected = t.t(t.rcd + t.cl + t.bl);
        assert_eq!(done[0].at, expected);
        assert!(!done[0].row_hit);
    }

    #[test]
    fn row_hit_is_faster_than_conflict() {
        let (cfg, map, mut mc) = setup();
        // Two accesses to the same row: second is a hit.
        mc.enqueue(
            Ps::ZERO,
            MemRequest::new(1, AccessKind::Read, map.decode(0)),
        );
        mc.enqueue(
            Ps::ZERO,
            MemRequest::new(2, AccessKind::Read, map.decode(64)),
        );
        let done = drain(&mut mc, 2);
        assert!(done[1].row_hit);
        let hit_gap = done[1].at - done[0].at;

        // Conflict: same bank, different row.
        let mut mc2 = MemController::new("t2", &cfg);
        let row_stride = cfg.total_banks() as u64 * cfg.row_bytes as u64;
        mc2.enqueue(
            Ps::ZERO,
            MemRequest::new(1, AccessKind::Read, map.decode(0)),
        );
        mc2.enqueue(
            Ps::ZERO,
            MemRequest::new(2, AccessKind::Read, map.decode(row_stride)),
        );
        let done2 = drain(&mut mc2, 2);
        assert!(!done2[1].row_hit);
        let miss_gap = done2[1].at - done2[0].at;
        assert!(
            miss_gap > hit_gap * 3,
            "conflict gap {miss_gap} should dwarf hit gap {hit_gap}"
        );
    }

    #[test]
    fn streaming_reads_reach_near_peak_bandwidth() {
        let (cfg, map, mut mc) = setup();
        // 512 sequential lines in one rank: row hits dominate.
        let n = 512u64;
        for i in 0..n {
            mc.enqueue(
                Ps::ZERO,
                MemRequest::new(i, AccessKind::Read, map.decode(i * 64)),
            );
        }
        let done = drain(&mut mc, n as usize);
        let end = done.iter().map(|c| c.at).max().unwrap();
        let bytes = n * 64;
        let achieved = bytes as f64 / end.as_secs_f64();
        let peak = cfg.timing.peak_bandwidth(64) as f64;
        assert!(
            achieved > 0.8 * peak,
            "streaming bandwidth {:.2} GB/s vs peak {:.2} GB/s",
            achieved / 1e9,
            peak / 1e9
        );
        assert!(mc.row_hit_rate() > 0.9);
    }

    #[test]
    fn bank_parallelism_beats_single_bank() {
        let (cfg, map, mut mc) = setup();
        let row_stride = cfg.total_banks() as u64 * cfg.row_bytes as u64;
        // 16 conflicting accesses to one bank.
        for i in 0..16u64 {
            mc.enqueue(
                Ps::ZERO,
                MemRequest::new(i, AccessKind::Read, map.decode(i * row_stride)),
            );
        }
        let serial_end = drain(&mut mc, 16).iter().map(|c| c.at).max().unwrap();

        // 16 accesses spread over 16 banks (row-conflict-free).
        let mut mc2 = MemController::new("t2", &cfg);
        for i in 0..16u64 {
            mc2.enqueue(
                Ps::ZERO,
                MemRequest::new(i, AccessKind::Read, map.decode(i * cfg.row_bytes as u64)),
            );
        }
        let parallel_end = drain(&mut mc2, 16).iter().map(|c| c.at).max().unwrap();
        assert!(
            serial_end.as_ps() > 3 * parallel_end.as_ps(),
            "serial {serial_end} vs parallel {parallel_end}"
        );
    }

    #[test]
    fn tfaw_limits_activation_rate() {
        let (cfg, map, mut mc) = setup();
        let t = cfg.timing;
        // 8 activations to 8 different banks in the same rank: the 5th..8th
        // must respect tFAW. Banks within one rank are row_bytes apart,
        // every other bank lands in rank 1, so use stride of two banks.
        let mut acts = Vec::new();
        for i in 0..8u64 {
            let addr = map.decode(i * cfg.row_bytes as u64 * 2);
            assert_eq!(addr.rank, 0);
            acts.push(addr);
        }
        for (i, a) in acts.iter().enumerate() {
            mc.enqueue(Ps::ZERO, MemRequest::new(i as u64, AccessKind::Read, *a));
        }
        let done = drain(&mut mc, 8);
        let last = done.iter().map(|c| c.at).max().unwrap();
        // Without tFAW, 8 ACTs at tRRD spacing finish around
        // 7*tRRD + tRCD + tCL + tBL. With tFAW, the 8th ACT cannot issue
        // before tFAW + ... (two full FAW windows for 8 ACTs).
        let lower_bound = t.t(t.faw) + t.t(t.rcd + t.cl + t.bl);
        assert!(
            last >= lower_bound,
            "last completion {last} should be >= tFAW-bound {lower_bound}"
        );
    }

    #[test]
    fn writes_then_read_respects_turnaround() {
        let (cfg, map, mut mc) = setup();
        let t = cfg.timing;
        mc.enqueue(
            Ps::ZERO,
            MemRequest::new(1, AccessKind::Write, map.decode(0)),
        );
        mc.enqueue(
            Ps::ZERO,
            MemRequest::new(2, AccessKind::Read, map.decode(64)),
        );
        let done = drain(&mut mc, 2);
        let write_end = done[0].at;
        let read_end = done[1].at;
        // Read CAS must wait for tWTR after write data.
        assert!(read_end >= write_end + t.t(t.wtr) + t.t(t.cl));
    }

    #[test]
    fn refresh_happens_and_closes_rows() {
        let (cfg, map, mut mc) = setup();
        let t = cfg.timing;
        mc.enqueue(
            Ps::ZERO,
            MemRequest::new(1, AccessKind::Read, map.decode(0)),
        );
        drain(&mut mc, 1);
        // Advance beyond several refresh intervals with a new request.
        let late = t.t(t.refi) * 3 + Ps::from_ns(10);
        mc.enqueue(late, MemRequest::new(2, AccessKind::Read, map.decode(0)));
        let done: Vec<_> = {
            let mut out = mc.service(late);
            while out.is_empty() {
                let now = mc.next_wake().unwrap();
                out = mc.service(now);
            }
            out
        };
        // The row was closed by refresh, so this is a miss again.
        assert!(!done[0].row_hit);
        let s = mc.stats();
        assert!(s.get("refreshes").unwrap() >= 3.0);
    }

    #[test]
    fn fr_fcfs_prefers_row_hits_but_caps_streak() {
        let (cfg, map, mut mc) = setup();
        let row_stride = cfg.total_banks() as u64 * cfg.row_bytes as u64;
        // One conflicting request enqueued first, then many hits to row 0.
        mc.enqueue(
            Ps::ZERO,
            MemRequest::new(0, AccessKind::Read, map.decode(0)),
        );
        // Prime: open row 0 first.
        let _ = drain(&mut mc, 1);
        let t0 = Ps::from_us(1);
        mc.enqueue(
            t0,
            MemRequest::new(100, AccessKind::Read, map.decode(row_stride)),
        );
        for i in 0..16u64 {
            mc.enqueue(
                t0,
                MemRequest::new(i + 1, AccessKind::Read, map.decode(64 * (i + 1))),
            );
        }
        let done = drain(&mut mc, 17);
        let conflict_pos = done.iter().position(|c| c.id == 100).unwrap();
        // The conflict is served after at most hit_streak_cap hits, not last.
        assert!(
            conflict_pos <= cfg.hit_streak_cap as usize,
            "conflict served at position {conflict_pos}"
        );
    }

    #[test]
    fn stats_are_consistent() {
        let (_, map, mut mc) = setup();
        for i in 0..10u64 {
            let kind = if i % 2 == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            mc.enqueue(Ps::ZERO, MemRequest::new(i, kind, map.decode(i * 64)));
        }
        drain(&mut mc, 10);
        assert_eq!(mc.reads(), 5);
        assert_eq!(mc.writes(), 5);
        assert_eq!(mc.bytes_moved(), 640);
        assert_eq!(mc.inflight(), 0);
        let s = mc.stats();
        assert_eq!(
            s.get("row_hits").unwrap() + s.get("row_misses").unwrap(),
            10.0
        );
        assert!(mc.latency_histogram().count() == 10);
    }

    #[test]
    fn next_wake_none_when_idle() {
        let (_, map, mut mc) = setup();
        assert!(mc.next_wake().is_none());
        mc.enqueue(
            Ps::ZERO,
            MemRequest::new(1, AccessKind::Read, map.decode(0)),
        );
        assert!(mc.next_wake().is_some());
        drain(&mut mc, 1);
        // After completion pops and queue empties, wake should clear.
        let _ = mc.service(Ps::from_ms(1));
        assert!(mc.next_wake().is_none());
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::address::DimmAddressMap;
    use crate::timing::{DramConfig, MappingScheme, RowPolicy};
    use dl_engine::Ps;

    fn run_stream(cfg: &DramConfig, offsets: &[u64]) -> Ps {
        let map = DimmAddressMap::new(cfg);
        let mut mc = MemController::new("p", cfg);
        for (i, &off) in offsets.iter().enumerate() {
            mc.enqueue(
                Ps::ZERO,
                MemRequest::new(i as u64, AccessKind::Read, map.decode(off)),
            );
        }
        let mut end = Ps::ZERO;
        let mut got = 0;
        let mut now = Ps::ZERO;
        while got < offsets.len() {
            for c in mc.service(now) {
                end = end.max(c.at);
                got += 1;
            }
            if got < offsets.len() {
                now = mc.next_wake().expect("pending");
            }
        }
        end
    }

    #[test]
    fn closed_page_sacrifices_sequential_streams() {
        let seq: Vec<u64> = (0..128u64).map(|i| i * 64).collect();
        let open = run_stream(&DramConfig::ddr4_2400_lrdimm(), &seq);
        let mut cfg = DramConfig::ddr4_2400_lrdimm();
        cfg.row_policy = RowPolicy::Closed;
        let closed = run_stream(&cfg, &seq);
        assert!(
            closed.as_ps() > open.as_ps() * 2,
            "closed {closed} should be much slower than open {open} on a stream"
        );
    }

    #[test]
    fn closed_page_counts_no_row_hits() {
        let mut cfg = DramConfig::ddr4_2400_lrdimm();
        cfg.row_policy = RowPolicy::Closed;
        let map = DimmAddressMap::new(&cfg);
        let mut mc = MemController::new("p", &cfg);
        for i in 0..32u64 {
            mc.enqueue(
                Ps::ZERO,
                MemRequest::new(i, AccessKind::Read, map.decode(i * 64)),
            );
        }
        let mut got = 0;
        let mut now = Ps::ZERO;
        while got < 32 {
            got += mc.service(now).len();
            if got < 32 {
                now = mc.next_wake().expect("pending");
            }
        }
        assert_eq!(mc.row_hit_rate(), 0.0);
    }

    #[test]
    fn bank_xor_breaks_row_stride_conflicts() {
        // A row*banks stride hits the same bank every time under the plain
        // mapping; XOR folding spreads it.
        let plain = DramConfig::ddr4_2400_lrdimm();
        let stride = plain.total_banks() as u64 * plain.row_bytes as u64;
        let offsets: Vec<u64> = (0..32u64).map(|i| i * stride).collect();
        let t_plain = run_stream(&plain, &offsets);
        let mut xor = plain;
        xor.mapping = MappingScheme::BankXor;
        let t_xor = run_stream(&xor, &offsets);
        assert!(
            t_plain.as_ps() > 2 * t_xor.as_ps(),
            "plain {t_plain} should lose to xor {t_xor} on a conflict stride"
        );
    }

    #[test]
    fn bank_xor_roundtrips() {
        let mut cfg = DramConfig::ddr4_2400_lrdimm();
        cfg.mapping = MappingScheme::BankXor;
        let m = DimmAddressMap::new(&cfg);
        for off in [0u64, 64, 8192, 1 << 20, (1 << 28) + 64 * 5] {
            let a = m.decode(off);
            assert_eq!(m.encode(a), off & !63, "offset {off:#x}");
        }
    }
}

#[cfg(test)]
mod shared_bus_tests {
    use super::*;
    use crate::address::DimmAddressMap;
    use crate::timing::DramConfig;

    #[test]
    fn shared_bus_halves_two_rank_bandwidth() {
        let mut nmp = DramConfig::ddr4_2400_lrdimm();
        nmp.bus_per_rank = true;
        let mut host = nmp;
        host.bus_per_rank = false;
        let map = DimmAddressMap::new(&nmp);

        let run = |cfg: &DramConfig| {
            let mut mc = MemController::new("b", cfg);
            // Stream both ranks concurrently (rank bit flips at bank stride).
            let rank_stride = cfg.banks_per_rank() as u64 * cfg.row_bytes as u64;
            for i in 0..256u64 {
                let off = (i / 2) * 64 + (i % 2) * rank_stride;
                mc.enqueue(
                    Ps::ZERO,
                    MemRequest::new(i, AccessKind::Read, map.decode(off)),
                );
            }
            let mut end = Ps::ZERO;
            let mut got = 0;
            let mut now = Ps::ZERO;
            while got < 256 {
                for c in mc.service(now) {
                    end = end.max(c.at);
                    got += 1;
                }
                if got < 256 {
                    now = mc.next_wake().expect("pending");
                }
            }
            end
        };
        let t_nmp = run(&nmp);
        let t_host = run(&host);
        // Two ranks, one bank each: tCCD limits a single bank to ~80 % of
        // burst bandwidth, so per-rank buses give ~1.3x, and the shared bus
        // is pinned at the channel's peak.
        assert!(
            t_host.as_ps() > t_nmp.as_ps() * 5 / 4,
            "shared bus {t_host} should be slower than per-rank {t_nmp}"
        );
    }
}
