//! Set-associative write-back caches.
//!
//! Used for the NMP cores' private L1s, the per-DIMM shared L2 (128 KB in the
//! paper's configuration) and the host LLC. Coherence follows the paper's
//! software-assisted scheme: shared read-write data is accessed with
//! `cacheable = false` and bypasses these structures entirely, so the cache
//! model never needs invalidation traffic.

use dl_engine::stats::StatSet;
use serde::{Deserialize, Serialize};

/// Cache geometry and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Hit latency in the owning core's cycles.
    pub hit_latency_cycles: u32,
}

impl CacheConfig {
    /// A 32 KB, 8-way, 64 B-line L1 with 2-cycle hits.
    pub fn l1_32k() -> Self {
        CacheConfig {
            capacity_bytes: 32 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_latency_cycles: 2,
        }
    }

    /// The paper's 128 KB shared L2 (8-way, 10-cycle hits).
    pub fn l2_128k() -> Self {
        CacheConfig {
            capacity_bytes: 128 * 1024,
            ways: 8,
            line_bytes: 64,
            hit_latency_cycles: 10,
        }
    }

    /// A 2 MB host last-level cache slice (16-way, 35-cycle hits).
    pub fn llc_2m() -> Self {
        CacheConfig {
            capacity_bytes: 2 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
            hit_latency_cycles: 35,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.capacity_bytes / (self.ways * self.line_bytes)
    }

    /// Validates the geometry.
    ///
    /// # Errors
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err("line_bytes must be a non-zero power of two".into());
        }
        if self.ways == 0 {
            return Err("ways must be >= 1".into());
        }
        if !self
            .capacity_bytes
            .is_multiple_of(self.ways * self.line_bytes)
        {
            return Err("capacity must be divisible by ways * line_bytes".into());
        }
        let sets = self.sets();
        if sets == 0 || !sets.is_power_of_two() {
            return Err(format!(
                "set count must be a non-zero power of two, got {sets}"
            ));
        }
        Ok(())
    }
}

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; it has been filled. If a dirty victim was
    /// evicted, its line-aligned address must be written back.
    Miss {
        /// Dirty victim to write back, if any.
        writeback: Option<u64>,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement.
///
/// # Examples
///
/// ```
/// use dl_mem::{Cache, CacheConfig, CacheOutcome};
///
/// let mut c = Cache::new(CacheConfig::l1_32k());
/// assert!(matches!(c.access(0x1000, false), CacheOutcome::Miss { .. }));
/// assert_eq!(c.access(0x1000, false), CacheOutcome::Hit);
/// assert_eq!(c.access(0x1030, true), CacheOutcome::Hit); // same 64 B line
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    set_mask: u64,
    line_shift: u32,
    tick: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    /// Panics if `cfg` is invalid (see [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid cache configuration");
        Cache {
            lines: vec![Line::default(); (cfg.sets() * cfg.ways) as usize],
            set_mask: (cfg.sets() - 1) as u64,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
            cfg,
        }
    }

    /// Accesses `addr`; on a miss, allocates the line (write-allocate).
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.tick += 1;
        let tick = self.tick;
        let line_addr = addr >> self.line_shift;
        let set = (line_addr & self.set_mask) as usize;
        let tag = line_addr >> self.set_mask.count_ones();
        let ways = self.cfg.ways as usize;
        let base = set * ways;

        // Probe.
        for i in base..base + ways {
            let line = &mut self.lines[i];
            if line.valid && line.tag == tag {
                line.lru = tick;
                line.dirty |= is_write;
                self.hits += 1;
                return CacheOutcome::Hit;
            }
        }

        // Miss: pick victim (invalid first, else LRU).
        self.misses += 1;
        let victim = (base..base + ways)
            .min_by_key(|&i| {
                let l = &self.lines[i];
                if l.valid {
                    (1, l.lru)
                } else {
                    (0, 0)
                }
            })
            .expect("ways >= 1");
        let line = &mut self.lines[victim];
        let writeback = if line.valid && line.dirty {
            self.writebacks += 1;
            // Reconstruct victim line address.
            let victim_line = (line.tag << self.set_mask.count_ones()) | set as u64;
            Some(victim_line << self.line_shift)
        } else {
            None
        };
        *line = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: tick,
        };
        CacheOutcome::Miss { writeback }
    }

    /// Invalidates everything, returning dirty line addresses (the paper's
    /// kernel-exit flush so the host sees NMP results).
    pub fn flush(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        let sets = self.set_mask as usize + 1;
        let ways = self.cfg.ways as usize;
        for set in 0..sets {
            for i in set * ways..(set + 1) * ways {
                let line = &mut self.lines[i];
                if line.valid && line.dirty {
                    let victim_line = (line.tag << self.set_mask.count_ones()) | set as u64;
                    dirty.push(victim_line << self.line_shift);
                }
                *line = Line::default();
            }
        }
        self.writebacks += dirty.len() as u64;
        dirty
    }

    /// Hit latency in core cycles.
    pub fn hit_latency_cycles(&self) -> u32 {
        self.cfg.hit_latency_cycles
    }

    /// The configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Fraction of accesses that hit.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Exports counters as named statistics.
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new();
        s.set("hits", self.hits as f64);
        s.set("misses", self.misses as f64);
        s.set("writebacks", self.writebacks as f64);
        s.set("hit_rate", self.hit_rate());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_presets_are_valid() {
        for cfg in [
            CacheConfig::l1_32k(),
            CacheConfig::l2_128k(),
            CacheConfig::llc_2m(),
        ] {
            cfg.validate().unwrap();
            assert!(cfg.sets().is_power_of_two());
        }
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = CacheConfig::l1_32k();
        c.ways = 0;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::l1_32k();
        c.line_bytes = 48;
        assert!(c.validate().is_err());
        let mut c = CacheConfig::l1_32k();
        c.capacity_bytes = 1000;
        assert!(c.validate().is_err());
    }

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        assert!(matches!(
            c.access(0, false),
            CacheOutcome::Miss { writeback: None }
        ));
        assert_eq!(c.access(0, false), CacheOutcome::Hit);
        assert_eq!(c.access(63, false), CacheOutcome::Hit);
        assert!(matches!(c.access(64, false), CacheOutcome::Miss { .. }));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2-way tiny cache: 2 sets of 2 ways, 64 B lines.
        let cfg = CacheConfig {
            capacity_bytes: 256,
            ways: 2,
            line_bytes: 64,
            hit_latency_cycles: 1,
        };
        let mut c = Cache::new(cfg);
        let set_stride = 128; // two sets * 64 B
        c.access(0, false); // set 0, A
        c.access(set_stride as u64, false); // set 0, B
        c.access(0, false); // touch A -> B is LRU
        c.access(2 * set_stride as u64, false); // evicts B
        assert_eq!(c.access(0, false), CacheOutcome::Hit);
        assert!(matches!(
            c.access(set_stride as u64, false),
            CacheOutcome::Miss { .. }
        ));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let cfg = CacheConfig {
            capacity_bytes: 128,
            ways: 1,
            line_bytes: 64,
            hit_latency_cycles: 1,
        };
        let mut c = Cache::new(cfg);
        c.access(0x80, true); // set 0 (two sets: bit 6 selects), dirty
        match c.access(0x180, false) {
            CacheOutcome::Miss { writeback } => assert_eq!(writeback, Some(0x80)),
            CacheOutcome::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn flush_returns_dirty_lines_and_clears() {
        let mut c = Cache::new(CacheConfig::l1_32k());
        c.access(0, true);
        c.access(64, false);
        c.access(128, true);
        let mut dirty = c.flush();
        dirty.sort_unstable();
        assert_eq!(dirty, vec![0, 128]);
        // Everything gone.
        assert!(matches!(c.access(64, false), CacheOutcome::Miss { .. }));
    }

    #[test]
    fn capacity_thrash_misses() {
        let cfg = CacheConfig::l1_32k();
        let mut c = Cache::new(cfg);
        // Touch 2x capacity sequentially, twice: second pass still misses
        // (LRU with a working set 2x the capacity).
        let lines = (2 * cfg.capacity_bytes / cfg.line_bytes) as u64;
        for pass in 0..2 {
            for i in 0..lines {
                let out = c.access(i * 64, false);
                assert!(
                    matches!(out, CacheOutcome::Miss { .. }),
                    "pass {pass} line {i} unexpectedly hit"
                );
            }
        }
    }
}
