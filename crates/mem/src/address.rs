//! Intra-DIMM physical address mapping.
//!
//! The DIMM-Link system partitions the global physical address space across
//! DIMMs (the destination-DIMM bits live *above* the per-DIMM offset, exactly
//! as the paper's ADDR field encoding assumes: "the destination ID bits have
//! already been used in the address mapping"). This module maps the per-DIMM
//! *offset* onto rank/bank-group/bank/row/column coordinates.
//!
//! The mapping order (LSB → MSB) is `line offset | column | bank | rank |
//! row`, i.e. a row-interleaved open-page-friendly layout: consecutive lines
//! walk a row buffer, while bank bits below the row bits spread independent
//! streams across banks.

use crate::timing::{DramConfig, MappingScheme};
use serde::{Deserialize, Serialize};

/// Decoded coordinates of one access within a DIMM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DimmAddr {
    /// Rank index.
    pub rank: u32,
    /// Flat bank index within the rank (bank group folded in).
    pub bank: u32,
    /// Row index within the bank.
    pub row: u32,
    /// Line-sized column index within the row.
    pub col: u32,
}

impl DimmAddr {
    /// Flat bank identifier across ranks, used to index controller state.
    pub fn flat_bank(&self, cfg: &DramConfig) -> usize {
        (self.rank * cfg.banks_per_rank() + self.bank) as usize
    }
}

/// Maps per-DIMM byte offsets to [`DimmAddr`] coordinates.
///
/// # Examples
///
/// ```
/// use dl_mem::{DimmAddressMap, DramConfig};
///
/// let cfg = DramConfig::ddr4_2400_lrdimm();
/// let map = DimmAddressMap::new(&cfg);
/// let a = map.decode(0);
/// let b = map.decode(64);
/// // Adjacent lines stay in the same row buffer.
/// assert_eq!((a.rank, a.bank, a.row), (b.rank, b.bank, b.row));
/// assert_eq!(b.col, a.col + 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DimmAddressMap {
    line_shift: u32,
    col_bits: u32,
    bank_bits: u32,
    rank_bits: u32,
    row_bits: u32,
    scheme: MappingScheme,
}

impl DimmAddressMap {
    /// Builds the map for a DIMM geometry.
    ///
    /// # Panics
    /// Panics if the geometry is invalid (see [`DramConfig::validate`]).
    pub fn new(cfg: &DramConfig) -> Self {
        cfg.validate().expect("invalid DRAM configuration");
        DimmAddressMap {
            line_shift: cfg.line_bytes.trailing_zeros(),
            col_bits: cfg.lines_per_row().trailing_zeros(),
            bank_bits: cfg.banks_per_rank().trailing_zeros(),
            rank_bits: cfg.ranks.trailing_zeros(),
            row_bits: cfg.rows.trailing_zeros(),
            scheme: cfg.mapping,
        }
    }

    /// The bank permutation applied under [`MappingScheme::BankXor`]:
    /// XOR-fold the low row bits into the bank index (involutive, so
    /// encode = decode).
    fn permute_bank(&self, bank: u64, row: u64) -> u64 {
        match self.scheme {
            MappingScheme::RowRankBankCol => bank,
            MappingScheme::BankXor => bank ^ (row & ((1 << self.bank_bits) - 1)),
        }
    }

    /// Number of addressable bytes covered by this map.
    pub fn capacity_bytes(&self) -> u64 {
        1u64 << (self.line_shift + self.col_bits + self.bank_bits + self.rank_bits + self.row_bits)
    }

    /// Decodes a byte offset (wrapped into capacity) into DRAM coordinates.
    pub fn decode(&self, offset: u64) -> DimmAddr {
        let lines = (offset % self.capacity_bytes()) >> self.line_shift;
        let col = lines & ((1 << self.col_bits) - 1);
        let rest = lines >> self.col_bits;
        let bank = rest & ((1 << self.bank_bits) - 1);
        let rest = rest >> self.bank_bits;
        let rank = rest & ((1 << self.rank_bits) - 1);
        let row = rest >> self.rank_bits;
        let bank = self.permute_bank(bank, row);
        DimmAddr {
            rank: rank as u32,
            bank: bank as u32,
            row: row as u32,
            col: col as u32,
        }
    }

    /// Re-encodes coordinates into the byte offset of the line start
    /// (inverse of [`DimmAddressMap::decode`] up to line granularity).
    pub fn encode(&self, addr: DimmAddr) -> u64 {
        let bank = self.permute_bank(addr.bank as u64, addr.row as u64);
        let mut lines = addr.row as u64;
        lines = (lines << self.rank_bits) | addr.rank as u64;
        lines = (lines << self.bank_bits) | bank;
        lines = (lines << self.col_bits) | addr.col as u64;
        lines << self.line_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> DimmAddressMap {
        DimmAddressMap::new(&DramConfig::ddr4_2400_lrdimm())
    }

    #[test]
    fn capacity_matches_config() {
        let cfg = DramConfig::ddr4_2400_lrdimm();
        assert_eq!(map().capacity_bytes(), cfg.capacity_bytes());
    }

    #[test]
    fn decode_encode_roundtrip() {
        let m = map();
        for offset in [0u64, 64, 4096, 1 << 20, (1 << 30) + 64 * 7] {
            let a = m.decode(offset);
            assert_eq!(m.encode(a), offset & !63, "offset {offset:#x}");
        }
    }

    #[test]
    fn sequential_lines_share_row() {
        let m = map();
        let cfg = DramConfig::ddr4_2400_lrdimm();
        let base = m.decode(0);
        for i in 1..cfg.lines_per_row() as u64 {
            let a = m.decode(i * 64);
            assert_eq!((a.rank, a.bank, a.row), (base.rank, base.bank, base.row));
        }
        // The next line spills into another bank (row-interleaved layout).
        let next = m.decode(cfg.row_bytes as u64);
        assert_ne!(
            (next.rank, next.bank, next.row),
            (base.rank, base.bank, base.row)
        );
    }

    #[test]
    fn rows_spread_across_banks_before_rows() {
        let m = map();
        let cfg = DramConfig::ddr4_2400_lrdimm();
        // Walking row-sized strides visits every bank before reusing one.
        let mut banks = std::collections::HashSet::new();
        for i in 0..cfg.total_banks() as u64 {
            let a = m.decode(i * cfg.row_bytes as u64);
            banks.insert((a.rank, a.bank));
            assert_eq!(a.row, 0);
        }
        assert_eq!(banks.len(), cfg.total_banks() as usize);
    }

    #[test]
    fn offsets_wrap_at_capacity() {
        let m = map();
        assert_eq!(m.decode(m.capacity_bytes() + 64), m.decode(64));
    }

    #[test]
    fn flat_bank_is_injective() {
        let cfg = DramConfig::ddr4_2400_lrdimm();
        let mut seen = std::collections::HashSet::new();
        for rank in 0..cfg.ranks {
            for bank in 0..cfg.banks_per_rank() {
                let a = DimmAddr {
                    rank,
                    bank,
                    row: 0,
                    col: 0,
                };
                assert!(seen.insert(a.flat_bank(&cfg)));
            }
        }
        assert_eq!(seen.len(), cfg.total_banks() as usize);
    }
}
