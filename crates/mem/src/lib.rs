#![forbid(unsafe_code)]
//! # dl-mem
//!
//! DDR4 DIMM memory-system timing model — the workspace's stand-in for
//! Ramulator, which the DIMM-Link paper builds on (via MultiPIM).
//!
//! The crate models:
//!
//! * DDR4 device timing ([`timing::DramTiming`], presets for the Micron
//!   LRDIMM the paper configures from),
//! * intra-DIMM address mapping ([`address::DimmAddressMap`]),
//! * a per-DIMM memory controller ([`controller::MemController`]) with
//!   FR-FCFS scheduling, open-page row-buffer policy, bank/rank state
//!   machines, tFAW activation throttling and refresh,
//! * set-associative write-back caches ([`cache::Cache`]) used for NMP-core
//!   L1/L2 and the host LLC.
//!
//! # Examples
//!
//! ```
//! use dl_engine::Ps;
//! use dl_mem::{DimmAddressMap, DramConfig, MemController, MemRequest, AccessKind};
//!
//! let cfg = DramConfig::ddr4_2400_lrdimm();
//! let map = DimmAddressMap::new(&cfg);
//! let mut mc = MemController::new("dimm0", &cfg);
//! mc.enqueue(Ps::ZERO, MemRequest::new(1, AccessKind::Read, map.decode(0x40)));
//! // Drive the controller until the read completes.
//! let mut done = mc.service(Ps::ZERO);
//! while done.is_empty() {
//!     let now = mc.next_wake().expect("request still in flight");
//!     done = mc.service(now);
//! }
//! assert_eq!(done[0].id, 1);
//! ```

pub mod address;
pub mod cache;
pub mod controller;
pub mod timing;

pub use address::{DimmAddr, DimmAddressMap};
pub use cache::{Cache, CacheConfig, CacheOutcome};
pub use controller::{AccessKind, Completion, MemController, MemRequest};
pub use timing::{DramConfig, DramTiming, MappingScheme, RowPolicy};
