//! Steps 2–3 of Algorithm 1: optimal thread placement via min-cost max-flow.

use crate::mcmf::MinCostFlow;
use crate::profile::AccessProfile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A thread → DIMM assignment with its distance-weighted cost.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    assignment: Vec<usize>,
    total_cost: u64,
}

impl Placement {
    /// `assignment()[i]` = DIMM hosting thread `i`.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// The minimized `Σ_i C[i][assignment(i)]`.
    pub fn total_cost(&self) -> u64 {
        self.total_cost
    }

    /// Threads assigned to `dimm`.
    pub fn threads_on(&self, dimm: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, &d)| d == dimm)
            .map(|(t, _)| t)
            .collect()
    }
}

/// Errors from placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// More threads than total DIMM capacity (`T > N × L`).
    Infeasible {
        /// Threads requested.
        threads: usize,
        /// Total slots (`N × L`).
        capacity: usize,
    },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlacementError::Infeasible { threads, capacity } => {
                write!(f, "{threads} threads exceed total capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Runs Algorithm 1: builds the flow network (source → threads → DIMMs →
/// sink) and extracts the minimum-cost assignment.
///
/// `dist[j][k]` is the inter-DIMM distance (the paper profiles it as
/// pairwise latency; hop counts work identically), `max_per_dimm` is `L`.
///
/// # Errors
/// Returns [`PlacementError::Infeasible`] when `T > N × L`.
///
/// # Panics
/// Panics if `dist` is not `N × N` (see [`AccessProfile::cost_table`]).
pub fn place_threads(
    profile: &AccessProfile,
    dist: &[Vec<u64>],
    max_per_dimm: usize,
) -> Result<Placement, PlacementError> {
    let t = profile.threads();
    let n = profile.dimms();
    if t > n * max_per_dimm {
        return Err(PlacementError::Infeasible {
            threads: t,
            capacity: n * max_per_dimm,
        });
    }
    let cost = profile.cost_table(dist);

    // Nodes: 0 = source, 1..=t = threads, t+1..=t+n = DIMMs, t+n+1 = sink.
    let source = 0;
    let sink = t + n + 1;
    let mut g = MinCostFlow::new(t + n + 2);
    for i in 0..t {
        g.add_edge(source, 1 + i, 1, 0);
    }
    let mut thread_dimm_edges = vec![vec![0usize; n]; t];
    for (i, row) in cost.iter().enumerate() {
        for (j, &c) in row.iter().enumerate() {
            thread_dimm_edges[i][j] = g.add_edge(1 + i, 1 + t + j, 1, c as i64);
        }
    }
    for j in 0..n {
        g.add_edge(1 + t + j, sink, max_per_dimm as i64, 0);
    }

    let (flow, total_cost) = g.solve(source, sink);
    debug_assert_eq!(flow as usize, t, "feasible instance must saturate");

    let mut assignment = vec![usize::MAX; t];
    for (i, row) in thread_dimm_edges.iter().enumerate() {
        for (j, &eid) in row.iter().enumerate() {
            if g.flow_on(eid) > 0 {
                assignment[i] = j;
            }
        }
    }
    debug_assert!(assignment.iter().all(|&d| d != usize::MAX));
    Ok(Placement {
        assignment,
        total_cost: total_cost as u64,
    })
}

/// Exhaustive reference implementation (exponential; use only to validate
/// [`place_threads`] on tiny instances).
///
/// # Errors
/// Returns [`PlacementError::Infeasible`] when `T > N × L`.
pub fn place_threads_brute_force(
    profile: &AccessProfile,
    dist: &[Vec<u64>],
    max_per_dimm: usize,
) -> Result<Placement, PlacementError> {
    let t = profile.threads();
    let n = profile.dimms();
    if t > n * max_per_dimm {
        return Err(PlacementError::Infeasible {
            threads: t,
            capacity: n * max_per_dimm,
        });
    }
    let cost = profile.cost_table(dist);
    let mut best: Option<(u64, Vec<usize>)> = None;
    let mut assignment = vec![0usize; t];
    let mut load = vec![0usize; n];

    // Plain exhaustive search keeps the reference implementation obvious;
    // threading the state through a struct would only obscure it.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        i: usize,
        t: usize,
        n: usize,
        max_per_dimm: usize,
        cost: &[Vec<u64>],
        assignment: &mut Vec<usize>,
        load: &mut Vec<usize>,
        acc: u64,
        best: &mut Option<(u64, Vec<usize>)>,
    ) {
        if let Some((b, _)) = best {
            if acc >= *b {
                return; // prune
            }
        }
        if i == t {
            *best = Some((acc, assignment.clone()));
            return;
        }
        for j in 0..n {
            if load[j] < max_per_dimm {
                load[j] += 1;
                assignment[i] = j;
                recurse(
                    i + 1,
                    t,
                    n,
                    max_per_dimm,
                    cost,
                    assignment,
                    load,
                    acc + cost[i][j],
                    best,
                );
                load[j] -= 1;
            }
        }
    }

    recurse(
        0,
        t,
        n,
        max_per_dimm,
        &cost,
        &mut assignment,
        &mut load,
        0,
        &mut best,
    );
    let (total_cost, assignment) = best.expect("feasible instance has a solution");
    Ok(Placement {
        assignment,
        total_cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_dist(n: usize) -> Vec<Vec<u64>> {
        (0..n)
            .map(|j| (0..n).map(|k| j.abs_diff(k) as u64).collect())
            .collect()
    }

    #[test]
    fn affinity_wins_when_capacity_allows() {
        // Each thread hammers exactly one DIMM; optimal = identity-ish.
        let n = 4;
        let mut m = AccessProfile::new(4, n);
        for i in 0..4 {
            m.record(i, (i + 1) % n, 100);
        }
        let p = place_threads(&m, &chain_dist(n), 1).unwrap();
        for i in 0..4 {
            assert_eq!(p.assignment()[i], (i + 1) % n);
        }
        assert_eq!(p.total_cost(), 0);
    }

    #[test]
    fn capacity_forces_second_best() {
        // Both threads want DIMM 0, but it holds only one.
        let mut m = AccessProfile::new(2, 3);
        m.record(0, 0, 100);
        m.record(1, 0, 10);
        let p = place_threads(&m, &chain_dist(3), 1).unwrap();
        // The heavier thread gets DIMM 0, the lighter one sits adjacent.
        assert_eq!(p.assignment()[0], 0);
        assert_eq!(p.assignment()[1], 1);
        assert_eq!(p.total_cost(), 10);
    }

    #[test]
    fn matches_brute_force_on_small_instances() {
        use dl_engine::DetRng;
        for seed in 0..20u64 {
            let mut rng = DetRng::seed(seed);
            let t = 1 + (seed as usize % 5);
            let n = 2 + (seed as usize % 3);
            let l = 1 + (seed as usize % 2);
            if t > n * l {
                continue;
            }
            let mut m = AccessProfile::new(t, n);
            for i in 0..t {
                for j in 0..n {
                    m.record(i, j, rng.below(50));
                }
            }
            let dist = chain_dist(n);
            let fast = place_threads(&m, &dist, l).unwrap();
            let slow = place_threads_brute_force(&m, &dist, l).unwrap();
            assert_eq!(fast.total_cost(), slow.total_cost(), "seed {seed}");
        }
    }

    #[test]
    fn infeasible_detected() {
        let m = AccessProfile::new(5, 2);
        assert_eq!(
            place_threads(&m, &chain_dist(2), 2),
            Err(PlacementError::Infeasible {
                threads: 5,
                capacity: 4
            })
        );
    }

    #[test]
    fn threads_on_inverts_assignment() {
        let mut m = AccessProfile::new(4, 2);
        for i in 0..4 {
            m.record(i, i % 2, 10);
        }
        let p = place_threads(&m, &chain_dist(2), 2).unwrap();
        let mut all: Vec<usize> = (0..2).flat_map(|d| p.threads_on(d)).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        for d in 0..2 {
            assert!(p.threads_on(d).len() <= 2);
        }
    }

    #[test]
    fn paper_scale_instance_is_fast() {
        // The paper: 64 threads on 16 DIMMs in ~2 ms. Verify we solve it.
        use dl_engine::DetRng;
        let mut rng = DetRng::seed(42);
        let mut m = AccessProfile::new(64, 16);
        for i in 0..64 {
            for j in 0..16 {
                m.record(i, j, rng.below(10_000));
            }
        }
        let p = place_threads(&m, &chain_dist(16), 4).unwrap();
        assert_eq!(p.assignment().len(), 64);
        for d in 0..16 {
            assert!(p.threads_on(d).len() <= 4, "DIMM {d} over capacity");
        }
    }
}
