#![forbid(unsafe_code)]
//! # dl-placement
//!
//! Distance-aware task mapping (paper Section IV-B, Algorithm 1).
//!
//! The paper improves thread–data affinity by (1) profiling a small fraction
//! of each thread's memory traffic per DIMM, (2) weighting that traffic by
//! inter-DIMM distance to build a placement cost table, and (3) solving a
//! minimum-cost maximum-flow problem to assign threads to DIMMs subject to a
//! per-DIMM thread capacity.
//!
//! * [`mcmf::MinCostFlow`] — a successive-shortest-paths (SPFA) min-cost
//!   max-flow solver, the `O(T²N²)`-ish workhorse the paper invokes
//!   ("using algorithms such as Bellman-Ford").
//! * [`profile::AccessProfile`] — the `M[T][N]` traffic table.
//! * [`placement`] — Steps 1–3 of Algorithm 1, plus a brute-force reference
//!   used to property-test optimality.
//!
//! # Examples
//!
//! ```
//! use dl_placement::{AccessProfile, place_threads};
//!
//! // 2 threads, 2 DIMMs: thread 0 hammers DIMM 1, thread 1 hammers DIMM 0.
//! let mut profile = AccessProfile::new(2, 2);
//! profile.record(0, 1, 1000);
//! profile.record(1, 0, 1000);
//! let dist = vec![vec![0, 1], vec![1, 0]]; // hop distance
//! let placement = place_threads(&profile, &dist, 1).expect("feasible");
//! assert_eq!(placement.assignment(), &[1, 0]);
//! ```

pub mod mcmf;
pub mod placement;
pub mod profile;

pub use mcmf::MinCostFlow;
pub use placement::{place_threads, place_threads_brute_force, Placement, PlacementError};
pub use profile::AccessProfile;
