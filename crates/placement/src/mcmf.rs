//! Minimum-cost maximum-flow via successive shortest paths (SPFA).

/// One directed edge with residual bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Edge {
    to: usize,
    cap: i64,
    cost: i64,
    flow: i64,
}

/// A min-cost max-flow problem instance.
///
/// Successive shortest paths with an SPFA (queue-based Bellman-Ford) path
/// search; handles non-negative edge costs (negative residual costs arise
/// internally and are handled by SPFA).
///
/// # Examples
///
/// ```
/// use dl_placement::MinCostFlow;
///
/// // Two unit flows from 0 to 3 through parallel middle nodes.
/// let mut g = MinCostFlow::new(4);
/// g.add_edge(0, 1, 1, 1);
/// g.add_edge(0, 2, 1, 5);
/// g.add_edge(1, 3, 1, 1);
/// g.add_edge(2, 3, 1, 1);
/// let (flow, cost) = g.solve(0, 3);
/// assert_eq!((flow, cost), (2, 8));
/// ```
#[derive(Debug, Clone)]
pub struct MinCostFlow {
    n: usize,
    edges: Vec<Edge>,
    /// adjacency: node -> indices into `edges`
    adj: Vec<Vec<usize>>,
}

impl MinCostFlow {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        MinCostFlow {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Adds a directed edge `u -> v` and returns its handle.
    ///
    /// # Panics
    /// Panics if a node is out of range, `cap < 0`, or `cost < 0`
    /// (the public interface accepts only non-negative costs; residual
    /// negatives are internal).
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: i64) -> usize {
        assert!(u < self.n && v < self.n, "node out of range");
        assert!(cap >= 0, "negative capacity");
        assert!(cost >= 0, "negative cost");
        let id = self.edges.len();
        self.edges.push(Edge {
            to: v,
            cap,
            cost,
            flow: 0,
        });
        self.edges.push(Edge {
            to: u,
            cap: 0,
            cost: -cost,
            flow: 0,
        });
        self.adj[u].push(id);
        self.adj[v].push(id + 1);
        id
    }

    /// Flow currently routed through the edge returned by
    /// [`add_edge`](MinCostFlow::add_edge).
    pub fn flow_on(&self, edge: usize) -> i64 {
        self.edges[edge].flow
    }

    /// Computes a maximum flow of minimum cost from `s` to `t`.
    ///
    /// Returns `(flow, cost)`.
    ///
    /// # Panics
    /// Panics if `s == t` or a node is out of range.
    pub fn solve(&mut self, s: usize, t: usize) -> (i64, i64) {
        assert!(s < self.n && t < self.n && s != t, "bad terminals");
        let mut total_flow = 0i64;
        let mut total_cost = 0i64;
        loop {
            // SPFA shortest path by cost in the residual graph.
            let mut dist = vec![i64::MAX; self.n];
            let mut in_queue = vec![false; self.n];
            let mut parent_edge = vec![usize::MAX; self.n];
            dist[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            in_queue[s] = true;
            while let Some(u) = queue.pop_front() {
                in_queue[u] = false;
                let du = dist[u];
                for &eid in &self.adj[u] {
                    let e = self.edges[eid];
                    if e.cap - e.flow > 0 && du != i64::MAX && du + e.cost < dist[e.to] {
                        dist[e.to] = du + e.cost;
                        parent_edge[e.to] = eid;
                        if !in_queue[e.to] {
                            queue.push_back(e.to);
                            in_queue[e.to] = true;
                        }
                    }
                }
            }
            if dist[t] == i64::MAX {
                break;
            }
            // Bottleneck along the path.
            let mut push = i64::MAX;
            let mut v = t;
            while v != s {
                let eid = parent_edge[v];
                let e = self.edges[eid];
                push = push.min(e.cap - e.flow);
                v = self.edges[eid ^ 1].to;
            }
            // Augment.
            let mut v = t;
            while v != s {
                let eid = parent_edge[v];
                self.edges[eid].flow += push;
                self.edges[eid ^ 1].flow -= push;
                v = self.edges[eid ^ 1].to;
            }
            total_flow += push;
            total_cost += push * dist[t];
        }
        (total_flow, total_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 5, 3);
        assert_eq!(g.solve(0, 1), (5, 15));
    }

    #[test]
    fn chooses_cheaper_path_first() {
        let mut g = MinCostFlow::new(4);
        let cheap = g.add_edge(0, 1, 1, 1);
        g.add_edge(1, 3, 1, 0);
        let pricey = g.add_edge(0, 2, 1, 10);
        g.add_edge(2, 3, 1, 0);
        let (flow, cost) = g.solve(0, 3);
        assert_eq!((flow, cost), (2, 11));
        assert_eq!(g.flow_on(cheap), 1);
        assert_eq!(g.flow_on(pricey), 1);
    }

    #[test]
    fn respects_capacity() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 3, 1);
        g.add_edge(1, 2, 2, 1); // bottleneck
        assert_eq!(g.solve(0, 2), (2, 4));
    }

    #[test]
    fn rerouting_via_residual_edges() {
        // Classic case where a greedy shortest path must be partially undone.
        //      0 -> 1 (cap 1, cost 1)    0 -> 2 (cap 1, cost 2)
        //      1 -> 2 (cap 1, cost 0)    1 -> 3 (cap 1, cost 2)
        //      2 -> 3 (cap 1, cost 1)
        let mut g = MinCostFlow::new(4);
        g.add_edge(0, 1, 1, 1);
        g.add_edge(0, 2, 1, 2);
        g.add_edge(1, 2, 1, 0);
        g.add_edge(1, 3, 1, 2);
        g.add_edge(2, 3, 1, 1);
        let (flow, cost) = g.solve(0, 3);
        assert_eq!(flow, 2);
        // Optimal: 0-1-2-3 (2) and 0-2? cap used... min cost is 2 + 5? Two
        // units: {0-1-2-3 cost 2, 0-2-3 blocked by cap on 2-3} -> must use
        // 0-1-3: total = (0-1-2-3 = 2) + ... only one unit via 1. Solver
        // finds: unit A 0-1-2-3 (2), unit B 0-2 + 2-3 full -> reroute:
        // B takes 0-2-3 while A moves to 0-1-3: total (1+2)+(2+1)=6.
        assert_eq!(cost, 6);
    }

    #[test]
    fn disconnected_sink_gives_zero() {
        let mut g = MinCostFlow::new(3);
        g.add_edge(0, 1, 1, 1);
        assert_eq!(g.solve(0, 2), (0, 0));
    }

    #[test]
    #[should_panic(expected = "negative cost")]
    fn negative_cost_rejected() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 1, -1);
    }

    #[test]
    #[should_panic(expected = "bad terminals")]
    fn same_terminals_rejected() {
        let mut g = MinCostFlow::new(2);
        g.add_edge(0, 1, 1, 1);
        g.solve(1, 1);
    }
}
