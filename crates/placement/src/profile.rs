//! The profiled traffic table `M[T][N]` (paper Figure 8, step ❶).
//!
//! During the profiling phase each DIMM counts, per resident thread, how
//! much traffic that thread sends to every DIMM. The host then aggregates
//! the counters into this table.

use serde::{Deserialize, Serialize};

/// Per-thread, per-DIMM access counts.
///
/// # Examples
///
/// ```
/// use dl_placement::AccessProfile;
///
/// let mut m = AccessProfile::new(2, 4);
/// m.record(0, 3, 10);
/// m.record(0, 3, 5);
/// assert_eq!(m.get(0, 3), 15);
/// assert_eq!(m.total_for_thread(0), 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessProfile {
    threads: usize,
    dimms: usize,
    counts: Vec<u64>,
}

impl AccessProfile {
    /// Creates an all-zero table for `threads × dimms`.
    ///
    /// # Panics
    /// Panics if either dimension is zero.
    pub fn new(threads: usize, dimms: usize) -> Self {
        assert!(
            threads > 0 && dimms > 0,
            "profile dimensions must be non-zero"
        );
        AccessProfile {
            threads,
            dimms,
            counts: vec![0; threads * dimms],
        }
    }

    /// Number of threads (rows).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of DIMMs (columns).
    pub fn dimms(&self) -> usize {
        self.dimms
    }

    /// Adds `n` accesses from `thread` to `dimm`.
    ///
    /// # Panics
    /// Panics if an index is out of range.
    pub fn record(&mut self, thread: usize, dimm: usize, n: u64) {
        assert!(
            thread < self.threads && dimm < self.dimms,
            "index out of range"
        );
        self.counts[thread * self.dimms + dimm] += n;
    }

    /// The count `M[thread][dimm]`.
    pub fn get(&self, thread: usize, dimm: usize) -> u64 {
        self.counts[thread * self.dimms + dimm]
    }

    /// Total accesses recorded for one thread.
    pub fn total_for_thread(&self, thread: usize) -> u64 {
        (0..self.dimms).map(|d| self.get(thread, d)).sum()
    }

    /// Total accesses recorded overall.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds every count of `other` into this table (exact integer sums, so
    /// merging per-partition tables in a fixed order reproduces the
    /// single-table result byte-for-byte).
    ///
    /// # Panics
    /// Panics if the dimensions differ.
    pub fn merge(&mut self, other: &AccessProfile) {
        assert!(
            self.threads == other.threads && self.dimms == other.dimms,
            "profile dimensions must match"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Step 1 of Algorithm 1: the distance-weighted cost of placing each
    /// thread on each DIMM, `C[i][j] = Σ_k dist(j,k) · M[i][k]`.
    ///
    /// # Panics
    /// Panics if `dist` is not an `N × N` matrix.
    pub fn cost_table(&self, dist: &[Vec<u64>]) -> Vec<Vec<u64>> {
        assert_eq!(dist.len(), self.dimms, "distance matrix must be N x N");
        for row in dist {
            assert_eq!(row.len(), self.dimms, "distance matrix must be N x N");
        }
        let mut cost = vec![vec![0u64; self.dimms]; self.threads];
        for (i, cost_row) in cost.iter_mut().enumerate() {
            for (j, c) in cost_row.iter_mut().enumerate() {
                for (k, d) in dist[j].iter().enumerate() {
                    *c += d * self.get(i, k);
                }
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut m = AccessProfile::new(3, 2);
        m.record(1, 0, 4);
        m.record(1, 1, 6);
        m.record(2, 1, 1);
        assert_eq!(m.get(1, 0), 4);
        assert_eq!(m.total_for_thread(1), 10);
        assert_eq!(m.total_for_thread(0), 0);
        assert_eq!(m.total(), 11);
    }

    #[test]
    fn cost_table_weights_by_distance() {
        let mut m = AccessProfile::new(1, 3);
        m.record(0, 0, 10);
        m.record(0, 2, 1);
        // Chain distances among 3 DIMMs.
        let dist = vec![vec![0, 1, 2], vec![1, 0, 1], vec![2, 1, 0]];
        let c = m.cost_table(&dist);
        // Placing on DIMM 0: 0*10 + 2*1 = 2; DIMM 1: 10 + 1; DIMM 2: 20.
        assert_eq!(c[0], vec![2, 11, 20]);
    }

    #[test]
    fn merge_sums_counts_elementwise() {
        let mut a = AccessProfile::new(2, 2);
        a.record(0, 0, 3);
        a.record(1, 1, 5);
        let mut b = AccessProfile::new(2, 2);
        b.record(0, 0, 7);
        b.record(1, 0, 2);
        a.merge(&b);
        assert_eq!(a.get(0, 0), 10);
        assert_eq!(a.get(1, 0), 2);
        assert_eq!(a.get(1, 1), 5);
        assert_eq!(a.total(), 17);
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn merge_checks_dimensions() {
        let mut a = AccessProfile::new(2, 2);
        a.merge(&AccessProfile::new(2, 3));
    }

    #[test]
    #[should_panic(expected = "N x N")]
    fn cost_table_checks_matrix_shape() {
        let m = AccessProfile::new(1, 3);
        let _ = m.cost_table(&[vec![0, 1], vec![1, 0]]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_bounds_checked() {
        let mut m = AccessProfile::new(1, 1);
        m.record(0, 1, 1);
    }
}
