#![forbid(unsafe_code)]
//! `dl-analyze` — scan the workspace for determinism-lint violations.
//!
//! Usage: `dl-analyze [workspace-root]` (defaults to the repo containing
//! this crate). Exits non-zero when any violation is found. Prints the
//! allowlist inventory so every sanctioned exception stays auditable.

use std::path::PathBuf;
use std::process::ExitCode;

use dl_analyze::{analyze_workspace, RULES};

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dl-analyze: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    println!(
        "dl-analyze: scanned {} files under {}",
        report.files,
        root.display()
    );
    println!("rules:");
    for (rule, desc) in RULES {
        println!("  {rule:<14} {desc}");
    }

    if report.allows.is_empty() {
        println!("allowlist: (empty)");
    } else {
        println!("allowlist ({} entries):", report.allows.len());
        for (file, a) in &report.allows {
            println!("  {file}:{} allow({}) — {}", a.line, a.rule, a.reason);
        }
    }

    if report.violations.is_empty() {
        println!("OK: no violations");
        ExitCode::SUCCESS
    } else {
        eprintln!("{} violation(s):", report.violations.len());
        for v in &report.violations {
            eprintln!("  {v}");
        }
        ExitCode::FAILURE
    }
}
