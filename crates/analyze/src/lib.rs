#![forbid(unsafe_code)]
//! # dl-analyze
//!
//! Repo-specific determinism lints for the DIMM-Link reproduction.
//!
//! The simulator's headline guarantee — byte-identical sweep artifacts at
//! any thread count — only holds if the simulation core never consults a
//! source of nondeterminism. This crate makes that a *statically checkable*
//! property instead of an emergent one: a lightweight lexer strips comments
//! and string literals from every workspace source file, an AST-lite token
//! scanner tracks which bindings hold hash containers, and a small set of
//! rules is enforced over the result.
//!
//! ## Rules
//!
//! | rule | scope | what it forbids |
//! |------|-------|-----------------|
//! | `hash-iter` | sim crates | iterating a `HashMap`/`HashSet` (`.iter()`, `.keys()`, `.values()`, `.drain()`, `for … in &map`, …) — iteration order is randomized per process |
//! | `hash-container` | sim crates, non-test | declaring or importing `HashMap`/`HashSet` at all — `BTreeMap`/`BTreeSet` or a sorted `Vec` is required |
//! | `wall-clock` | everywhere except `crates/bench` | `Instant`, `SystemTime`, `thread_rng`, and other ambient-entropy sources |
//! | `float-time` | sim crates | `f32`/`f64` bindings whose name marks them as event timestamps or credit counters (`at`, `deadline`, `*_ps`, `*credit*`, …) |
//! | `unsafe-code` | everywhere | any `unsafe` token (belt-and-braces on top of `#![forbid(unsafe_code)]`) |
//! | `bare-unwrap` | sim crates, non-test | `.unwrap()` directly on channel/event results (`recv`, `send`, `pop`, `peek_time`, `lock`, `join`, …) in sim hot paths |
//!
//! Simulation crates are `crates/{engine,mem,noc,protocol,core}`;
//! `crates/bench` is the only place allowed to read the wall clock (its
//! sweep harness reports host wall-time telemetry). `vendor/` holds offline
//! stand-ins for third-party crates and is not scanned.
//!
//! ## Allowlist
//!
//! Intentional exceptions are declared next to the code they cover, with a
//! mandatory reason, so every exemption is visible and auditable:
//!
//! ```text
//! // dl-analyze: allow(wall-clock) — host wall-time telemetry, not sim state
//! let started = Instant::now();
//! ```
//!
//! The comment suppresses the named rule on its own line and on the line
//! directly below it. An allow without a reason, or naming an unknown rule,
//! is itself a violation.
//!
//! # Examples
//!
//! ```
//! use dl_analyze::{analyze_source, CrateClass};
//!
//! let src = "fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n\
//!                m.keys().copied().collect()\n\
//!            }\n";
//! let v = analyze_source("example.rs", CrateClass::Sim, src);
//! assert!(v.iter().any(|v| v.rule == "hash-iter"));
//! ```

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// Every rule the pass knows, with a one-line description.
pub const RULES: &[(&str, &str)] = &[
    (
        "hash-iter",
        "no HashMap/HashSet iteration in simulation crates (iteration order is per-process random)",
    ),
    (
        "hash-container",
        "no HashMap/HashSet in non-test simulation code (BTreeMap/BTreeSet or sorted Vec required)",
    ),
    (
        "wall-clock",
        "no Instant/SystemTime/thread_rng outside crates/bench (sim state must not see host time or entropy)",
    ),
    (
        "float-time",
        "no f32/f64 event timestamps or credit counters (Ps and integer credits are exact)",
    ),
    ("unsafe-code", "no unsafe anywhere in the workspace"),
    (
        "bare-unwrap",
        "no bare .unwrap() on channel/event results in sim hot paths (use expect with an invariant)",
    ),
];

/// Idents that read the host clock or ambient entropy.
const WALL_CLOCK_IDENTS: &[&str] = &[
    "Instant",
    "SystemTime",
    "UNIX_EPOCH",
    "thread_rng",
    "OsRng",
    "from_entropy",
    "getrandom",
];

/// Hash-container methods whose visit order is nondeterministic.
const HASH_ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
    "retain",
    "extend",
];

/// Receiver methods returning channel/event results that must not be
/// bare-unwrapped in sim hot paths.
const CHANNEL_METHODS: &[&str] = &[
    "recv",
    "try_recv",
    "recv_timeout",
    "send",
    "try_send",
    "pop",
    "pop_front",
    "peek",
    "peek_time",
    "lock",
    "try_lock",
    "join",
];

/// One finding of the pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule name (one of [`RULES`], or the allow meta-rules
    /// `allow-missing-reason` / `allow-unknown-rule`).
    pub rule: &'static str,
    /// File the violation is in (as given to the analyzer).
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A parsed `// dl-analyze: allow(<rule>) — <reason>` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being exempted.
    pub rule: String,
    /// Mandatory justification (empty = violation).
    pub reason: String,
    /// 1-based line of the comment.
    pub line: u32,
}

/// How a file is classified for rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    /// `crates/{engine,mem,noc,protocol,core}` — the deterministic
    /// simulation core; all rules apply.
    Sim,
    /// `crates/bench` — the experiment harness; may read the wall clock for
    /// telemetry.
    Bench,
    /// Everything else in the workspace (cli, placement, workloads, facade,
    /// integration tests, examples, this crate).
    Other,
}

/// Classifies `path` (relative to the workspace root). `None` means the
/// file is out of scope (vendored stand-ins, build artifacts, VCS metadata).
pub fn classify(path: &Path) -> Option<CrateClass> {
    let mut comps = path.components().map(|c| c.as_os_str().to_string_lossy());
    let first = comps.next()?;
    match first.as_ref() {
        "vendor" | "target" | ".git" => None,
        "crates" => {
            let krate = comps.next()?;
            Some(match krate.as_ref() {
                "engine" | "mem" | "noc" | "protocol" | "core" => CrateClass::Sim,
                "bench" => CrateClass::Bench,
                _ => CrateClass::Other,
            })
        }
        _ => Some(CrateClass::Other),
    }
}

// ---------------------------------------------------------------------
// Lexer: strip comments and string literals, harvesting allow comments
// ---------------------------------------------------------------------

struct Stripped {
    /// Source with every comment and string-literal byte replaced by a
    /// space (newlines preserved, so line numbers survive).
    text: String,
    /// Parsed allowlist entries.
    allows: Vec<Allow>,
    /// Comments that mention `dl-analyze` but do not parse as an allow.
    malformed: Vec<(u32, String)>,
}

/// Strips `//` and nested `/* */` comments, `"…"` strings, `r#"…"#` raw
/// strings, and char literals, distinguishing `'a'` from lifetime `'a`.
fn strip(src: &str) -> Stripped {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;

    let mut finish_comment = |text: &str, at: u32| {
        // Doc comments (`///`, `//!`, `/**`, `/*!`) describe the allow
        // syntax rather than invoking it — never parse them as directives.
        let is_doc = text.starts_with("///")
            || text.starts_with("//!")
            || (text.starts_with("/**") && !text.starts_with("/**/"))
            || text.starts_with("/*!");
        if is_doc {
            return;
        }
        match parse_allow(text, at) {
            Some(Ok(a)) => allows.push(a),
            Some(Err(msg)) => malformed.push((at, msg)),
            None => {}
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                out.push(b'\n');
                line += 1;
                i += 1;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start_line = line;
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
                finish_comment(&src[start..i], start_line);
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start_line = line;
                let start = i;
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] == b'\n' {
                            out.push(b'\n');
                            line += 1;
                        } else {
                            out.push(b' ');
                        }
                        i += 1;
                    }
                }
                finish_comment(&src[start..i], start_line);
            }
            b'r' if i + 1 < bytes.len() && (bytes[i + 1] == b'"' || bytes[i + 1] == b'#') => {
                // Possible raw string r"…" / r#"…"#.
                let mut j = i + 1;
                let mut hashes = 0;
                while j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < bytes.len() && bytes[j] == b'"' {
                    // Blank the `r`, the hashes, and the opening quote.
                    out.resize(out.len() + hashes + 2, b' ');
                    i = j + 1;
                    // Scan to closing quote followed by `hashes` hashes.
                    'raw: while i < bytes.len() {
                        if bytes[i] == b'"' {
                            let mut k = i + 1;
                            let mut h = 0;
                            while k < bytes.len() && bytes[k] == b'#' && h < hashes {
                                h += 1;
                                k += 1;
                            }
                            if h == hashes {
                                out.resize(out.len() + (k - i), b' ');
                                i = k;
                                break 'raw;
                            }
                        }
                        if bytes[i] == b'\n' {
                            out.push(b'\n');
                            line += 1;
                        } else {
                            out.push(b' ');
                        }
                        i += 1;
                    }
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\\' && i + 1 < bytes.len() {
                        out.extend_from_slice(b"  ");
                        i += 2;
                        continue;
                    }
                    if bytes[i] == b'"' {
                        out.push(b' ');
                        i += 1;
                        break;
                    }
                    if bytes[i] == b'\n' {
                        out.push(b'\n');
                        line += 1;
                    } else {
                        out.push(b' ');
                    }
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal or lifetime. A char literal is '<one char>'
                // or '\<escape>'; a lifetime is '<ident> not followed by '.
                let is_char = if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    true
                } else {
                    // Find the next ' within a few bytes (chars are short);
                    // lifetimes never have a closing quote.
                    bytes[i + 1..]
                        .iter()
                        .take(5)
                        .position(|&c| c == b'\'')
                        .is_some()
                };
                if is_char {
                    out.push(b' ');
                    i += 1;
                    if i < bytes.len() && bytes[i] == b'\\' {
                        out.extend_from_slice(b"  ");
                        i += 2;
                    }
                    while i < bytes.len() && bytes[i] != b'\'' {
                        out.push(if bytes[i] == b'\n' { b'\n' } else { b' ' });
                        if bytes[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    if i < bytes.len() {
                        out.push(b' ');
                        i += 1;
                    }
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    Stripped {
        text: String::from_utf8(out).expect("stripping preserves UTF-8 by replacing whole bytes"),
        allows,
        malformed,
    }
}

/// Parses a comment body as an allow directive. Returns `None` when the
/// comment does not mention `dl-analyze`, `Some(Err)` when it does but is
/// malformed.
fn parse_allow(comment: &str, line: u32) -> Option<Result<Allow, String>> {
    let idx = comment.find("dl-analyze")?;
    let rest = comment[idx..].strip_prefix("dl-analyze")?;
    let rest = rest.trim_start_matches([':', ' ']);
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Some(Err(
            "dl-analyze comment without allow(<rule>) directive".into()
        ));
    };
    let Some(close) = rest.find(')') else {
        return Some(Err("unclosed allow( in dl-analyze comment".into()));
    };
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..]
        .trim_start_matches([' ', '\u{2014}', '-', ':', '\u{2013}'])
        .trim()
        .to_string();
    Some(Ok(Allow { rule, reason, line }))
}

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Tok {
    text: String,
    line: u32,
}

impl Tok {
    fn is_ident(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphabetic() || c == '_')
    }
}

/// Splits stripped source into identifier and single-character punctuation
/// tokens. Numbers are folded into idents when they begin one (`f64`),
/// standalone numeric literals become number tokens (never matched by
/// rules).
fn tokenize(text: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut cur = String::new();
    let mut cur_line = line;
    for c in text.chars() {
        if c.is_alphanumeric() || c == '_' {
            if cur.is_empty() {
                cur_line = line;
            }
            cur.push(c);
        } else {
            if !cur.is_empty() {
                toks.push(Tok {
                    text: std::mem::take(&mut cur),
                    line: cur_line,
                });
            }
            if c == '\n' {
                line += 1;
            } else if !c.is_whitespace() {
                toks.push(Tok {
                    text: c.to_string(),
                    line,
                });
            }
        }
    }
    if !cur.is_empty() {
        toks.push(Tok {
            text: cur,
            line: cur_line,
        });
    }
    toks
}

/// Marks tokens inside `#[cfg(test)] mod … { … }` blocks.
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0;
    while i < toks.len() {
        // Match `#` `[` `cfg` `(` … test … `)` `]`.
        if toks[i].text == "#"
            && i + 3 < toks.len()
            && toks[i + 1].text == "["
            && toks[i + 2].text == "cfg"
            && toks[i + 3].text == "("
        {
            let mut j = i + 4;
            let mut depth = 1;
            let mut has_test = false;
            while j < toks.len() && depth > 0 {
                match toks[j].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    "test" => has_test = true,
                    _ => {}
                }
                j += 1;
            }
            // Skip the closing `]` and any further attributes.
            while j < toks.len() && toks[j].text == "]" {
                j += 1;
                while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
                    let mut d = 0;
                    j += 1;
                    loop {
                        match toks[j].text.as_str() {
                            "[" => d += 1,
                            "]" => d -= 1,
                            _ => {}
                        }
                        j += 1;
                        if d == 0 || j >= toks.len() {
                            break;
                        }
                    }
                }
            }
            if has_test && j < toks.len() {
                // Mark the item that follows: brace-delimited if any.
                let item_start = j;
                let mut k = j;
                while k < toks.len() && toks[k].text != "{" && toks[k].text != ";" {
                    k += 1;
                }
                if k < toks.len() && toks[k].text == "{" {
                    let mut d = 0;
                    let mut end = k;
                    while end < toks.len() {
                        match toks[end].text.as_str() {
                            "{" => d += 1,
                            "}" => d -= 1,
                            _ => {}
                        }
                        end += 1;
                        if d == 0 {
                            break;
                        }
                    }
                    for m in mask.iter_mut().take(end).skip(item_start) {
                        *m = true;
                    }
                    i = end;
                    continue;
                } else {
                    for m in mask.iter_mut().take(k + 1).skip(item_start) {
                        *m = true;
                    }
                    i = k + 1;
                    continue;
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    mask
}

// ---------------------------------------------------------------------
// Rule scans
// ---------------------------------------------------------------------

/// Collects identifiers bound to hash-container types: struct fields and
/// let-bindings declared as `name: HashMap<…>` or `name = HashMap::new()`
/// (with or without a `std::collections::` path).
fn hash_bindings(toks: &[Tok]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.text != "HashMap" && t.text != "HashSet" {
            continue;
        }
        // Walk back over a `std::collections::` (or any) path prefix.
        let mut j = i;
        while j >= 2 && toks[j - 1].text == ":" && toks[j - 2].text == ":" {
            if j >= 3 && toks[j - 3].is_ident() {
                j -= 3;
            } else {
                break;
            }
        }
        // ...and over reference/mutability/lifetime sigils (`&'a mut`).
        loop {
            if j >= 1 && matches!(toks[j - 1].text.as_str(), "&" | "mut") {
                j -= 1;
            } else if j >= 2 && toks[j - 2].text == "'" && toks[j - 1].is_ident() {
                j -= 2;
            } else {
                break;
            }
        }
        if j == 0 {
            continue;
        }
        match toks[j - 1].text.as_str() {
            // `name : HashMap<…>` — field, param, or annotated let. The
            // path case `::HashMap` is excluded above, so a single colon
            // remains: the token before it must be the bound identifier.
            ":" if j >= 2 && toks[j - 2].text != ":" && toks[j - 2].is_ident() => {
                names.insert(toks[j - 2].text.clone());
            }
            // `name = HashMap::new()` / `= HashSet::from(…)`.
            "=" if j >= 2 && toks[j - 2].is_ident() && toks[j - 2].text != "=" => {
                names.insert(toks[j - 2].text.clone());
            }
            _ => {}
        }
    }
    names
}

fn is_time_or_credit_name(name: &str) -> bool {
    let l = name.to_ascii_lowercase();
    matches!(l.as_str(), "at" | "now" | "ts" | "deadline")
        || l.contains("time")
        || l.contains("timestamp")
        || l.contains("credit")
        || l.contains("deadline")
        || l.ends_with("_ps")
        || l.ends_with("_ns")
        || l.ends_with("_us")
        || l.ends_with("_at")
        || l.ends_with("_ts")
}

/// Runs every applicable rule over one file's source.
///
/// `file` is used only for reporting; `class` decides which rules apply
/// (see [`CrateClass`]). Allow comments in `src` suppress matching
/// violations on their own line and the line directly below.
pub fn analyze_source(file: &str, class: CrateClass, src: &str) -> Vec<Violation> {
    let stripped = strip(src);
    let toks = tokenize(&stripped.text);
    let in_test = test_mask(&toks);
    let is_test_file = file.contains("/tests/") || file.contains("/benches/");
    let mut raw: Vec<Violation> = Vec::new();
    let mut push = |rule: &'static str, line: u32, message: String| {
        raw.push(Violation {
            rule,
            file: file.to_string(),
            line,
            message,
        });
    };

    let tracked = hash_bindings(&toks);
    for (i, t) in toks.iter().enumerate() {
        let test_code = is_test_file || in_test[i];

        // unsafe-code: everywhere.
        if t.text == "unsafe" {
            push("unsafe-code", t.line, "`unsafe` is forbidden".into());
        }

        // wall-clock: everywhere except bench.
        if class != CrateClass::Bench && WALL_CLOCK_IDENTS.contains(&t.text.as_str()) {
            push(
                "wall-clock",
                t.line,
                format!("`{}` reads host time/entropy outside crates/bench", t.text),
            );
        }

        if class != CrateClass::Sim {
            continue;
        }

        // hash-container: sim crates, non-test code.
        if (t.text == "HashMap" || t.text == "HashSet") && !test_code {
            push(
                "hash-container",
                t.line,
                format!(
                    "`{}` in simulation code; use BTreeMap/BTreeSet or a sorted Vec",
                    t.text
                ),
            );
        }

        // hash-iter: sim crates, including test code.
        if tracked.contains(&t.text) {
            // `name.iter()`-style calls.
            if i + 2 < toks.len()
                && toks[i + 1].text == "."
                && HASH_ITER_METHODS.contains(&toks[i + 2].text.as_str())
                && toks.get(i + 3).map(|t| t.text.as_str()) == Some("(")
            {
                push(
                    "hash-iter",
                    toks[i + 2].line,
                    format!(
                        "iterating hash container `{}` via `.{}()` — order is nondeterministic",
                        t.text,
                        toks[i + 2].text
                    ),
                );
            }
            // `for x in &name {` / `for x in name {`.
            let mut j = i;
            while j > 0 && matches!(toks[j - 1].text.as_str(), "&" | "mut" | "." | "self") {
                j -= 1;
            }
            if j > 0
                && toks[j - 1].text == "in"
                && toks.get(i + 1).map(|t| t.text.as_str()) == Some("{")
            {
                push(
                    "hash-iter",
                    t.line,
                    format!(
                        "for-loop over hash container `{}` — order is nondeterministic",
                        t.text
                    ),
                );
            }
        }

        // float-time: sim crates. Pattern `name : f32|f64`.
        if (t.text == "f32" || t.text == "f64")
            && i >= 2
            && toks[i - 1].text == ":"
            && toks[i - 2].text != ":"
            && toks[i - 2].is_ident()
            && is_time_or_credit_name(&toks[i - 2].text)
        {
            push(
                "float-time",
                t.line,
                format!(
                    "`{}: {}` — timestamps and credits must be Ps/integers",
                    toks[i - 2].text,
                    t.text
                ),
            );
        }

        // bare-unwrap: sim crates, non-test. Pattern
        // `.method(…).unwrap(`.
        if !test_code
            && t.text == "."
            && i + 2 < toks.len()
            && CHANNEL_METHODS.contains(&toks[i + 1].text.as_str())
            && toks[i + 2].text == "("
        {
            // Skip the balanced argument list.
            let mut depth = 0usize;
            let mut k = i + 2;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "(" => depth += 1,
                    ")" => depth -= 1,
                    _ => {}
                }
                k += 1;
                if depth == 0 {
                    break;
                }
            }
            if k + 2 < toks.len()
                && toks[k].text == "."
                && toks[k + 1].text == "unwrap"
                && toks[k + 2].text == "("
            {
                push(
                    "bare-unwrap",
                    toks[k + 1].line,
                    format!(
                        "bare `.unwrap()` on `.{}()` result in a sim hot path; use expect",
                        toks[i + 1].text
                    ),
                );
            }
        }
    }

    // Apply the allowlist: an allow suppresses its rule on the comment's
    // line and the line directly below it.
    let known: BTreeSet<&str> = RULES.iter().map(|&(r, _)| r).collect();
    let mut out: Vec<Violation> = Vec::new();
    for v in raw {
        let allowed = stripped
            .allows
            .iter()
            .any(|a| a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line));
        if !allowed {
            out.push(v);
        }
    }
    for a in &stripped.allows {
        if !known.contains(a.rule.as_str()) {
            out.push(Violation {
                rule: "allow-unknown-rule",
                file: file.to_string(),
                line: a.line,
                message: format!("allow names unknown rule `{}`", a.rule),
            });
        }
        if a.reason.is_empty() {
            out.push(Violation {
                rule: "allow-missing-reason",
                file: file.to_string(),
                line: a.line,
                message: format!("allow({}) without a reason — justify the exception", a.rule),
            });
        }
    }
    for (line, msg) in &stripped.malformed {
        out.push(Violation {
            rule: "allow-missing-reason",
            file: file.to_string(),
            line: *line,
            message: msg.clone(),
        });
    }
    out.sort_by_key(|v| v.line);
    out
}

/// Extracts the allowlist entries of one file (for the audit inventory).
pub fn allows_of(src: &str) -> Vec<Allow> {
    strip(src).allows
}

// ---------------------------------------------------------------------
// Workspace driver
// ---------------------------------------------------------------------

/// The result of scanning a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations, in deterministic (path, line) order.
    pub violations: Vec<Violation>,
    /// Every allowlist entry, as `(file, allow)` in path order.
    pub allows: Vec<(String, Allow)>,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

/// Recursively collects `.rs` files under `root` in sorted (deterministic)
/// order, skipping out-of-scope directories.
fn rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        entries.sort();
        for p in entries {
            let name = p.file_name().map(|n| n.to_string_lossy().to_string());
            let name = name.as_deref().unwrap_or("");
            if p.is_dir() {
                if !matches!(name, "target" | "vendor" | ".git" | ".github") {
                    stack.push(p);
                }
            } else if name.ends_with(".rs") {
                files.push(p);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Scans every in-scope `.rs` file under `root` and returns the combined
/// report.
///
/// # Errors
/// Returns an error if the directory walk or a file read fails.
pub fn analyze_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in rs_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let Some(class) = classify(&rel) else {
            continue;
        };
        let src = std::fs::read_to_string(&path)?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        report.files += 1;
        report
            .violations
            .extend(analyze_source(&rel_str, class, &src));
        for a in allows_of(&src) {
            report.allows.push((rel_str.clone(), a));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(src: &str) -> Vec<Violation> {
        analyze_source("crates/core/src/x.rs", CrateClass::Sim, src)
    }

    #[test]
    fn flags_hash_iteration_methods() {
        let src = "struct S { m: HashMap<u32, u32> }\n\
                   fn f(s: &S) { for k in s.m.keys() {} }\n";
        let v = sim(src);
        assert!(
            v.iter().any(|v| v.rule == "hash-iter" && v.line == 2),
            "{v:?}"
        );
    }

    #[test]
    fn flags_iteration_of_reference_typed_params() {
        let src = "fn f(m: &std::collections::HashMap<u32, u32>) -> Vec<u32> {\n\
                   m.keys().copied().collect()\n\
                   }\n\
                   fn g(s: &mut HashSet<u32>) { s.retain(|x| *x > 0); }\n";
        let v = sim(src);
        assert!(
            v.iter().any(|v| v.rule == "hash-iter" && v.line == 2),
            "{v:?}"
        );
        assert!(
            v.iter().any(|v| v.rule == "hash-iter" && v.line == 4),
            "{v:?}"
        );
    }

    #[test]
    fn flags_for_loop_over_hash_map() {
        let src = "fn f() { let mut m = std::collections::HashMap::new();\n\
                   m.insert(1, 2);\n\
                   for kv in &m {} }\n";
        let v = sim(src);
        assert!(
            v.iter().any(|v| v.rule == "hash-iter" && v.line == 3),
            "{v:?}"
        );
    }

    #[test]
    fn flags_hash_container_outside_tests_only() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { let s = std::collections::HashSet::from([1]); assert!(s.contains(&1)); }\n\
                   }\n";
        let v = sim(src);
        assert_eq!(
            v.iter().filter(|v| v.rule == "hash-container").count(),
            1,
            "only the non-test import is flagged: {v:?}"
        );
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn btreemap_is_fine() {
        let src = "use std::collections::BTreeMap;\n\
                   fn f(m: &BTreeMap<u32, u32>) -> Vec<u32> { m.keys().copied().collect() }\n";
        assert!(sim(src).is_empty());
    }

    #[test]
    fn flags_wall_clock_outside_bench() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let v = analyze_source("crates/cli/src/x.rs", CrateClass::Other, src);
        assert!(v.iter().any(|v| v.rule == "wall-clock"));
        let b = analyze_source("crates/bench/src/x.rs", CrateClass::Bench, src);
        assert!(b.iter().all(|v| v.rule != "wall-clock"));
    }

    #[test]
    fn flags_float_time_fields() {
        let src = "struct Ev { at: f64, payload: u32 }\n\
                   struct Link { credits: f32 }\n\
                   struct Stats { mean_latency: f64 }\n";
        let v = sim(src);
        assert!(v.iter().any(|v| v.rule == "float-time" && v.line == 1));
        assert!(v.iter().any(|v| v.rule == "float-time" && v.line == 2));
        // `mean_latency` is a measurement, not a timestamp name ... it
        // contains neither a unit suffix nor a time keyword? It contains
        // none of the matched markers, so it is not flagged.
        assert!(v.iter().all(|v| v.line != 3), "{v:?}");
    }

    #[test]
    fn flags_unsafe_everywhere() {
        let src =
            "fn f() { let p = 0u64; let _ = unsafe { std::mem::transmute::<u64, i64>(p) }; }\n";
        let v = analyze_source("src/lib.rs", CrateClass::Other, src);
        assert!(v.iter().any(|v| v.rule == "unsafe-code"));
    }

    #[test]
    fn flags_bare_unwrap_on_channel_results() {
        let src = "fn f(rx: &std::sync::mpsc::Receiver<u32>) { let v = rx.recv().unwrap(); }\n";
        let v = sim(src);
        assert!(v.iter().any(|v| v.rule == "bare-unwrap"));
        // expect() is the sanctioned spelling.
        let ok =
            "fn f(rx: &std::sync::mpsc::Receiver<u32>) { let v = rx.recv().expect(\"alive\"); }\n";
        assert!(sim(ok).iter().all(|v| v.rule != "bare-unwrap"));
    }

    #[test]
    fn unwrap_in_test_module_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { q.pop().unwrap(); }\n}\n";
        assert!(sim(src).iter().all(|v| v.rule != "bare-unwrap"));
    }

    #[test]
    fn allow_comment_suppresses_next_line() {
        let src = "// dl-analyze: allow(hash-container) — ephemeral scratch map, never iterated\n\
                   fn f() { let m: std::collections::HashMap<u32, u32> = Default::default(); }\n";
        let v = sim(src);
        assert!(v.iter().all(|v| v.rule != "hash-container"), "{v:?}");
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "// dl-analyze: allow(hash-container)\n\
                   fn f() { let m: std::collections::HashMap<u32, u32> = Default::default(); }\n";
        let v = sim(src);
        assert!(v.iter().any(|v| v.rule == "allow-missing-reason"));
        // The suppression itself still applies (the entry is just invalid).
        assert!(v.iter().all(|v| v.rule != "hash-container"));
    }

    #[test]
    fn allow_with_unknown_rule_is_a_violation() {
        let src = "// dl-analyze: allow(no-such-rule) — because\nfn f() {}\n";
        let v = sim(src);
        assert!(v.iter().any(|v| v.rule == "allow-unknown-rule"));
    }

    #[test]
    fn comments_and_strings_are_not_code() {
        let src = "// HashMap iteration: for k in map.keys() {}\n\
                   /* unsafe Instant::now() */\n\
                   fn f() -> &'static str { \"thread_rng SystemTime unsafe\" }\n\
                   fn g() -> String { r#\"Instant::now() HashMap\"#.to_string() }\n";
        assert!(sim(src).is_empty(), "{:?}", sim(src));
    }

    #[test]
    fn lifetimes_do_not_confuse_the_lexer() {
        let src = "struct W<'w> { r: &'w str }\n\
                   fn f<'a>(x: &'a char) -> char { let c = 'x'; let n = '\\n'; *x }\n\
                   fn g() { let t = std::time::Instant::now(); }\n";
        let v = sim(src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "wall-clock");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn classify_scopes_rules_by_crate() {
        use std::path::Path;
        assert_eq!(
            classify(Path::new("crates/engine/src/event.rs")),
            Some(CrateClass::Sim)
        );
        assert_eq!(
            classify(Path::new("crates/bench/src/sweep.rs")),
            Some(CrateClass::Bench)
        );
        assert_eq!(
            classify(Path::new("crates/cli/src/main.rs")),
            Some(CrateClass::Other)
        );
        assert_eq!(
            classify(Path::new("tests/end_to_end.rs")),
            Some(CrateClass::Other)
        );
        assert_eq!(classify(Path::new("vendor/rand/src/lib.rs")), None);
        assert_eq!(classify(Path::new("target/debug/build.rs")), None);
    }

    #[test]
    fn tests_dir_files_are_test_code() {
        let src = "fn t(q: &mut Q) { q.pop().unwrap(); }\n";
        let v = analyze_source("crates/core/tests/det.rs", CrateClass::Sim, src);
        assert!(v.iter().all(|v| v.rule != "bare-unwrap"));
    }

    #[test]
    fn workspace_scan_is_clean() {
        // The pass must run clean on its own workspace: zero violations,
        // and every allowlist entry carries a reason. This is the same
        // check CI's `analyze` job runs via the binary.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = analyze_workspace(&root).expect("workspace scan");
        assert!(report.files > 50, "scanned only {} files", report.files);
        assert!(
            report.violations.is_empty(),
            "violations:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        for (file, a) in &report.allows {
            assert!(
                !a.reason.is_empty(),
                "{file}:{} allow without reason",
                a.line
            );
        }
    }
}
