//! Criterion microbenchmarks of the substrate components.

use criterion::{criterion_group, criterion_main, Criterion};
use dl_engine::{DetRng, Ps};
use dl_mem::{
    AccessKind, Cache, CacheConfig, DimmAddressMap, DramConfig, MemController, MemRequest,
};
use dl_noc::{FlitNet, FlitNetConfig, LinkParams, PacketNet, Topology, TopologyKind};
use dl_placement::{place_threads, AccessProfile};
use dl_protocol::{crc32, DimmId, DlCommand, Packet, PacketHeader};
use std::hint::black_box;

fn bench_dram(c: &mut Criterion) {
    let cfg = DramConfig::ddr4_2400_lrdimm();
    let map = DimmAddressMap::new(&cfg);
    let mut g = c.benchmark_group("dram");
    g.sample_size(20);
    g.bench_function("stream_512_reads", |b| {
        b.iter(|| {
            let mut mc = MemController::new("b", &cfg);
            for i in 0..512u64 {
                mc.enqueue(
                    Ps::ZERO,
                    MemRequest::new(i, AccessKind::Read, map.decode(i * 64)),
                );
            }
            let mut done = mc.service(Ps::ZERO).len();
            while done < 512 {
                let now = mc.next_wake().expect("pending");
                done += mc.service(now).len();
            }
            black_box(done)
        })
    });
    g.bench_function("random_512_mixed", |b| {
        b.iter(|| {
            let mut rng = DetRng::seed(1);
            let mut mc = MemController::new("b", &cfg);
            for i in 0..512u64 {
                let kind = if i % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                mc.enqueue(
                    Ps::ZERO,
                    MemRequest::new(i, kind, map.decode(rng.below(1 << 26) * 64)),
                );
            }
            let mut done = mc.service(Ps::ZERO).len();
            while done < 512 {
                let now = mc.next_wake().expect("pending");
                done += mc.service(now).len();
            }
            black_box(done)
        })
    });
    g.finish();
}

fn bench_noc(c: &mut Criterion) {
    let topo = Topology::new(TopologyKind::Chain, 8);
    let mut g = c.benchmark_group("noc");
    g.sample_size(20);
    g.bench_function("packetnet_1k_sends", |b| {
        b.iter(|| {
            let mut net = PacketNet::new(&topo, LinkParams::grs_25gbps());
            let mut last = Ps::ZERO;
            for i in 0..1000u64 {
                let s = (i % 8) as usize;
                let d = ((i + 3) % 8) as usize;
                last = last.max(net.send(Ps::from_ns(i), s, d, 272));
            }
            black_box(last)
        })
    });
    g.bench_function("flitnet_56_packets", |b| {
        b.iter(|| {
            let mut net = FlitNet::new(&topo, FlitNetConfig::grs_25gbps());
            let mut id = 0;
            for s in 0..8usize {
                for d in 0..8usize {
                    if s != d {
                        net.inject(id, s, d, 4);
                        id += 1;
                    }
                }
            }
            black_box(net.run_until_idle(1_000_000).len())
        })
    });
    g.finish();
}

fn bench_protocol(c: &mut Criterion) {
    let header = PacketHeader::new(DimmId(1), DimmId(2), DlCommand::WriteReq, 0x1234, 7).unwrap();
    let pkt = Packet::with_payload(header, vec![0xAB; 256]).unwrap();
    let flits = pkt.encode();
    let mut g = c.benchmark_group("protocol");
    g.bench_function("crc32_256B", |b| {
        let data = vec![0x5Au8; 256];
        b.iter(|| black_box(crc32(black_box(&data))))
    });
    g.bench_function("encode_max_packet", |b| b.iter(|| black_box(pkt.encode())));
    g.bench_function("decode_max_packet", |b| {
        b.iter(|| black_box(Packet::decode(black_box(&flits)).unwrap()))
    });
    g.finish();
}

fn bench_placement(c: &mut Criterion) {
    // The paper's instance size: 64 threads on 16 DIMMs (~2 ms on a 5950X).
    let mut rng = DetRng::seed(42);
    let mut m = AccessProfile::new(64, 16);
    for t in 0..64 {
        for d in 0..16 {
            m.record(t, d, rng.below(10_000));
        }
    }
    let dist: Vec<Vec<u64>> = (0..16)
        .map(|j: usize| (0..16).map(|k: usize| j.abs_diff(k) as u64).collect())
        .collect();
    c.bench_function("placement_mcmf_64x16", |b| {
        b.iter(|| black_box(place_threads(&m, &dist, 4).unwrap()))
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_l1_10k_accesses", |b| {
        b.iter(|| {
            let mut cache = Cache::new(CacheConfig::l1_32k());
            let mut hits = 0u32;
            for i in 0..10_000u64 {
                if matches!(
                    cache.access((i * 64) % (64 * 1024), i % 4 == 0),
                    dl_mem::CacheOutcome::Hit
                ) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

criterion_group!(
    benches,
    bench_dram,
    bench_noc,
    bench_protocol,
    bench_placement,
    bench_cache
);
criterion_main!(benches);
