//! Criterion end-to-end benches: one small cell per paper figure/table, so
//! `cargo bench` exercises every experiment path. The full-size figure
//! regenerators are the `dl-bench` binaries (`cargo run --release -p
//! dl-bench --bin fig10_p2p` etc.); these benches run scaled-down instances
//! and report simulator wall time.

use criterion::{criterion_group, criterion_main, Criterion};
use dimm_link::config::{IdcKind, PollingStrategy, SystemConfig};
use dimm_link::runner::{host_baseline, simulate, simulate_optimized};
use dl_noc::TopologyKind;
use dl_workloads::{synth, WorkloadKind, WorkloadParams};
use std::hint::black_box;

fn params(dimms: usize) -> WorkloadParams {
    WorkloadParams {
        scale: 8,
        ..WorkloadParams::small(dimms)
    }
}

fn fig01_cell(c: &mut Criterion) {
    c.bench_function("fig01_bulk_copy_mcn", |b| {
        let wl = synth::bulk_copy(&params(4), 64 * 64);
        let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::CpuForwarding);
        b.iter(|| black_box(simulate(&wl, &cfg).elapsed))
    });
}

fn table1_cell(c: &mut Criterion) {
    c.bench_function("table1_stream_dimm_link", |b| {
        let wl = synth::bulk_copy(&params(4), 64 * 64);
        let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
        b.iter(|| black_box(simulate(&wl, &cfg).elapsed))
    });
}

fn fig10_cell(c: &mut Criterion) {
    let wl = WorkloadKind::Pagerank.build(&params(8));
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for idc in [
        IdcKind::CpuForwarding,
        IdcKind::DedicatedBus,
        IdcKind::DimmLink,
    ] {
        let cfg = SystemConfig::nmp(8, 4).with_idc(idc);
        g.bench_function(format!("pr_8d4c_{idc}"), |b| {
            b.iter(|| black_box(simulate(&wl, &cfg).elapsed))
        });
    }
    g.bench_function("pr_8d4c_host", |b| {
        b.iter(|| black_box(host_baseline(WorkloadKind::Pagerank, 8, 42).elapsed))
    });
    g.bench_function("pr_8d4c_dl_opt", |b| {
        let cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
        b.iter(|| black_box(simulate_optimized(&wl, &cfg).elapsed))
    });
    g.finish();
}

fn fig11_cell(c: &mut Criterion) {
    c.bench_function("fig11_breakdown_bfs", |b| {
        let wl = WorkloadKind::Bfs.build(&params(8));
        let cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
        b.iter(|| black_box(simulate(&wl, &cfg).traffic_breakdown()))
    });
}

fn fig12_cell(c: &mut Criterion) {
    let bc = WorkloadParams {
        broadcast: true,
        ..params(8)
    };
    let wl = WorkloadKind::Spmv.build(&bc);
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    for idc in [IdcKind::AbcDimm, IdcKind::DimmLink] {
        let cfg = SystemConfig::nmp(8, 4).with_idc(idc);
        g.bench_function(format!("spmv_bc_{idc}"), |b| {
            b.iter(|| black_box(simulate(&wl, &cfg).elapsed))
        });
    }
    g.finish();
}

fn fig13_cell(c: &mut Criterion) {
    c.bench_function("fig13_energy_sssp_dl", |b| {
        let wl = WorkloadKind::Sssp.build(&params(8));
        let cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
        b.iter(|| black_box(simulate(&wl, &cfg).energy.total()))
    });
}

fn fig14_cell(c: &mut Criterion) {
    c.bench_function("fig14_sync_sweep_hier", |b| {
        let wl = synth::sync_sweep(&params(8), 500, 30);
        let cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
        b.iter(|| black_box(simulate(&wl, &cfg).elapsed))
    });
    c.bench_function("fig14_tspow_dl", |b| {
        let wl = WorkloadKind::TsPow.build(&params(8));
        let cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
        b.iter(|| black_box(simulate(&wl, &cfg).elapsed))
    });
}

fn fig15_cell(c: &mut Criterion) {
    c.bench_function("fig15_polling_proxy_itrpt", |b| {
        let wl = WorkloadKind::Sssp.build(&params(8));
        let mut cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
        cfg.polling = PollingStrategy::ProxyInterrupt;
        b.iter(|| black_box(simulate(&wl, &cfg).bus_occupancy()))
    });
}

fn fig16_cell(c: &mut Criterion) {
    c.bench_function("fig16_bandwidth_64g", |b| {
        let wl = WorkloadKind::Hotspot.build(&params(8));
        let mut cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
        cfg.link = cfg.link.with_bandwidth(64_000_000_000);
        b.iter(|| black_box(simulate(&wl, &cfg).elapsed))
    });
}

fn fig17_cell(c: &mut Criterion) {
    c.bench_function("fig17_torus", |b| {
        let wl = WorkloadKind::Pagerank.build(&params(8));
        let mut cfg = SystemConfig::nmp(8, 4).with_idc(IdcKind::DimmLink);
        cfg.topology = TopologyKind::Torus;
        b.iter(|| black_box(simulate(&wl, &cfg).elapsed))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = fig01_cell, table1_cell, fig10_cell, fig11_cell, fig12_cell, fig13_cell, fig14_cell, fig15_cell, fig16_cell, fig17_cell
}
criterion_main!(figures);
