//! Work-stealing sweep runner shared by every figure/table binary.
//!
//! Each paper figure is a sweep over independent `(workload, SystemConfig)`
//! points. This module runs those points across `min(points, threads)`
//! workers (plain `std::thread` + channels; the workspace builds offline
//! with no extra dependencies) while keeping the output **bit-identical
//! regardless of thread count**:
//!
//! * every point is fully described by its [`Job`] — seeds come from the
//!   point itself, never from worker identity;
//! * results are collected back in **submission order**, so the record
//!   stream, the derived tables, and the JSON-lines artifact do not depend
//!   on scheduling;
//! * wall-clock timing is kept out of the serialized records
//!   (`#[serde(skip)]`), so `target/sweeps/<name>.jsonl` can be `diff`ed
//!   across machines and thread counts.
//!
//! Thread count resolution: explicit option > `DL_THREADS` env var >
//! `std::thread::available_parallelism()`.
//!
//! ```no_run
//! use dl_bench::sweep::Sweep;
//! use dimm_link::config::{IdcKind, SystemConfig};
//! use dl_workloads::{WorkloadKind, WorkloadParams};
//!
//! let mut sweep = Sweep::new("example");
//! let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
//! let params = WorkloadParams { scale: 8, ..WorkloadParams::small(4) };
//! let i = sweep.simulate("km 4D-2C", WorkloadKind::KMeans, params, cfg);
//! let out = sweep.run().unwrap();
//! println!("elapsed: {} ps", out.records[i].elapsed_ps);
//! ```

use dimm_link::config::SystemConfig;
use dimm_link::runner::{host_baseline, simulate, simulate_optimized, RunResult};
use dimm_link::EnergyBreakdown;
use dl_engine::stats::StatSet;
use dl_engine::Ps;
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;
use std::fmt;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

/// What one sweep point executes. Everything a job needs (notably the
/// seed) lives in the job itself so any worker produces the same result.
pub enum Job {
    /// `runner::simulate` / `runner::simulate_optimized` on an NMP system.
    Simulate {
        /// Workload selector; the workload is built inside the worker.
        kind: WorkloadKind,
        /// Workload parameters (carry the seed and scale).
        params: WorkloadParams,
        /// System under test (boxed: `SystemConfig` dwarfs the other
        /// variants).
        cfg: Box<SystemConfig>,
        /// Apply Algorithm 1 (profile + min-cost max-flow placement).
        optimized: bool,
    },
    /// The fixed 16-core host baseline.
    HostBaseline {
        /// Workload selector.
        kind: WorkloadKind,
        /// Problem scale.
        scale: u32,
        /// Input seed.
        seed: u64,
    },
    /// Anything else (raw `NmpSystem` runs, IDC microbenchmarks, model
    /// cross-checks). The closure must be deterministic to keep the sweep
    /// artifact thread-count-independent.
    Custom(Box<dyn Fn() -> RunResult + Send + Sync>),
}

/// A labelled unit of work in a sweep.
pub struct SweepPoint {
    /// Row label, e.g. `"pr / 16D-8C / DIMM-Link"`.
    pub label: String,
    /// Human-readable configuration summary stored in the record.
    pub config: String,
    /// The work itself.
    pub job: Job,
}

/// One finished sweep point, as serialized to the JSON-lines artifact.
///
/// `wall_clock_ms` is measurement noise, not simulation output, so it is
/// excluded from serialization — the artifact stays byte-identical across
/// thread counts and machines.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Point label (submission order is preserved).
    pub label: String,
    /// Configuration summary.
    pub config: String,
    /// End-to-end simulated time in picoseconds.
    pub elapsed_ps: u64,
    /// Simulated time spent in the profiling phase (zero unless optimized).
    pub profiling_ps: u64,
    /// All raw counters of the run.
    pub stats: StatSet,
    /// Energy split by component.
    pub energy: EnergyBreakdown,
    /// Host wall-clock time spent simulating this point.
    #[serde(skip)]
    pub wall_clock_ms: f64,
}

impl RunRecord {
    /// Simulated elapsed time as a typed duration.
    pub fn elapsed(&self) -> Ps {
        Ps::from_ps(self.elapsed_ps)
    }

    /// Simulated elapsed time in picoseconds as `f64` (ratio math).
    pub fn elapsed_f64(&self) -> f64 {
        self.elapsed_ps as f64
    }

    /// Profiling-phase time as a typed duration.
    pub fn profiling(&self) -> Ps {
        Ps::from_ps(self.profiling_ps)
    }

    /// Fraction of core time stalled on non-overlapped IDC.
    pub fn idc_stall_frac(&self) -> f64 {
        self.stats.get("idc_stall_frac").unwrap_or(0.0)
    }

    /// Mean memory-channel occupancy.
    pub fn bus_occupancy(&self) -> f64 {
        self.stats.get("host.bus_occupancy").unwrap_or(0.0)
    }

    /// Traffic fractions `(local, link, host-forwarded, bus)` by bytes.
    pub fn traffic_breakdown(&self) -> (f64, f64, f64, f64) {
        let g = |k: &str| self.stats.get(k).unwrap_or(0.0);
        let local = g("traffic.local_bytes");
        let link = g("traffic.link_bytes");
        let fwd = g("traffic.fwd_bytes");
        let bus = g("traffic.bus_bytes");
        let total = local + link + fwd + bus;
        if total == 0.0 {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            (local / total, link / total, fwd / total, bus / total)
        }
    }
}

/// A sweep point failed (in practice: its job panicked).
#[derive(Debug, Clone)]
pub struct SweepError {
    /// Label of the failing point.
    pub label: String,
    /// Panic payload or error text.
    pub message: String,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep point '{}' failed: {}", self.label, self.message)
    }
}

impl std::error::Error for SweepError {}

/// Execution knobs, usually filled from [`crate::Args`].
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; `None` falls back to `DL_THREADS`, then to
    /// `available_parallelism()`.
    pub threads: Option<usize>,
    /// Artifact directory; `None` means `target/sweeps`.
    pub out_dir: Option<PathBuf>,
    /// Suppress the summary line and skip writing the artifact (tests).
    pub quiet: bool,
}

/// Resolves the worker-thread count: explicit request, else `DL_THREADS`,
/// else `available_parallelism()` (at least 1).
pub fn resolve_threads(requested: Option<usize>) -> usize {
    requested
        .or_else(|| {
            std::env::var("DL_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// A declarative list of sweep points; build it up, then [`Sweep::run`].
pub struct Sweep {
    name: String,
    points: Vec<SweepPoint>,
}

/// What [`Sweep::run`] returns: records in submission order plus timing.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One record per submitted point, in submission order.
    pub records: Vec<RunRecord>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Wall-clock time of the whole sweep.
    pub wall_ms: f64,
    /// Sum of per-point wall times (what a serial run would have cost).
    pub serial_estimate_ms: f64,
    /// Where the JSON-lines artifact was written, if it was.
    pub path: Option<PathBuf>,
}

impl Sweep {
    /// Creates an empty sweep named `name` (also the artifact file stem).
    pub fn new(name: impl Into<String>) -> Self {
        Sweep {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Number of submitted points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points have been submitted.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Submits a fully-formed point; returns its submission index.
    pub fn push(&mut self, point: SweepPoint) -> usize {
        self.points.push(point);
        self.points.len() - 1
    }

    /// Submits a plain `simulate` point; returns its submission index.
    pub fn simulate(
        &mut self,
        label: impl Into<String>,
        kind: WorkloadKind,
        params: WorkloadParams,
        cfg: SystemConfig,
    ) -> usize {
        self.sim_point(label.into(), kind, params, cfg, false)
    }

    /// Submits a `simulate_optimized` (Algorithm 1) point.
    pub fn simulate_optimized(
        &mut self,
        label: impl Into<String>,
        kind: WorkloadKind,
        params: WorkloadParams,
        cfg: SystemConfig,
    ) -> usize {
        self.sim_point(label.into(), kind, params, cfg, true)
    }

    fn sim_point(
        &mut self,
        label: String,
        kind: WorkloadKind,
        params: WorkloadParams,
        cfg: SystemConfig,
        optimized: bool,
    ) -> usize {
        let config = format!(
            "{}D-{}C {}{}",
            cfg.dimms,
            cfg.channels,
            cfg.idc,
            if optimized { " opt" } else { "" }
        );
        self.push(SweepPoint {
            label,
            config,
            job: Job::Simulate {
                kind,
                params,
                cfg: Box::new(cfg),
                optimized,
            },
        })
    }

    /// Submits a host-baseline point.
    pub fn host(
        &mut self,
        label: impl Into<String>,
        kind: WorkloadKind,
        scale: u32,
        seed: u64,
    ) -> usize {
        self.push(SweepPoint {
            label: label.into(),
            config: "host-16core".into(),
            job: Job::HostBaseline { kind, scale, seed },
        })
    }

    /// Submits an arbitrary deterministic closure as a point.
    pub fn custom(
        &mut self,
        label: impl Into<String>,
        config: impl Into<String>,
        f: impl Fn() -> RunResult + Send + Sync + 'static,
    ) -> usize {
        self.push(SweepPoint {
            label: label.into(),
            config: config.into(),
            job: Job::Custom(Box::new(f)),
        })
    }

    /// Runs with defaults (env-resolved threads, `target/sweeps`).
    pub fn run(self) -> Result<SweepOutcome, SweepError> {
        self.run_with(&SweepOptions::default())
    }

    /// Runs every point across `min(points, threads)` workers, collecting
    /// records in submission order, writing the JSON-lines artifact, and
    /// printing the per-sweep summary.
    ///
    /// # Errors
    /// Returns the first (in submission order) point whose job panicked;
    /// the remaining workers finish their in-flight points and stop.
    pub fn run_with(self, opts: &SweepOptions) -> Result<SweepOutcome, SweepError> {
        let Sweep { name, points } = self;
        let threads = resolve_threads(opts.threads).min(points.len()).max(1);
        let started = Instant::now();

        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<RunRecord, String>)>();
        let mut slots: Vec<Option<Result<RunRecord, String>>> =
            (0..points.len()).map(|_| None).collect();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let next = &next;
                let points = &points;
                scope.spawn(move || {
                    loop {
                        let idx = next.fetch_add(1, Ordering::Relaxed);
                        let Some(point) = points.get(idx) else { break };
                        let t0 = Instant::now();
                        let outcome = catch_unwind(AssertUnwindSafe(|| execute(&point.job)));
                        let wall_clock_ms = t0.elapsed().as_secs_f64() * 1e3;
                        let result = match outcome {
                            Ok(r) => Ok(RunRecord {
                                label: point.label.clone(),
                                config: point.config.clone(),
                                elapsed_ps: r.elapsed.as_ps(),
                                profiling_ps: r.profiling.as_ps(),
                                stats: r.stats,
                                energy: r.energy,
                                wall_clock_ms,
                            }),
                            Err(payload) => Err(panic_text(payload.as_ref())),
                        };
                        let failed = result.is_err();
                        if tx.send((idx, result)).is_err() {
                            break;
                        }
                        if failed {
                            // Let siblings drain: skip all remaining work.
                            next.store(points.len(), Ordering::Relaxed);
                        }
                    }
                });
            }
            drop(tx);
            for (idx, result) in rx {
                slots[idx] = Some(result);
            }
        });

        let mut records = Vec::with_capacity(points.len());
        for (idx, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Ok(record)) => records.push(record),
                Some(Err(message)) => {
                    return Err(SweepError {
                        label: points[idx].label.clone(),
                        message,
                    })
                }
                // A point after a failure was never executed; report the
                // failure (found above in submission order) instead.
                None => {
                    return Err(SweepError {
                        label: points[idx].label.clone(),
                        message: "skipped after an earlier point failed".into(),
                    })
                }
            }
        }

        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let serial_estimate_ms: f64 = records.iter().map(|r| r.wall_clock_ms).sum();
        let path = if opts.quiet {
            None
        } else {
            write_jsonl(
                opts.out_dir
                    .as_deref()
                    .unwrap_or(Path::new("target/sweeps")),
                &name,
                &records,
            )
        };

        let outcome = SweepOutcome {
            records,
            threads,
            wall_ms,
            serial_estimate_ms,
            path,
        };
        if !opts.quiet {
            eprintln!("{}", outcome.summary_line(&name));
        }
        Ok(outcome)
    }
}

impl SweepOutcome {
    /// The one-line sweep summary: points, simulated time, wall time, and
    /// speedup over the serial estimate.
    pub fn summary_line(&self, name: &str) -> String {
        let sim: u64 = self.records.iter().map(|r| r.elapsed_ps).sum();
        let speedup = if self.wall_ms > 0.0 {
            self.serial_estimate_ms / self.wall_ms
        } else {
            1.0
        };
        let saved = match &self.path {
            Some(p) => format!(", saved {}", p.display()),
            None => String::new(),
        };
        format!(
            "[sweep {name}: {} points on {} threads, sim {}, wall {:.0} ms, {:.1}x vs serial estimate{saved}]",
            self.records.len(),
            self.threads,
            Ps::from_ps(sim),
            self.wall_ms,
            speedup,
        )
    }
}

fn execute(job: &Job) -> RunResult {
    match job {
        Job::Simulate {
            kind,
            params,
            cfg,
            optimized,
        } => {
            let wl = kind.build(params);
            if *optimized {
                simulate_optimized(&wl, cfg)
            } else {
                simulate(&wl, cfg)
            }
        }
        Job::HostBaseline { kind, scale, seed } => {
            let host = host_baseline(*kind, *scale, *seed);
            RunResult {
                elapsed: host.elapsed,
                profiling: Ps::ZERO,
                stats: host.stats,
                energy: EnergyBreakdown::default(),
            }
        }
        Job::Custom(f) => f(),
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".into()
    }
}

fn write_jsonl(dir: &Path, name: &str, records: &[RunRecord]) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("{name}.jsonl"));
    let mut f = std::fs::File::create(&path).ok()?;
    for record in records {
        let line = serde_json::to_string(record).ok()?;
        writeln!(f, "{line}").ok()?;
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimm_link::config::IdcKind;

    fn custom_result(ps: u64) -> RunResult {
        let mut stats = StatSet::new();
        stats.set("point.value", ps as f64);
        RunResult {
            elapsed: Ps::from_ps(ps),
            profiling: Ps::ZERO,
            stats,
            energy: EnergyBreakdown::default(),
        }
    }

    fn quiet() -> SweepOptions {
        SweepOptions {
            quiet: true,
            ..SweepOptions::default()
        }
    }

    #[test]
    fn submission_order_survives_contention() {
        // Early points sleep longest, so with several workers the completion
        // order inverts the submission order; the records must not.
        let mut sweep = Sweep::new("order");
        for i in 0..12u64 {
            sweep.custom(format!("p{i}"), "test", move || {
                std::thread::sleep(std::time::Duration::from_millis(12 - i));
                custom_result(i)
            });
        }
        let out = sweep
            .run_with(&SweepOptions {
                threads: Some(4),
                ..quiet()
            })
            .unwrap();
        assert_eq!(out.threads, 4);
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.label, format!("p{i}"));
            assert_eq!(r.elapsed_ps, i as u64);
        }
    }

    fn small_sweep(name: &str) -> Sweep {
        let mut sweep = Sweep::new(name);
        for (i, kind) in [
            WorkloadKind::KMeans,
            WorkloadKind::Hotspot,
            WorkloadKind::Bfs,
        ]
        .into_iter()
        .enumerate()
        {
            let params = WorkloadParams {
                scale: 7,
                seed: 42 + i as u64,
                ..WorkloadParams::small(4)
            };
            let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
            sweep.simulate(kind.to_string(), kind, params, cfg);
        }
        sweep.host("host km", WorkloadKind::KMeans, 7, 42);
        sweep
    }

    #[test]
    fn identical_artifact_for_1_and_n_threads() {
        let dir = std::env::temp_dir().join(format!("dl-sweep-test-{}", std::process::id()));
        let run = |threads: usize, sub: &str| {
            let out = small_sweep("det")
                .run_with(&SweepOptions {
                    threads: Some(threads),
                    out_dir: Some(dir.join(sub)),
                    quiet: false,
                })
                .unwrap();
            std::fs::read(out.path.expect("artifact written")).unwrap()
        };
        let serial = run(1, "t1");
        let parallel = run(4, "t4");
        assert!(!serial.is_empty());
        assert_eq!(serial, parallel, "artifact must not depend on thread count");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let out = Sweep::new("empty").run_with(&quiet()).unwrap();
        assert!(out.records.is_empty());
        assert_eq!(out.threads, 1);
    }

    #[test]
    fn panicking_point_is_a_labeled_error() {
        let mut sweep = Sweep::new("boom");
        sweep.custom("fine", "test", || custom_result(1));
        sweep.custom("exploder", "test", || panic!("intentional test panic"));
        let err = sweep
            .run_with(&SweepOptions {
                threads: Some(2),
                ..quiet()
            })
            .unwrap_err();
        assert_eq!(err.label, "exploder");
        assert!(err.message.contains("intentional test panic"), "{err}");
    }

    #[test]
    fn failure_does_not_poison_the_pool() {
        // After a panic the sweep still shuts down cleanly even with many
        // queued points and fewer workers than points.
        let mut sweep = Sweep::new("poison");
        sweep.custom("bang", "test", || panic!("first point dies"));
        for i in 0..8u64 {
            sweep.custom(format!("later{i}"), "test", move || custom_result(i));
        }
        let err = sweep
            .run_with(&SweepOptions {
                threads: Some(2),
                ..quiet()
            })
            .unwrap_err();
        assert_eq!(err.label, "bang");
    }

    #[test]
    fn thread_resolution_prefers_explicit_request() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn records_carry_derived_metrics() {
        let out = small_sweep("metrics").run_with(&quiet()).unwrap();
        let r = &out.records[0];
        assert!(r.elapsed_ps > 0);
        assert_eq!(r.elapsed(), Ps::from_ps(r.elapsed_ps));
        let (a, b, c, d) = r.traffic_breakdown();
        assert!((a + b + c + d - 1.0).abs() < 1e-9 || (a, b, c, d) == (0.0, 0.0, 0.0, 0.0));
        assert_eq!(out.records[3].config, "host-16core");
    }
}
