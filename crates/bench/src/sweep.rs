//! Work-stealing sweep runner shared by every figure/table binary.
//!
//! Each paper figure is a sweep over independent `(workload, SystemConfig)`
//! points. This module runs those points across `min(points, threads)`
//! workers (plain `std::thread` + channels; the workspace builds offline
//! with no extra dependencies) while keeping the output **bit-identical
//! regardless of thread count**:
//!
//! * every point is fully described by its [`Job`] — seeds come from the
//!   point itself, never from worker identity;
//! * results are collected back in **submission order**, so the record
//!   stream, the derived tables, and the JSON-lines artifact do not depend
//!   on scheduling;
//! * wall-clock timing is kept out of the serialized records
//!   (`#[serde(skip)]`), so `target/sweeps/<name>.jsonl` can be `diff`ed
//!   across machines and thread counts.
//!
//! # Crash safety
//!
//! Long sweeps survive kills, OOMs, and individual bad points:
//!
//! * every finished point is appended **immediately** to a journal
//!   (`<out>/<name>.journal.jsonl`, one fsync'd line per point keyed by a
//!   content hash of the point's label, config, and job parameters);
//! * with [`SweepOptions::resume`], journaled points are loaded instead of
//!   re-simulated, and the final artifact is still emitted in submission
//!   order — byte-identical to an uninterrupted run at any thread count;
//! * the artifact itself is written to `<name>.jsonl.tmp` and atomically
//!   renamed, so a killed process never leaves a truncated artifact;
//! * a panicking point is journaled as `failed`, the remaining points run
//!   to completion, and the artifact of successful points is still
//!   written; the sweep then reports the first failure;
//! * an optional wall-clock watchdog ([`SweepOptions::point_budget`])
//!   journals a hung point as `timed_out` and moves on. Wall-clock time is
//!   inherently nondeterministic, which is why this budget lives here in
//!   `crates/bench` (the only crate the `wall-clock` lint allows to read
//!   host time); *deterministic* per-point budgets are the engine's
//!   event/sim-time [`dl_engine::RunBudget`], applied with
//!   [`Sweep::apply_budget`].
//!
//! Thread count resolution: explicit option > `DL_THREADS` env var >
//! `std::thread::available_parallelism()`.
//!
//! ```no_run
//! use dl_bench::sweep::Sweep;
//! use dimm_link::config::{IdcKind, SystemConfig};
//! use dl_workloads::{WorkloadKind, WorkloadParams};
//!
//! let mut sweep = Sweep::new("example");
//! let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
//! let params = WorkloadParams { scale: 8, ..WorkloadParams::small(4) };
//! let i = sweep.simulate("km 4D-2C", WorkloadKind::KMeans, params, cfg);
//! let out = sweep.run().unwrap();
//! println!("elapsed: {} ps", out.records[i].elapsed_ps);
//! ```

use dimm_link::config::SystemConfig;
use dimm_link::runner::{host_baseline, simulate_optimized_with, simulate_with, RunResult};
use dimm_link::EnergyBreakdown;
use dl_engine::stats::StatSet;
use dl_engine::{Ps, RunBudget, RunStatus};
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// What one sweep point executes. Everything a job needs (notably the
/// seed) lives in the job itself so any worker produces the same result.
pub enum Job {
    /// `runner::simulate` / `runner::simulate_optimized` on an NMP system.
    Simulate {
        /// Workload selector; the workload is built inside the worker.
        kind: WorkloadKind,
        /// Workload parameters (carry the seed and scale).
        params: WorkloadParams,
        /// System under test (boxed: `SystemConfig` dwarfs the other
        /// variants).
        cfg: Box<SystemConfig>,
        /// Apply Algorithm 1 (profile + min-cost max-flow placement).
        optimized: bool,
    },
    /// The fixed 16-core host baseline.
    HostBaseline {
        /// Workload selector.
        kind: WorkloadKind,
        /// Problem scale.
        scale: u32,
        /// Input seed.
        seed: u64,
    },
    /// Anything else (raw `NmpSystem` runs, IDC microbenchmarks, model
    /// cross-checks). The closure must be deterministic to keep the sweep
    /// artifact thread-count-independent.
    Custom(Box<dyn Fn() -> RunResult + Send + Sync>),
}

/// A labelled unit of work in a sweep.
pub struct SweepPoint {
    /// Row label, e.g. `"pr / 16D-8C / DIMM-Link"`.
    pub label: String,
    /// Human-readable configuration summary stored in the record.
    pub config: String,
    /// The work itself.
    pub job: Job,
}

/// One finished sweep point, as serialized to the JSON-lines artifact.
///
/// `wall_clock_ms` is measurement noise, not simulation output, so it is
/// excluded from serialization — the artifact stays byte-identical across
/// thread counts and machines, and a record loaded back from the journal
/// re-serializes to exactly the bytes that were written.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunRecord {
    /// Point label (submission order is preserved).
    pub label: String,
    /// Configuration summary.
    pub config: String,
    /// End-to-end simulated time in picoseconds.
    pub elapsed_ps: u64,
    /// Simulated time spent in the profiling phase (zero unless optimized).
    pub profiling_ps: u64,
    /// All raw counters of the run.
    pub stats: StatSet,
    /// Energy split by component.
    pub energy: EnergyBreakdown,
    /// Whether the run completed or a deterministic [`RunBudget`] cut it
    /// short.
    pub status: RunStatus,
    /// Host wall-clock time spent simulating this point.
    #[serde(skip)]
    pub wall_clock_ms: f64,
}

impl RunRecord {
    /// Simulated elapsed time as a typed duration.
    pub fn elapsed(&self) -> Ps {
        Ps::from_ps(self.elapsed_ps)
    }

    /// Simulated elapsed time in picoseconds as `f64` (ratio math).
    pub fn elapsed_f64(&self) -> f64 {
        self.elapsed_ps as f64
    }

    /// Profiling-phase time as a typed duration.
    pub fn profiling(&self) -> Ps {
        Ps::from_ps(self.profiling_ps)
    }

    /// Fraction of core time stalled on non-overlapped IDC.
    pub fn idc_stall_frac(&self) -> f64 {
        self.stats.get("idc_stall_frac").unwrap_or(0.0)
    }

    /// Mean memory-channel occupancy.
    pub fn bus_occupancy(&self) -> f64 {
        self.stats.get("host.bus_occupancy").unwrap_or(0.0)
    }

    /// Traffic fractions `(local, link, host-forwarded, bus)` by bytes.
    pub fn traffic_breakdown(&self) -> (f64, f64, f64, f64) {
        let g = |k: &str| self.stats.get(k).unwrap_or(0.0);
        let local = g("traffic.local_bytes");
        let link = g("traffic.link_bytes");
        let fwd = g("traffic.fwd_bytes");
        let bus = g("traffic.bus_bytes");
        let total = local + link + fwd + bus;
        if total == 0.0 {
            (0.0, 0.0, 0.0, 0.0)
        } else {
            (local / total, link / total, fwd / total, bus / total)
        }
    }
}

/// How one sweep point ended, as journaled. `Done` entries are reused by
/// `--resume`; `Failed` and `TimedOut` entries are re-run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PointOutcome {
    /// The point finished and produced a record.
    Done(RunRecord),
    /// The point panicked.
    Failed {
        /// Panic payload text.
        message: String,
    },
    /// The wall-clock watchdog gave up on the point.
    TimedOut {
        /// The watchdog budget that expired, in milliseconds.
        budget_ms: u64,
    },
}

/// One line of the crash-safety journal.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JournalLine {
    /// Content hash of the point (label + config + job parameters).
    key: String,
    /// What happened to it.
    outcome: PointOutcome,
}

/// A sweep point failed (its job panicked, timed out, or never ran).
#[derive(Debug, Clone)]
pub struct SweepError {
    /// Label of the first failing point in submission order.
    pub label: String,
    /// Panic payload or error text.
    pub message: String,
    /// Points that completed and were journaled despite the failure.
    pub completed: usize,
    /// Points that failed, timed out, or never ran.
    pub failed: usize,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep point '{}' failed: {}", self.label, self.message)?;
        if self.completed > 0 || self.failed > 1 {
            write!(
                f,
                " [{} completed and journaled, {} failed]",
                self.completed, self.failed
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for SweepError {}

/// Execution knobs, usually filled from [`crate::Args`].
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; `None` falls back to `DL_THREADS`, then to
    /// `available_parallelism()`.
    pub threads: Option<usize>,
    /// Artifact directory; `None` means `target/sweeps`.
    pub out_dir: Option<PathBuf>,
    /// Suppress the summary line and skip writing the artifact and journal
    /// (tests).
    pub quiet: bool,
    /// Load previously journaled points instead of re-simulating them.
    pub resume: bool,
    /// Wall-clock watchdog per point: a point still running after this
    /// long is journaled as `timed_out` and the sweep moves on (its worker
    /// thread is left behind — safe Rust cannot kill it). `None` disables
    /// the watchdog. Nondeterministic by nature; prefer
    /// [`Sweep::apply_budget`] for reproducible cut-offs.
    pub point_budget: Option<Duration>,
    /// Test hook simulating a killed process: dispatch only this many
    /// not-yet-journaled points, journal them, then bail out with an error
    /// before writing the artifact.
    pub halt_after: Option<usize>,
    /// Intra-run DES worker threads per point (the DIMM-partitioned
    /// engine; see `dimm_link::runner::simulate_with`). Results are
    /// byte-identical at any value, so this is deliberately not part of a
    /// point's identity (`point_key`) — resumed journals match across
    /// different settings. `0` is treated as `1` (sequential).
    pub sim_threads: usize,
}

/// Resolves the worker-thread count: explicit request, else `DL_THREADS`,
/// else `available_parallelism()` (at least 1).
///
/// # Errors
/// Rejects an explicit zero and an unparsable or zero `DL_THREADS` (these
/// were previously ignored silently, masking typos like `DL_THREADS=abc`).
pub fn resolve_threads(requested: Option<usize>) -> Result<usize, String> {
    resolve_threads_with_env(requested, std::env::var("DL_THREADS").ok().as_deref())
}

/// [`resolve_threads`] with the environment value passed explicitly
/// (testable without racy `set_var` calls).
pub fn resolve_threads_with_env(
    requested: Option<usize>,
    env: Option<&str>,
) -> Result<usize, String> {
    if let Some(n) = requested {
        if n == 0 {
            return Err("thread count must be at least 1".into());
        }
        return Ok(n);
    }
    if let Some(v) = env {
        return match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => Ok(n),
            _ => Err(format!(
                "DL_THREADS='{v}' is not a positive integer (unset it or use DL_THREADS=4)"
            )),
        };
    }
    Ok(std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1))
}

/// A declarative list of sweep points; build it up, then [`Sweep::run`].
pub struct Sweep {
    name: String,
    points: Vec<SweepPoint>,
}

/// What [`Sweep::run`] returns: records in submission order plus timing.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One record per submitted point, in submission order.
    pub records: Vec<RunRecord>,
    /// Worker threads actually used.
    pub threads: usize,
    /// Points loaded from the journal instead of simulated (`--resume`).
    pub resumed: usize,
    /// Wall-clock time of the whole sweep.
    pub wall_ms: f64,
    /// Sum of per-point wall times (what a serial run would have cost).
    pub serial_estimate_ms: f64,
    /// Where the JSON-lines artifact was written, if it was.
    pub path: Option<PathBuf>,
}

impl Sweep {
    /// Creates an empty sweep named `name` (also the artifact file stem).
    pub fn new(name: impl Into<String>) -> Self {
        Sweep {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Number of submitted points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points have been submitted.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Submits a fully-formed point; returns its submission index.
    pub fn push(&mut self, point: SweepPoint) -> usize {
        self.points.push(point);
        self.points.len() - 1
    }

    /// Submits a plain `simulate` point; returns its submission index.
    pub fn simulate(
        &mut self,
        label: impl Into<String>,
        kind: WorkloadKind,
        params: WorkloadParams,
        cfg: SystemConfig,
    ) -> usize {
        self.sim_point(label.into(), kind, params, cfg, false)
    }

    /// Submits a `simulate_optimized` (Algorithm 1) point.
    pub fn simulate_optimized(
        &mut self,
        label: impl Into<String>,
        kind: WorkloadKind,
        params: WorkloadParams,
        cfg: SystemConfig,
    ) -> usize {
        self.sim_point(label.into(), kind, params, cfg, true)
    }

    fn sim_point(
        &mut self,
        label: String,
        kind: WorkloadKind,
        params: WorkloadParams,
        cfg: SystemConfig,
        optimized: bool,
    ) -> usize {
        let config = format!(
            "{}D-{}C {}{}",
            cfg.dimms,
            cfg.channels,
            cfg.idc,
            if optimized { " opt" } else { "" }
        );
        self.push(SweepPoint {
            label,
            config,
            job: Job::Simulate {
                kind,
                params,
                cfg: Box::new(cfg),
                optimized,
            },
        })
    }

    /// Submits a host-baseline point.
    pub fn host(
        &mut self,
        label: impl Into<String>,
        kind: WorkloadKind,
        scale: u32,
        seed: u64,
    ) -> usize {
        self.push(SweepPoint {
            label: label.into(),
            config: "host-16core".into(),
            job: Job::HostBaseline { kind, scale, seed },
        })
    }

    /// Submits an arbitrary deterministic closure as a point.
    pub fn custom(
        &mut self,
        label: impl Into<String>,
        config: impl Into<String>,
        f: impl Fn() -> RunResult + Send + Sync + 'static,
    ) -> usize {
        self.push(SweepPoint {
            label: label.into(),
            config: config.into(),
            job: Job::Custom(Box::new(f)),
        })
    }

    /// Applies a deterministic engine budget to every `Simulate` point.
    ///
    /// Host baselines and custom closures are not engine event loops, so
    /// they are unaffected; the wall-clock watchdog
    /// ([`SweepOptions::point_budget`]) still covers them. The budget is
    /// part of each point's journal key: budgeted and unbudgeted runs of
    /// the same sweep never reuse each other's journal entries.
    pub fn apply_budget(&mut self, budget: RunBudget) {
        if budget.is_unlimited() {
            return;
        }
        for p in &mut self.points {
            if let Job::Simulate { cfg, .. } = &mut p.job {
                cfg.budget = budget;
            }
        }
    }

    /// Runs with defaults (env-resolved threads, `target/sweeps`).
    ///
    /// # Errors
    /// See [`Sweep::run_with`].
    pub fn run(self) -> Result<SweepOutcome, SweepError> {
        self.run_with(&SweepOptions::default())
    }

    /// Runs every point across `min(points, threads)` workers, collecting
    /// records in submission order, journaling each finished point,
    /// writing the JSON-lines artifact atomically, and printing the
    /// per-sweep summary.
    ///
    /// Every point runs even if some fail: failures are journaled, the
    /// artifact of successful records is still written, and only then is
    /// the first failure (in submission order) reported.
    ///
    /// # Errors
    /// Returns the first (in submission order) point that panicked or
    /// timed out; `SweepError::completed` counts the work that was
    /// preserved. On `Ok`, `records` holds every point.
    pub fn run_with(self, opts: &SweepOptions) -> Result<SweepOutcome, SweepError> {
        let Sweep { name, points } = self;
        let total = points.len();
        let started = Instant::now();
        let artifacts = !opts.quiet;
        let out_dir = opts
            .out_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("target/sweeps"));

        // Content keys double as journal keys. Labels are kept aside for
        // error reporting (the points themselves move into the workers).
        let keys: Vec<String> = points.iter().map(point_key).collect();
        let labels: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
        let mut slots: Vec<Option<PointOutcome>> = (0..total).map(|_| None).collect();

        // Resume: prefill slots from the journal; only `Done` outcomes are
        // reused (failed/timed-out points get another chance).
        let journal_path = out_dir.join(format!("{name}.journal.jsonl"));
        let mut resumed = 0usize;
        if artifacts && opts.resume {
            let prior = load_journal(&journal_path);
            for (i, key) in keys.iter().enumerate() {
                if let Some(PointOutcome::Done(rec)) = prior.get(key) {
                    slots[i] = Some(PointOutcome::Done(rec.clone()));
                    resumed += 1;
                }
            }
        }
        let mut journal = if artifacts {
            let _ = std::fs::create_dir_all(&out_dir);
            Journal::open(&journal_path, opts.resume)
        } else {
            None
        };

        // Points still to run, in submission order.
        let mut pending: Vec<usize> = (0..total).filter(|&i| slots[i].is_none()).collect();
        if let Some(k) = opts.halt_after {
            pending.truncate(k);
        }

        let threads = resolve_threads(opts.threads)
            .map_err(|message| SweepError {
                label: "<sweep options>".into(),
                message,
                completed: 0,
                failed: total,
            })?
            .min(pending.len())
            .max(1);

        let (tx, rx) = mpsc::channel::<Msg>();
        let ctx = WorkerCtx {
            points: Arc::new(points),
            pending: Arc::new(pending.clone()),
            next: Arc::new(AtomicUsize::new(0)),
            sim_threads: opts.sim_threads.max(1),
            tx,
        };
        for _ in 0..threads {
            spawn_worker(ctx.clone());
        }
        // Keep a sender only if the watchdog may need replacement workers;
        // otherwise let the channel disconnect when the workers finish.
        let replacer = opts.point_budget.map(|_| ctx.clone());
        drop(ctx);

        let mut wall: Vec<f64> = vec![0.0; total];
        let mut inflight: BTreeMap<usize, Instant> = BTreeMap::new();
        let mut abandoned: BTreeSet<usize> = BTreeSet::new();
        let mut unresolved = pending.len();
        while unresolved > 0 {
            let earliest = opts
                .point_budget
                .and_then(|b| inflight.values().map(|&t0| t0 + b).min());
            let msg = match earliest {
                Some(deadline) => {
                    let wait = deadline.saturating_duration_since(Instant::now());
                    match rx.recv_timeout(wait) {
                        Ok(m) => Some(m),
                        Err(mpsc::RecvTimeoutError::Timeout) => None,
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                }
                None => match rx.recv() {
                    Ok(m) => Some(m),
                    Err(_) => break,
                },
            };
            match msg {
                Some(Msg::Started { slot }) => {
                    inflight.insert(slot, Instant::now());
                }
                Some(Msg::Finished {
                    slot,
                    result,
                    wall_ms,
                }) => {
                    if abandoned.contains(&slot) {
                        continue; // late finisher of a timed-out point
                    }
                    inflight.remove(&slot);
                    wall[slot] = wall_ms;
                    let outcome = match *result {
                        Ok(record) => PointOutcome::Done(record),
                        Err(message) => PointOutcome::Failed { message },
                    };
                    if let Some(j) = journal.as_mut() {
                        j.append(&keys[slot], &outcome);
                    }
                    slots[slot] = Some(outcome);
                    unresolved -= 1;
                }
                None => {
                    // Watchdog tick: give up on every point over budget.
                    let Some(budget) = opts.point_budget else {
                        continue;
                    };
                    let now = Instant::now();
                    let expired: Vec<usize> = inflight
                        .iter()
                        .filter(|&(_, &t0)| now.duration_since(t0) >= budget)
                        .map(|(&s, _)| s)
                        .collect();
                    for slot in expired {
                        inflight.remove(&slot);
                        abandoned.insert(slot);
                        let outcome = PointOutcome::TimedOut {
                            budget_ms: budget.as_millis() as u64,
                        };
                        if let Some(j) = journal.as_mut() {
                            j.append(&keys[slot], &outcome);
                        }
                        slots[slot] = Some(outcome);
                        unresolved -= 1;
                        // The stuck worker cannot be killed in safe Rust;
                        // restore parallelism with a fresh one.
                        if let Some(ctx) = &replacer {
                            spawn_worker(ctx.clone());
                        }
                    }
                }
            }
        }
        drop(rx);

        // Workers only exit without reporting on an abnormal break above.
        for &slot in &pending {
            if slots[slot].is_none() {
                slots[slot] = Some(PointOutcome::Failed {
                    message: "worker thread exited without reporting a result".into(),
                });
            }
        }

        if opts.halt_after.is_some() {
            // Simulated kill: journaled work stays, no artifact is written.
            let completed = slots
                .iter()
                .filter(|s| matches!(s, Some(PointOutcome::Done(_))))
                .count();
            return Err(SweepError {
                label: "<halted>".into(),
                message: format!("sweep halted by test hook after {} points", pending.len()),
                completed,
                failed: total - completed,
            });
        }

        let mut completed = 0usize;
        let mut failed = 0usize;
        let mut first_failure: Option<(usize, String)> = None;
        for (i, slot) in slots.iter().enumerate() {
            let problem = match slot {
                Some(PointOutcome::Done(_)) => {
                    completed += 1;
                    continue;
                }
                Some(PointOutcome::Failed { message }) => message.clone(),
                Some(PointOutcome::TimedOut { budget_ms }) => {
                    format!("timed out after {budget_ms} ms (wall-clock point budget)")
                }
                None => "never ran".into(),
            };
            failed += 1;
            if first_failure.is_none() {
                first_failure = Some((i, problem));
            }
        }

        let records: Vec<RunRecord> = slots
            .iter()
            .filter_map(|s| match s {
                Some(PointOutcome::Done(r)) => Some(r.clone()),
                _ => None,
            })
            .collect();

        let wall_ms = started.elapsed().as_secs_f64() * 1e3;
        let serial_estimate_ms: f64 = wall.iter().sum();
        let path = if artifacts {
            write_jsonl(&out_dir, &name, &records)
        } else {
            None
        };
        if failed == 0 {
            // The journal is a checkpoint, not an archive: once the full
            // artifact exists it has nothing left to protect.
            drop(journal.take());
            if artifacts {
                let _ = std::fs::remove_file(&journal_path);
            }
        }

        let outcome = SweepOutcome {
            records,
            threads,
            resumed,
            wall_ms,
            serial_estimate_ms,
            path,
        };
        if !opts.quiet {
            eprintln!("{}", outcome.summary_line(&name));
        }
        match first_failure {
            Some((i, message)) => Err(SweepError {
                label: labels[i].clone(),
                message,
                completed,
                failed,
            }),
            None => Ok(outcome),
        }
    }
}

impl SweepOutcome {
    /// The one-line sweep summary: points, simulated time, wall time, and
    /// speedup over the serial estimate.
    pub fn summary_line(&self, name: &str) -> String {
        let sim: u64 = self.records.iter().map(|r| r.elapsed_ps).sum();
        let speedup = if self.wall_ms > 0.0 {
            self.serial_estimate_ms / self.wall_ms
        } else {
            1.0
        };
        let saved = match &self.path {
            Some(p) => format!(", saved {}", p.display()),
            None => String::new(),
        };
        let resumed = if self.resumed > 0 {
            format!(" ({} resumed)", self.resumed)
        } else {
            String::new()
        };
        format!(
            "[sweep {name}: {} points{resumed} on {} threads, sim {}, wall {:.0} ms, {:.1}x vs serial estimate{saved}]",
            self.records.len(),
            self.threads,
            Ps::from_ps(sim),
            self.wall_ms,
            speedup,
        )
    }
}

/// Message from a worker to the collector.
enum Msg {
    /// A worker began executing the point at this submission index.
    Started { slot: usize },
    /// A worker finished the point (boxed: records dwarf the other arm).
    Finished {
        slot: usize,
        result: Box<Result<RunRecord, String>>,
        wall_ms: f64,
    },
}

/// Everything a worker needs; cloned per worker (and per watchdog
/// replacement).
#[derive(Clone)]
struct WorkerCtx {
    points: Arc<Vec<SweepPoint>>,
    /// Submission indices still to run, claimed in order via `next`.
    pending: Arc<Vec<usize>>,
    next: Arc<AtomicUsize>,
    /// Intra-run DES threads forwarded to each point's simulation.
    sim_threads: usize,
    tx: mpsc::Sender<Msg>,
}

/// Spawns a detached worker. Detached on purpose: a worker stuck inside a
/// hung point cannot be joined; the collector times the point out and the
/// thread dies with the process.
fn spawn_worker(ctx: WorkerCtx) {
    std::thread::spawn(move || loop {
        let i = ctx.next.fetch_add(1, Ordering::Relaxed);
        let Some(&slot) = ctx.pending.get(i) else {
            break;
        };
        let point = &ctx.points[slot];
        if ctx.tx.send(Msg::Started { slot }).is_err() {
            break; // collector is gone
        }
        let t0 = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| execute(&point.job, ctx.sim_threads)));
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let result = match outcome {
            Ok(r) => Ok(RunRecord {
                label: point.label.clone(),
                config: point.config.clone(),
                elapsed_ps: r.elapsed.as_ps(),
                profiling_ps: r.profiling.as_ps(),
                stats: r.stats,
                energy: r.energy,
                status: r.status,
                wall_clock_ms: wall_ms,
            }),
            Err(payload) => Err(panic_text(payload.as_ref())),
        };
        if ctx
            .tx
            .send(Msg::Finished {
                slot,
                result: Box::new(result),
                wall_ms,
            })
            .is_err()
        {
            break;
        }
    });
}

fn execute(job: &Job, sim_threads: usize) -> RunResult {
    match job {
        Job::Simulate {
            kind,
            params,
            cfg,
            optimized,
        } => {
            let wl = kind.build(params);
            if *optimized {
                simulate_optimized_with(&wl, cfg, sim_threads)
            } else {
                simulate_with(&wl, cfg, sim_threads)
            }
        }
        Job::HostBaseline { kind, scale, seed } => {
            let host = host_baseline(*kind, *scale, *seed);
            RunResult {
                elapsed: host.elapsed,
                profiling: Ps::ZERO,
                stats: host.stats,
                energy: EnergyBreakdown::default(),
                status: RunStatus::Completed,
            }
        }
        Job::Custom(f) => f(),
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".into()
    }
}

// ----------------------------------------------------------------------
// Journal
// ----------------------------------------------------------------------

/// 64-bit FNV-1a over length-delimited parts (so `("ab","c")` and
/// `("a","bc")` hash differently).
fn fnv1a64(parts: &[&[u8]]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for part in parts {
        for &b in *part {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
        for b in (part.len() as u64).to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    }
    h
}

/// Content hash identifying a sweep point across process restarts: label,
/// config summary, and the full job parameters (for `Simulate`, the
/// serialized workload parameters and `SystemConfig` — including any
/// engine budget). A `Custom` closure cannot be fingerprinted, so its
/// label and config must identify it (true for every figure binary).
fn point_key(p: &SweepPoint) -> String {
    let fingerprint = match &p.job {
        Job::Simulate {
            kind,
            params,
            cfg,
            optimized,
        } => format!(
            "sim:{kind}:{optimized}:{}:{}",
            serde_json::to_string(params).unwrap_or_default(),
            serde_json::to_string(cfg.as_ref()).unwrap_or_default(),
        ),
        Job::HostBaseline { kind, scale, seed } => format!("host:{kind}:{scale}:{seed}"),
        Job::Custom(_) => "custom".to_string(),
    };
    format!(
        "{:016x}",
        fnv1a64(&[
            p.label.as_bytes(),
            p.config.as_bytes(),
            fingerprint.as_bytes(),
        ])
    )
}

/// Append-only fsync'd journal of finished points.
struct Journal {
    file: std::fs::File,
}

impl Journal {
    /// Opens the journal: appending when resuming, truncating otherwise
    /// (a fresh run must not inherit stale entries). Returns `None` when
    /// the file cannot be opened — the sweep still runs, just unjournaled.
    fn open(path: &Path, resume: bool) -> Option<Journal> {
        let mut o = std::fs::OpenOptions::new();
        o.create(true);
        if resume {
            o.append(true);
        } else {
            o.write(true).truncate(true);
        }
        o.open(path).map(|file| Journal { file }).ok()
    }

    /// Appends one fsync'd line: a kill at any instant loses at most the
    /// line being written, which [`load_journal`] tolerates.
    fn append(&mut self, key: &str, outcome: &PointOutcome) {
        let line = JournalLine {
            key: key.to_string(),
            outcome: outcome.clone(),
        };
        if let Ok(text) = serde_json::to_string(&line) {
            let _ = writeln!(self.file, "{text}");
            let _ = self.file.sync_data();
        }
    }
}

/// Loads the journal into a key → outcome map. Later entries win (a
/// resumed run re-running a previously failed point appends the new
/// outcome after the old one); unparsable lines — typically one truncated
/// trailing line from a killed process — are skipped.
fn load_journal(path: &Path) -> BTreeMap<String, PointOutcome> {
    let mut map = BTreeMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return map;
    };
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if let Ok(entry) = serde_json::from_str::<JournalLine>(line) {
            map.insert(entry.key, entry.outcome);
        }
    }
    map
}

/// Writes the artifact to `<name>.jsonl.tmp`, fsyncs, then atomically
/// renames to `<name>.jsonl`: readers only ever see a complete file.
fn write_jsonl(dir: &Path, name: &str, records: &[RunRecord]) -> Option<PathBuf> {
    std::fs::create_dir_all(dir).ok()?;
    let path = dir.join(format!("{name}.jsonl"));
    let tmp = dir.join(format!("{name}.jsonl.tmp"));
    {
        let mut f = std::fs::File::create(&tmp).ok()?;
        for record in records {
            let line = serde_json::to_string(record).ok()?;
            writeln!(f, "{line}").ok()?;
        }
        f.sync_data().ok()?;
    }
    std::fs::rename(&tmp, &path).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dimm_link::config::IdcKind;

    fn custom_result(ps: u64) -> RunResult {
        let mut stats = StatSet::new();
        stats.set("point.value", ps as f64);
        RunResult {
            elapsed: Ps::from_ps(ps),
            profiling: Ps::ZERO,
            stats,
            energy: EnergyBreakdown::default(),
            status: RunStatus::Completed,
        }
    }

    fn quiet() -> SweepOptions {
        SweepOptions {
            quiet: true,
            ..SweepOptions::default()
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("dl-sweep-{tag}-{}", std::process::id()))
    }

    #[test]
    fn submission_order_survives_contention() {
        // Early points sleep longest, so with several workers the completion
        // order inverts the submission order; the records must not.
        let mut sweep = Sweep::new("order");
        for i in 0..12u64 {
            sweep.custom(format!("p{i}"), "test", move || {
                std::thread::sleep(std::time::Duration::from_millis(12 - i));
                custom_result(i)
            });
        }
        let out = sweep
            .run_with(&SweepOptions {
                threads: Some(4),
                ..quiet()
            })
            .unwrap();
        assert_eq!(out.threads, 4);
        for (i, r) in out.records.iter().enumerate() {
            assert_eq!(r.label, format!("p{i}"));
            assert_eq!(r.elapsed_ps, i as u64);
        }
    }

    fn small_sweep(name: &str) -> Sweep {
        let mut sweep = Sweep::new(name);
        for (i, kind) in [
            WorkloadKind::KMeans,
            WorkloadKind::Hotspot,
            WorkloadKind::Bfs,
        ]
        .into_iter()
        .enumerate()
        {
            let params = WorkloadParams {
                scale: 7,
                seed: 42 + i as u64,
                ..WorkloadParams::small(4)
            };
            let cfg = SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink);
            sweep.simulate(kind.to_string(), kind, params, cfg);
        }
        sweep.host("host km", WorkloadKind::KMeans, 7, 42);
        sweep
    }

    #[test]
    fn identical_artifact_for_1_and_n_threads() {
        let dir = temp_dir("det");
        let run = |threads: usize, sub: &str| {
            let out = small_sweep("det")
                .run_with(&SweepOptions {
                    threads: Some(threads),
                    out_dir: Some(dir.join(sub)),
                    quiet: false,
                    ..SweepOptions::default()
                })
                .unwrap();
            std::fs::read(out.path.expect("artifact written")).unwrap()
        };
        let serial = run(1, "t1");
        let parallel = run(4, "t4");
        assert!(!serial.is_empty());
        assert_eq!(serial, parallel, "artifact must not depend on thread count");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_sweep_is_fine() {
        let out = Sweep::new("empty").run_with(&quiet()).unwrap();
        assert!(out.records.is_empty());
        assert_eq!(out.threads, 1);
    }

    #[test]
    fn panicking_point_is_a_labeled_error() {
        let mut sweep = Sweep::new("boom");
        sweep.custom("fine", "test", || custom_result(1));
        sweep.custom("exploder", "test", || panic!("intentional test panic"));
        let err = sweep
            .run_with(&SweepOptions {
                threads: Some(2),
                ..quiet()
            })
            .unwrap_err();
        assert_eq!(err.label, "exploder");
        assert!(err.message.contains("intentional test panic"), "{err}");
        assert_eq!(err.completed, 1);
        assert_eq!(err.failed, 1);
    }

    #[test]
    fn failure_no_longer_discards_the_other_points() {
        // A panic used to poison the pool and throw away every record;
        // now every other point still runs and is reported.
        let mut sweep = Sweep::new("poison");
        sweep.custom("bang", "test", || panic!("first point dies"));
        for i in 0..8u64 {
            sweep.custom(format!("later{i}"), "test", move || custom_result(i));
        }
        let err = sweep
            .run_with(&SweepOptions {
                threads: Some(2),
                ..quiet()
            })
            .unwrap_err();
        assert_eq!(err.label, "bang");
        assert_eq!(err.completed, 8, "surviving points must all run");
        assert_eq!(err.failed, 1);
    }

    #[test]
    fn panicking_point_preserves_completed_work_on_disk() {
        let dir = temp_dir("preserve");
        let build = |fixed: bool| {
            let mut sweep = Sweep::new("preserve");
            sweep.custom("ok1", "test", || custom_result(10));
            sweep.custom("flaky", "test", move || {
                if fixed {
                    custom_result(20)
                } else {
                    panic!("deliberate failure")
                }
            });
            sweep.custom("ok2", "test", || custom_result(30));
            sweep
        };
        let opts = |resume: bool| SweepOptions {
            threads: Some(1),
            out_dir: Some(dir.clone()),
            resume,
            ..SweepOptions::default()
        };

        let err = build(false).run_with(&opts(false)).unwrap_err();
        assert_eq!(err.label, "flaky");
        assert_eq!((err.completed, err.failed), (2, 1));
        // The artifact of successful points was still written...
        let artifact = std::fs::read_to_string(dir.join("preserve.jsonl")).unwrap();
        let labels: Vec<String> = artifact
            .lines()
            .map(|l| serde_json::from_str::<RunRecord>(l).unwrap().label)
            .collect();
        assert_eq!(labels, ["ok1", "ok2"]);
        // ...and the journal kept for --resume records the failure.
        let journal = std::fs::read_to_string(dir.join("preserve.journal.jsonl")).unwrap();
        assert!(journal.contains("Failed"), "{journal}");
        assert!(journal.contains("deliberate failure"), "{journal}");

        // Resume with the point fixed: the two good points are loaded, the
        // failed one re-runs, and the sweep completes.
        let out = build(true).run_with(&opts(true)).unwrap();
        assert_eq!(out.resumed, 2);
        assert_eq!(out.records.len(), 3);
        assert_eq!(out.records[1].elapsed_ps, 20);
        assert!(
            !dir.join("preserve.journal.jsonl").exists(),
            "journal removed after a fully successful run"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn kill_and_resume_artifact_is_byte_identical() {
        let dir = temp_dir("resume");
        let opts = |sub: &str, threads: usize| SweepOptions {
            threads: Some(threads),
            out_dir: Some(dir.join(sub)),
            ..SweepOptions::default()
        };

        // Reference: one uninterrupted run.
        let full = small_sweep("req").run_with(&opts("full", 2)).unwrap();
        let reference = std::fs::read(full.path.expect("artifact")).unwrap();

        // "Killed" run: only two points make it into the journal, and no
        // artifact is written.
        let halted = small_sweep("req")
            .run_with(&SweepOptions {
                halt_after: Some(2),
                ..opts("cut", 1)
            })
            .unwrap_err();
        assert_eq!(halted.completed, 2);
        assert!(!dir.join("cut/req.jsonl").exists(), "no artifact on a kill");
        assert!(dir.join("cut/req.journal.jsonl").exists());

        // Resume at a different thread count: journaled points are loaded,
        // the rest simulated, and the artifact is byte-identical.
        let resumed = small_sweep("req")
            .run_with(&SweepOptions {
                resume: true,
                ..opts("cut", 4)
            })
            .unwrap();
        assert_eq!(resumed.resumed, 2);
        let bytes = std::fs::read(resumed.path.expect("artifact")).unwrap();
        assert_eq!(
            bytes, reference,
            "resumed artifact must match the single-shot run byte for byte"
        );
        assert!(
            !dir.join("cut/req.journal.jsonl").exists(),
            "journal removed after success"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn watchdog_times_out_a_hung_point_and_moves_on() {
        let dir = temp_dir("watchdog");
        let mut sweep = Sweep::new("watchdog");
        sweep.custom("fast", "test", || custom_result(1));
        sweep.custom("hang", "test", || {
            std::thread::sleep(Duration::from_millis(2000));
            custom_result(2)
        });
        sweep.custom("after", "test", move || custom_result(3));
        let err = sweep
            .run_with(&SweepOptions {
                threads: Some(2),
                out_dir: Some(dir.clone()),
                point_budget: Some(Duration::from_millis(100)),
                ..SweepOptions::default()
            })
            .unwrap_err();
        assert_eq!(err.label, "hang");
        assert!(err.message.contains("timed out"), "{err}");
        assert_eq!((err.completed, err.failed), (2, 1));
        let journal = std::fs::read_to_string(dir.join("watchdog.journal.jsonl")).unwrap();
        assert!(journal.contains("TimedOut"), "{journal}");
        // The artifact still holds the points that finished.
        let artifact = std::fs::read_to_string(dir.join("watchdog.jsonl")).unwrap();
        assert_eq!(artifact.lines().count(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn budget_exceeded_records_are_deterministic_across_threads() {
        let dir = temp_dir("budget");
        let run = |threads: usize, sub: &str| {
            let mut sweep = small_sweep("budget");
            sweep.apply_budget(RunBudget {
                max_events: Some(500),
                max_sim_ps: None,
            });
            let out = sweep
                .run_with(&SweepOptions {
                    threads: Some(threads),
                    out_dir: Some(dir.join(sub)),
                    quiet: false,
                    ..SweepOptions::default()
                })
                .unwrap();
            assert!(
                out.records.iter().any(|r| !r.status.is_complete()),
                "budget of 500 events must cut at least one run short"
            );
            std::fs::read(out.path.expect("artifact")).unwrap()
        };
        let serial = run(1, "t1");
        let parallel = run(4, "t4");
        assert_eq!(
            serial, parallel,
            "BudgetExceeded records must not depend on thread count"
        );
        assert!(String::from_utf8(serial)
            .unwrap()
            .contains("BudgetExceeded"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_record_survives_a_journal_round_trip_byte_for_byte() {
        let out = small_sweep("roundtrip").run_with(&quiet()).unwrap();
        for r in &out.records {
            let line = serde_json::to_string(r).unwrap();
            let back: RunRecord = serde_json::from_str(&line).unwrap();
            assert_eq!(
                serde_json::to_string(&back).unwrap(),
                line,
                "journal round-trip must be byte-stable for '{}'",
                r.label
            );
        }
    }

    #[test]
    fn journal_keys_differ_by_parameters() {
        let mut a = Sweep::new("keys");
        let params = WorkloadParams {
            scale: 7,
            ..WorkloadParams::small(4)
        };
        let cfg = SystemConfig::nmp(4, 2);
        a.simulate("p", WorkloadKind::Bfs, params, cfg.clone());
        let mut b = Sweep::new("keys");
        let params2 = WorkloadParams { seed: 43, ..params };
        b.simulate("p", WorkloadKind::Bfs, params2, cfg.clone());
        assert_ne!(point_key(&a.points[0]), point_key(&b.points[0]));
        // Applying an engine budget also changes the key: budgeted results
        // must never be mistaken for unbudgeted ones on resume.
        let mut c = Sweep::new("keys");
        c.simulate("p", WorkloadKind::Bfs, params, cfg);
        c.apply_budget(RunBudget {
            max_events: Some(10),
            max_sim_ps: None,
        });
        assert_ne!(point_key(&a.points[0]), point_key(&c.points[0]));
    }

    #[test]
    fn thread_resolution_order_and_env_validation() {
        // explicit > env > default
        assert_eq!(resolve_threads_with_env(Some(3), Some("8")).unwrap(), 3);
        assert_eq!(resolve_threads_with_env(None, Some("8")).unwrap(), 8);
        assert!(resolve_threads_with_env(None, None).unwrap() >= 1);
        // Garbage and zero are rejected, not silently ignored.
        assert!(resolve_threads_with_env(None, Some("abc")).is_err());
        assert!(resolve_threads_with_env(None, Some("0")).is_err());
        assert!(resolve_threads_with_env(Some(0), None).is_err());
        assert_eq!(resolve_threads(Some(3)).unwrap(), 3);
    }

    #[test]
    fn records_carry_derived_metrics() {
        let out = small_sweep("metrics").run_with(&quiet()).unwrap();
        let r = &out.records[0];
        assert!(r.elapsed_ps > 0);
        assert!(r.status.is_complete());
        assert_eq!(r.elapsed(), Ps::from_ps(r.elapsed_ps));
        let (a, b, c, d) = r.traffic_breakdown();
        assert!((a + b + c + d - 1.0).abs() < 1e-9 || (a, b, c, d) == (0.0, 0.0, 0.0, 0.0));
        assert_eq!(out.records[3].config, "host-16core");
    }
}
