#![forbid(unsafe_code)]
//! # dl-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (Section V) plus ablations. Each binary prints the same rows
//! or series the paper reports and writes machine-readable results to
//! `target/results/<name>.json`.
//!
//! Run, e.g.:
//!
//! ```text
//! cargo run --release -p dl-bench --bin fig10_p2p
//! cargo run --release -p dl-bench --bin fig10_p2p -- --quick   # small inputs
//! cargo run --release -p dl-bench --bin fig10_p2p -- --scale 14
//! ```

pub mod fidelity;
pub mod sweep;

use dl_engine::stats::geomean;
use dl_engine::Ps;
use serde::Serialize;
use std::io::Write as _;
use sweep::SweepOptions;

/// Common command-line arguments of every experiment binary.
#[derive(Debug, Clone)]
pub struct Args {
    /// Workload scale (R-MAT log2 vertices etc.); default 13, `--quick` = 10.
    pub scale: u32,
    /// Input-generation seed.
    pub seed: u64,
    /// Quick mode for smoke-testing.
    pub quick: bool,
    /// Sweep worker threads (`--threads`; falls back to `DL_THREADS`).
    pub threads: Option<usize>,
    /// Sweep artifact directory (`--out`; default `target/sweeps`).
    pub out: Option<std::path::PathBuf>,
    /// Reuse journaled points from an interrupted run (`--resume`).
    pub resume: bool,
    /// Wall-clock watchdog per sweep point (`--point-budget SECS`).
    pub point_budget: Option<std::time::Duration>,
    /// Deterministic engine event budget per run (`--max-events N`).
    pub max_events: Option<u64>,
    /// Deterministic simulated-time budget per run (`--max-sim-ms N`).
    pub max_sim_ms: Option<u64>,
    /// Intra-run DES worker threads per point (`--sim-threads N`).
    /// Byte-identical results at any value; default 1 (sequential).
    pub sim_threads: usize,
}

impl Args {
    /// Parses `--scale N`, `--seed N`, `--quick`, `--threads N`, `--out DIR`,
    /// `--resume`, `--point-budget SECS`, `--max-events N`, `--max-sim-ms N`,
    /// `--sim-threads N` from `std::env::args`.
    pub fn parse() -> Self {
        let mut args = Args {
            scale: 0,
            seed: 42,
            quick: false,
            threads: None,
            out: None,
            resume: false,
            point_budget: None,
            max_events: None,
            max_sim_ms: None,
            sim_threads: 1,
        };
        let mut scale = None;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => scale = it.next().and_then(|v| v.parse().ok()),
                "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(42),
                "--quick" => args.quick = true,
                "--threads" => args.threads = it.next().and_then(|v| v.parse().ok()),
                "--out" => args.out = it.next().map(std::path::PathBuf::from),
                "--resume" => args.resume = true,
                "--point-budget" => {
                    args.point_budget = it
                        .next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .filter(|s| *s > 0.0)
                        .map(std::time::Duration::from_secs_f64)
                }
                "--max-events" => args.max_events = it.next().and_then(|v| v.parse().ok()),
                "--max-sim-ms" => args.max_sim_ms = it.next().and_then(|v| v.parse().ok()),
                "--sim-threads" => {
                    args.sim_threads = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|n| *n >= 1)
                        .unwrap_or(1)
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--scale N] [--seed N] [--quick] [--threads N] [--out DIR]\n       \
                         [--resume] [--point-budget SECS] [--max-events N] [--max-sim-ms N]\n       \
                         [--sim-threads N]"
                    );
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown argument {other}"),
            }
        }
        args.scale = scale.unwrap_or(if args.quick { 10 } else { 13 });
        args
    }

    /// The sweep options these arguments describe.
    pub fn sweep_options(&self) -> SweepOptions {
        SweepOptions {
            threads: self.threads,
            out_dir: self.out.clone(),
            quiet: false,
            resume: self.resume,
            point_budget: self.point_budget,
            halt_after: None,
            sim_threads: self.sim_threads,
        }
    }

    /// The deterministic engine budget these arguments describe
    /// (unlimited when neither `--max-events` nor `--max-sim-ms` is given).
    pub fn run_budget(&self) -> dl_engine::RunBudget {
        dl_engine::RunBudget {
            max_events: self.max_events,
            max_sim_ps: self.max_sim_ms.map(|ms| ms.saturating_mul(1_000_000_000)),
        }
    }
}

/// Runs a sweep with this binary's options — applying any deterministic
/// engine budget from `--max-events`/`--max-sim-ms` — exiting with a
/// labeled error message if a point fails (completed points are journaled
/// first, so a rerun with `--resume` picks up where this one stopped).
pub fn run_sweep(mut s: sweep::Sweep, args: &Args) -> sweep::SweepOutcome {
    s.apply_budget(args.run_budget());
    match s.run_with(&args.sweep_options()) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Pretty-prints an aligned table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8) + 2))
            .collect::<String>()
    };
    println!(
        "{}",
        line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", line(row));
    }
}

/// Writes `value` as JSON under `target/results/<name>.json`.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(
            f,
            "{}",
            serde_json::to_string_pretty(value).unwrap_or_default()
        );
        println!("[saved {}]", path.display());
    }
}

/// Formats a speedup.
pub fn fmt_x(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a percentage.
pub fn fmt_pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Formats simulated time.
pub fn fmt_time(t: Ps) -> String {
    t.to_string()
}

/// Geometric mean over a slice.
pub fn geo(values: &[f64]) -> f64 {
    geomean(values.iter().copied())
}

/// Bandwidth in GB/s from bytes moved over a span.
pub fn gbps(bytes: u64, span: Ps) -> f64 {
    if span == Ps::ZERO {
        0.0
    } else {
        bytes as f64 / span.as_secs_f64() / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_and_format_helpers() {
        assert!((geo(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(fmt_x(1.5), "1.50x");
        assert_eq!(fmt_pct(0.305), "30.5%");
    }

    #[test]
    fn gbps_math() {
        let v = gbps(19_200_000_000, Ps::from_ms(1000));
        assert!((v - 19.2).abs() < 1e-9);
        assert_eq!(gbps(100, Ps::ZERO), 0.0);
    }
}
