#![forbid(unsafe_code)]
//! Figure 15 — polling strategies at 16D-8C.
//!
//! Compares Table III's four mechanisms on end-to-end performance (a) and
//! memory-bus occupation (b). Paper: base polling occupies ~32 % of the
//! bus; proxy+interrupt just 0.2 %; the polling proxy gives the best
//! end-to-end performance (interrupt latency hurts the interrupt variants).

use dimm_link::config::{IdcKind, PollingStrategy, SystemConfig};
use dl_bench::sweep::Sweep;
use dl_bench::{fmt_pct, fmt_x, geo, print_table, run_sweep, save_json, Args};
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    strategy: String,
    geomean_speedup_vs_base: f64,
    mean_bus_occupancy: f64,
}

fn main() {
    let args = Args::parse();
    println!(
        "Figure 15: polling strategies at 16D-8C (scale {})",
        args.scale
    );

    let strategies = [
        PollingStrategy::Base,
        PollingStrategy::BaseInterrupt,
        PollingStrategy::Proxy,
        PollingStrategy::ProxyInterrupt,
    ];

    let mut sweep = Sweep::new("fig15_polling");
    for kind in WorkloadKind::P2P_SET {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            ..WorkloadParams::small(16)
        };
        for &strat in &strategies {
            let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
            cfg.polling = strat;
            sweep.simulate(format!("{kind} / {strat}"), kind, params, cfg);
        }
    }
    let result = run_sweep(sweep, &args);

    // Per-strategy speedups vs Base, per workload, plus occupancy.
    let mut per_strategy: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
    let mut occupancy: Vec<Vec<f64>> = vec![Vec::new(); strategies.len()];
    for w in 0..WorkloadKind::P2P_SET.len() {
        let runs = &result.records[w * strategies.len()..(w + 1) * strategies.len()];
        for (i, r) in runs.iter().enumerate() {
            per_strategy[i].push(runs[0].elapsed_f64() / r.elapsed_f64());
            occupancy[i].push(r.bus_occupancy());
        }
    }

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (i, &strat) in strategies.iter().enumerate() {
        let sp = geo(&per_strategy[i]);
        let occ = occupancy[i].iter().sum::<f64>() / occupancy[i].len() as f64;
        rows.push(vec![strat.to_string(), fmt_x(sp), fmt_pct(occ)]);
        out.push(Row {
            strategy: strat.to_string(),
            geomean_speedup_vs_base: sp,
            mean_bus_occupancy: occ,
        });
    }
    print_table(
        "Fig.15 polling strategies (paper: Base occupies ~32%, P-P+Itrpt ~0.2%; P-P fastest end-to-end)",
        &["strategy", "speedup vs Base", "bus occupation"],
        &rows,
    );
    save_json("fig15_polling", &out);
}
