//! Extension — DIMM-Link on disaggregated memory (paper Section VI).
//!
//! The paper proposes organizing DIMM-NMP blades behind CXL/RDMA instead of
//! a host memory bus: DIMM-Link augments intra-blade IDC while the fabric
//! carries inter-blade packets, removing host polling/forwarding entirely.
//! This experiment quantifies that proposal: the in-server organization
//! (inter-group via host) vs the disaggregated one (inter-blade via CXL) at
//! 2 blades × 8 DIMMs and 4 blades × 8 DIMMs, plus a fabric-latency sweep.

use dimm_link::config::{IdcKind, SystemConfig};
use dimm_link::runner::simulate;
use dl_bench::{fmt_x, geo, print_table, save_json, Args};
use dl_engine::Ps;
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    workload: String,
    cxl_over_host: f64,
}

fn blades(dimms: usize, channels: usize, groups: usize, idc: IdcKind) -> SystemConfig {
    let mut cfg = SystemConfig::nmp(dimms, channels).with_idc(idc);
    cfg.groups = groups;
    cfg
}

fn main() {
    let args = Args::parse();
    println!(
        "Extension (Section VI): DIMM-Link on disaggregated memory (scale {})",
        args.scale
    );

    let mut out = Vec::new();
    for (name, dimms, channels, groups) in
        [("2 blades x 8", 16usize, 8usize, 2usize), ("4 blades x 8", 32, 16, 4)]
    {
        let mut rows = Vec::new();
        let mut speedups = Vec::new();
        for kind in [WorkloadKind::Pagerank, WorkloadKind::Sssp, WorkloadKind::Bfs] {
            let params = WorkloadParams {
                scale: args.scale,
                seed: args.seed,
                ..WorkloadParams::small(dimms)
            };
            let wl = kind.build(&params);
            let host_org = simulate(&wl, &blades(dimms, channels, groups, IdcKind::DimmLink));
            let cxl_org = simulate(&wl, &blades(dimms, channels, groups, IdcKind::DimmLinkCxl));
            let s = host_org.elapsed.as_ps() as f64 / cxl_org.elapsed.as_ps() as f64;
            speedups.push(s);
            rows.push(vec![
                kind.to_string(),
                host_org.elapsed.to_string(),
                cxl_org.elapsed.to_string(),
                fmt_x(s),
            ]);
            out.push(Row {
                config: name.to_string(),
                workload: kind.to_string(),
                cxl_over_host: s,
            });
        }
        rows.push(vec!["geomean".into(), String::new(), String::new(), fmt_x(geo(&speedups))]);
        print_table(
            &format!("{name}: in-server (host-forwarded inter-group) vs disaggregated (CXL)"),
            &["workload", "host org", "CXL org", "CXL speedup"],
            &rows,
        );
    }

    // Fabric-latency sensitivity: when does disaggregation stop paying off?
    let mut rows = Vec::new();
    let params = WorkloadParams {
        scale: args.scale,
        seed: args.seed,
        ..WorkloadParams::small(16)
    };
    let wl = WorkloadKind::Pagerank.build(&params);
    let host_org = simulate(&wl, &blades(16, 8, 2, IdcKind::DimmLink));
    for lat_ns in [100u64, 250, 500, 1000, 2000] {
        let mut cfg = blades(16, 8, 2, IdcKind::DimmLinkCxl);
        cfg.cxl_latency = Ps::from_ns(lat_ns);
        let r = simulate(&wl, &cfg);
        rows.push(vec![
            format!("{lat_ns} ns"),
            fmt_x(host_org.elapsed.as_ps() as f64 / r.elapsed.as_ps() as f64),
        ]);
    }
    print_table(
        "PR, 2 blades: CXL speedup over the host organization vs fabric latency",
        &["one-way fabric latency", "speedup"],
        &rows,
    );
    save_json("ext_disaggregated", &out);
}
