#![forbid(unsafe_code)]
//! Extension — DIMM-Link on disaggregated memory (paper Section VI).
//!
//! The paper proposes organizing DIMM-NMP blades behind CXL/RDMA instead of
//! a host memory bus: DIMM-Link augments intra-blade IDC while the fabric
//! carries inter-blade packets, removing host polling/forwarding entirely.
//! This experiment quantifies that proposal: the in-server organization
//! (inter-group via host) vs the disaggregated one (inter-blade via CXL) at
//! 2 blades × 8 DIMMs and 4 blades × 8 DIMMs, plus a fabric-latency sweep.

use dimm_link::config::{IdcKind, SystemConfig};
use dl_bench::sweep::Sweep;
use dl_bench::{fmt_time, fmt_x, geo, print_table, run_sweep, save_json, Args};
use dl_engine::Ps;
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    config: String,
    workload: String,
    cxl_over_host: f64,
}

const WORKLOADS: [WorkloadKind; 3] = [
    WorkloadKind::Pagerank,
    WorkloadKind::Sssp,
    WorkloadKind::Bfs,
];

fn blades(dimms: usize, channels: usize, groups: usize, idc: IdcKind) -> SystemConfig {
    let mut cfg = SystemConfig::nmp(dimms, channels).with_idc(idc);
    cfg.groups = groups;
    cfg
}

fn main() {
    let args = Args::parse();
    println!(
        "Extension (Section VI): DIMM-Link on disaggregated memory (scale {})",
        args.scale
    );

    let blade_cfgs = [
        ("2 blades x 8", 16usize, 8usize, 2usize),
        ("4 blades x 8", 32, 16, 4),
    ];
    let fabric_lats = [100u64, 250, 500, 1000, 2000];

    let mut sweep = Sweep::new("ext_disaggregated");
    for (name, dimms, channels, groups) in blade_cfgs {
        for kind in WORKLOADS {
            let params = WorkloadParams {
                scale: args.scale,
                seed: args.seed,
                ..WorkloadParams::small(dimms)
            };
            sweep.simulate(
                format!("{name} / {kind} / host-org"),
                kind,
                params,
                blades(dimms, channels, groups, IdcKind::DimmLink),
            );
            sweep.simulate(
                format!("{name} / {kind} / cxl-org"),
                kind,
                params,
                blades(dimms, channels, groups, IdcKind::DimmLinkCxl),
            );
        }
    }

    // Fabric-latency sensitivity: when does disaggregation stop paying off?
    let lat_base = sweep.len();
    {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            ..WorkloadParams::small(16)
        };
        sweep.simulate(
            "fabric-sweep / pr / host-org",
            WorkloadKind::Pagerank,
            params,
            blades(16, 8, 2, IdcKind::DimmLink),
        );
        for lat_ns in fabric_lats {
            let mut cfg = blades(16, 8, 2, IdcKind::DimmLinkCxl);
            cfg.cxl_latency = Ps::from_ns(lat_ns);
            sweep.simulate(
                format!("fabric-sweep / pr / cxl {lat_ns} ns"),
                WorkloadKind::Pagerank,
                params,
                cfg,
            );
        }
    }

    let result = run_sweep(sweep, &args);

    let mut out = Vec::new();
    let mut idx = 0;
    for (name, _, _, _) in blade_cfgs {
        let mut rows = Vec::new();
        let mut speedups = Vec::new();
        for kind in WORKLOADS {
            let host_org = &result.records[idx];
            let cxl_org = &result.records[idx + 1];
            idx += 2;
            let s = host_org.elapsed_f64() / cxl_org.elapsed_f64();
            speedups.push(s);
            rows.push(vec![
                kind.to_string(),
                fmt_time(host_org.elapsed()),
                fmt_time(cxl_org.elapsed()),
                fmt_x(s),
            ]);
            out.push(Row {
                config: name.to_string(),
                workload: kind.to_string(),
                cxl_over_host: s,
            });
        }
        rows.push(vec![
            "geomean".into(),
            String::new(),
            String::new(),
            fmt_x(geo(&speedups)),
        ]);
        print_table(
            &format!("{name}: in-server (host-forwarded inter-group) vs disaggregated (CXL)"),
            &["workload", "host org", "CXL org", "CXL speedup"],
            &rows,
        );
    }

    let host_org = result.records[lat_base].elapsed_f64();
    let mut rows = Vec::new();
    for (i, lat_ns) in fabric_lats.iter().enumerate() {
        let r = &result.records[lat_base + 1 + i];
        rows.push(vec![
            format!("{lat_ns} ns"),
            fmt_x(host_org / r.elapsed_f64()),
        ]);
    }
    print_table(
        "PR, 2 blades: CXL speedup over the host organization vs fabric latency",
        &["one-way fabric latency", "speedup"],
        &rows,
    );
    save_json("ext_disaggregated", &out);
}
