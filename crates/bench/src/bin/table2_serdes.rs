#![forbid(unsafe_code)]
//! Table II — SerDes technique comparison (static parameters).
//!
//! These are the physical-layer options the paper weighs for the DL-Bridge;
//! the GRS column is what the simulator's default link model and energy
//! model are configured from.

use dimm_link::EnergyParams;
use dl_bench::print_table;
use dl_noc::LinkParams;

fn main() {
    print_table(
        "Table II: SerDes techniques (paper values)",
        &["reference", "media", "signal rate", "reach", "energy"],
        &[
            vec![
                "ISSCC'15 [10]".into(),
                "SMA cable".into(),
                "6 Gb/s/pin".into(),
                "953 mm".into(),
                "0.58 pJ/b".into(),
            ],
            vec![
                "PACT'15 [25]".into(),
                "ribbon cable".into(),
                "16 Gb/s/pin".into(),
                "500 mm".into(),
                "2.58 pJ/b".into(),
            ],
            vec![
                "GRS [69]".into(),
                "PCB".into(),
                "25 Gb/s/pin".into(),
                "80 mm".into(),
                "1.17 pJ/b".into(),
            ],
        ],
    );

    let link = LinkParams::grs_25gbps();
    let energy = EnergyParams::default();
    print_table(
        "Simulator configuration derived from the GRS column",
        &["parameter", "value"],
        &[
            vec![
                "link bandwidth/direction".into(),
                format!("{} GB/s", link.bytes_per_sec / 1_000_000_000),
            ],
            vec!["hop latency".into(), link.hop_latency.to_string()],
            vec!["router latency".into(), link.router_latency.to_string()],
            vec![
                "link energy".into(),
                format!("{} pJ/b", energy.link_pj_per_bit),
            ],
        ],
    );
}
