//! Figure 10 — point-to-point IDC performance.
//!
//! For each system size (4D-2C, 8D-4C, 12D-6C, 16D-8C) and each Table IV
//! workload, reports the speedup over the fixed 16-core host CPU for MCN,
//! AIM, DIMM-Link-base and DIMM-Link-opt (Algorithm 1, profiling time
//! charged), plus the ratio of non-overlapped IDC cycles (the paper's line
//! series).
//!
//! Paper reference: DIMM-Link-opt geomean 5.93x over the CPU; 2.42x over
//! MCN; 1.87x over AIM; 1.12x over DIMM-Link-base.

use dimm_link::config::{IdcKind, PlacementPolicy, SystemConfig};
use dimm_link::runner::{host_baseline, simulate, simulate_optimized};
use dl_bench::{fmt_pct, fmt_x, geo, print_table, save_json, Args};
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    config: String,
    workload: String,
    system: String,
    speedup_vs_host: f64,
    idc_stall_frac: f64,
    elapsed_ns: f64,
}

fn main() {
    let args = Args::parse();
    println!("Figure 10: P2P speedup over the 16-core host CPU (scale {})", args.scale);

    // Host baselines are independent of the NMP configuration.
    let hosts: Vec<(WorkloadKind, f64)> = WorkloadKind::P2P_SET
        .iter()
        .map(|&k| {
            let h = host_baseline(k, args.scale, args.seed);
            (k, h.elapsed.as_ps() as f64)
        })
        .collect();

    let mut cells: Vec<Cell> = Vec::new();
    for (cfg_name, base_cfg) in SystemConfig::p2p_sweep() {
        let mut rows = Vec::new();
        let mut per_system: Vec<(String, Vec<f64>)> = Vec::new();
        for sys_name in ["MCN", "AIM", "DL-rand", "DL-base", "DL-opt"] {
            per_system.push((sys_name.to_string(), Vec::new()));
        }
        for &(kind, host_ps) in &hosts {
            let params = WorkloadParams {
                dimms: base_cfg.dimms,
                scale: args.scale,
                seed: args.seed,
                ..WorkloadParams::small(base_cfg.dimms)
            };
            let wl = kind.build(&params);
            let mut row = vec![kind.to_string()];
            // DL-rand: an affinity-oblivious runtime mapping — the situation
            // Algorithm 1 rescues (it profiles from exactly this start).
            let mut rand_cfg = base_cfg.clone().with_idc(IdcKind::DimmLink);
            rand_cfg.placement = PlacementPolicy::Random;
            let runs = [
                ("MCN", simulate(&wl, &base_cfg.clone().with_idc(IdcKind::CpuForwarding))),
                ("AIM", simulate(&wl, &base_cfg.clone().with_idc(IdcKind::DedicatedBus))),
                ("DL-rand", simulate(&wl, &rand_cfg)),
                ("DL-base", simulate(&wl, &base_cfg.clone().with_idc(IdcKind::DimmLink))),
                ("DL-opt", simulate_optimized(&wl, &base_cfg.clone().with_idc(IdcKind::DimmLink))),
            ];
            for (i, (sys_name, r)) in runs.iter().enumerate() {
                let speedup = host_ps / r.elapsed.as_ps() as f64;
                per_system[i].1.push(speedup);
                row.push(fmt_x(speedup));
                cells.push(Cell {
                    config: cfg_name.to_string(),
                    workload: kind.to_string(),
                    system: sys_name.to_string(),
                    speedup_vs_host: speedup,
                    idc_stall_frac: r.idc_stall_frac(),
                    elapsed_ns: r.elapsed.as_ns_f64(),
                });
            }
            // IDC stall ratio of the DL-opt run (the paper's line series).
            row.push(fmt_pct(runs[4].1.idc_stall_frac()));
            rows.push(row);
        }
        let mut geo_row = vec!["geomean".to_string()];
        for (_, speedups) in &per_system {
            geo_row.push(fmt_x(geo(speedups)));
        }
        geo_row.push(String::new());
        rows.push(geo_row);
        print_table(
            &format!("Fig.10 {cfg_name}"),
            &["workload", "MCN", "AIM", "DL-rand", "DL-base", "DL-opt", "IDC-cyc(DL-opt)"],
            &rows,
        );
    }

    // Cross-config geomeans (the paper's headline ratios).
    let all = |sys: &str| -> Vec<f64> {
        cells
            .iter()
            .filter(|c| c.system == sys)
            .map(|c| c.speedup_vs_host)
            .collect()
    };
    let g_mcn = geo(&all("MCN"));
    let g_aim = geo(&all("AIM"));
    let g_rand = geo(&all("DL-rand"));
    let g_base = geo(&all("DL-base"));
    let g_opt = geo(&all("DL-opt"));
    print_table(
        "Fig.10 headline geomeans (paper: DL-opt 5.93x; vs MCN 2.42x; vs AIM 1.87x; vs DL-base 1.12x)",
        &["metric", "measured", "paper"],
        &[
            vec!["DL-opt vs host".into(), fmt_x(g_opt), "5.93x".into()],
            vec!["DL-opt vs MCN".into(), fmt_x(g_opt / g_mcn), "2.42x".into()],
            vec!["DL-opt vs AIM".into(), fmt_x(g_opt / g_aim), "1.87x".into()],
            vec!["DL-opt vs DL-base".into(), fmt_x(g_opt / g_base), "1.12x".into()],
            vec![
                "DL-opt vs DL-rand (Algorithm 1 recovery)".into(),
                fmt_x(g_opt / g_rand),
                "n/a".into(),
            ],
        ],
    );
    save_json("fig10_p2p", &cells);
}
