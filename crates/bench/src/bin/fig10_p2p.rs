#![forbid(unsafe_code)]
//! Figure 10 — point-to-point IDC performance.
//!
//! For each system size (4D-2C, 8D-4C, 12D-6C, 16D-8C) and each Table IV
//! workload, reports the speedup over the fixed 16-core host CPU for MCN,
//! AIM, DIMM-Link-base and DIMM-Link-opt (Algorithm 1, profiling time
//! charged), plus the ratio of non-overlapped IDC cycles (the paper's line
//! series).
//!
//! Paper reference: DIMM-Link-opt geomean 5.93x over the CPU; 2.42x over
//! MCN; 1.87x over AIM; 1.12x over DIMM-Link-base.

use dimm_link::config::{IdcKind, PlacementPolicy, SystemConfig};
use dl_bench::sweep::Sweep;
use dl_bench::{fmt_pct, fmt_x, geo, print_table, run_sweep, save_json, Args};
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    config: String,
    workload: String,
    system: String,
    speedup_vs_host: f64,
    idc_stall_frac: f64,
    elapsed_ns: f64,
}

const SYSTEMS: [&str; 5] = ["MCN", "AIM", "DL-rand", "DL-base", "DL-opt"];

fn main() {
    let args = Args::parse();
    println!(
        "Figure 10: P2P speedup over the 16-core host CPU (scale {})",
        args.scale
    );

    // Submit every point up front: host baselines (independent of the NMP
    // configuration), then all (config x workload x system) runs.
    let mut sweep = Sweep::new("fig10_p2p");
    let hosts: Vec<(WorkloadKind, usize)> = WorkloadKind::P2P_SET
        .iter()
        .map(|&k| {
            (
                k,
                sweep.host(format!("host / {k}"), k, args.scale, args.seed),
            )
        })
        .collect();

    let configs = SystemConfig::p2p_sweep();
    // (config name, workload, host index, per-system record indices)
    let mut groups: Vec<(&str, WorkloadKind, usize, [usize; 5])> = Vec::new();
    for (cfg_name, base_cfg) in &configs {
        for &(kind, host_idx) in &hosts {
            let params = WorkloadParams {
                dimms: base_cfg.dimms,
                scale: args.scale,
                seed: args.seed,
                ..WorkloadParams::small(base_cfg.dimms)
            };
            // DL-rand: an affinity-oblivious runtime mapping — the situation
            // Algorithm 1 rescues (it profiles from exactly this start).
            let mut rand_cfg = base_cfg.clone().with_idc(IdcKind::DimmLink);
            rand_cfg.placement = PlacementPolicy::Random;
            let label = |sys: &str| format!("{cfg_name} / {kind} / {sys}");
            let idx = [
                sweep.simulate(
                    label("MCN"),
                    kind,
                    params,
                    base_cfg.clone().with_idc(IdcKind::CpuForwarding),
                ),
                sweep.simulate(
                    label("AIM"),
                    kind,
                    params,
                    base_cfg.clone().with_idc(IdcKind::DedicatedBus),
                ),
                sweep.simulate(label("DL-rand"), kind, params, rand_cfg),
                sweep.simulate(
                    label("DL-base"),
                    kind,
                    params,
                    base_cfg.clone().with_idc(IdcKind::DimmLink),
                ),
                sweep.simulate_optimized(
                    label("DL-opt"),
                    kind,
                    params,
                    base_cfg.clone().with_idc(IdcKind::DimmLink),
                ),
            ];
            groups.push((cfg_name, kind, host_idx, idx));
        }
    }

    let out = run_sweep(sweep, &args);

    let mut cells: Vec<Cell> = Vec::new();
    for (cfg_name, _) in &configs {
        let mut rows = Vec::new();
        let mut per_system: Vec<Vec<f64>> = vec![Vec::new(); SYSTEMS.len()];
        for &(name, kind, host_idx, idx) in groups.iter().filter(|g| g.0 == *cfg_name) {
            let host_ps = out.records[host_idx].elapsed_f64();
            let mut row = vec![kind.to_string()];
            for (i, &ri) in idx.iter().enumerate() {
                let r = &out.records[ri];
                let speedup = host_ps / r.elapsed_f64();
                per_system[i].push(speedup);
                row.push(fmt_x(speedup));
                cells.push(Cell {
                    config: name.to_string(),
                    workload: kind.to_string(),
                    system: SYSTEMS[i].to_string(),
                    speedup_vs_host: speedup,
                    idc_stall_frac: r.idc_stall_frac(),
                    elapsed_ns: r.elapsed().as_ns_f64(),
                });
            }
            // IDC stall ratio of the DL-opt run (the paper's line series).
            row.push(fmt_pct(out.records[idx[4]].idc_stall_frac()));
            rows.push(row);
        }
        let mut geo_row = vec!["geomean".to_string()];
        for speedups in &per_system {
            geo_row.push(fmt_x(geo(speedups)));
        }
        geo_row.push(String::new());
        rows.push(geo_row);
        print_table(
            &format!("Fig.10 {cfg_name}"),
            &[
                "workload",
                "MCN",
                "AIM",
                "DL-rand",
                "DL-base",
                "DL-opt",
                "IDC-cyc(DL-opt)",
            ],
            &rows,
        );
    }

    // Cross-config geomeans (the paper's headline ratios).
    let all = |sys: &str| -> Vec<f64> {
        cells
            .iter()
            .filter(|c| c.system == sys)
            .map(|c| c.speedup_vs_host)
            .collect()
    };
    let g_mcn = geo(&all("MCN"));
    let g_aim = geo(&all("AIM"));
    let g_rand = geo(&all("DL-rand"));
    let g_base = geo(&all("DL-base"));
    let g_opt = geo(&all("DL-opt"));
    print_table(
        "Fig.10 headline geomeans (paper: DL-opt 5.93x; vs MCN 2.42x; vs AIM 1.87x; vs DL-base 1.12x)",
        &["metric", "measured", "paper"],
        &[
            vec!["DL-opt vs host".into(), fmt_x(g_opt), "5.93x".into()],
            vec!["DL-opt vs MCN".into(), fmt_x(g_opt / g_mcn), "2.42x".into()],
            vec!["DL-opt vs AIM".into(), fmt_x(g_opt / g_aim), "1.87x".into()],
            vec!["DL-opt vs DL-base".into(), fmt_x(g_opt / g_base), "1.12x".into()],
            vec![
                "DL-opt vs DL-rand (Algorithm 1 recovery)".into(),
                fmt_x(g_opt / g_rand),
                "n/a".into(),
            ],
        ],
    );
    save_json("fig10_p2p", &cells);
}
