#![forbid(unsafe_code)]
//! Figure 11 — data-transfer breakdown of DIMM-Link-opt.
//!
//! The paper reports that with the thread-placement optimization only ~29 %
//! of total traffic is forwarded via the CPU; the rest stays local or rides
//! the intra-group links.

use dimm_link::config::{IdcKind, SystemConfig};
use dl_bench::sweep::Sweep;
use dl_bench::{fmt_pct, print_table, run_sweep, save_json, Args};
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    local: f64,
    link: f64,
    cpu_forwarded: f64,
}

fn main() {
    let args = Args::parse();
    println!(
        "Figure 11: traffic breakdown of DIMM-Link-opt at 16D-8C (scale {})",
        args.scale
    );
    let cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);

    let mut sweep = Sweep::new("fig11_breakdown");
    for kind in WorkloadKind::P2P_SET {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            ..WorkloadParams::small(16)
        };
        sweep.simulate_optimized(format!("{kind} / DL-opt"), kind, params, cfg.clone());
    }
    let result = run_sweep(sweep, &args);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    let mut fwd_sum = 0.0;
    for (kind, r) in WorkloadKind::P2P_SET.iter().zip(&result.records) {
        let (local, link, fwd, _) = r.traffic_breakdown();
        fwd_sum += fwd;
        rows.push(vec![
            kind.to_string(),
            fmt_pct(local),
            fmt_pct(link),
            fmt_pct(fwd),
        ]);
        out.push(Row {
            workload: kind.to_string(),
            local,
            link,
            cpu_forwarded: fwd,
        });
    }
    rows.push(vec![
        "mean".into(),
        String::new(),
        String::new(),
        fmt_pct(fwd_sum / WorkloadKind::P2P_SET.len() as f64),
    ]);
    print_table(
        "Fig.11 bytes by path (paper: ~29% CPU-forwarded on average)",
        &["workload", "local DRAM", "DIMM-Link", "CPU-forwarded"],
        &rows,
    );
    save_json("fig11_breakdown", &out);
}
