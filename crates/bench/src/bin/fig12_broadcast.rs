//! Figure 12 — broadcast performance.
//!
//! PR, SSSP and SpMV in their explicit-broadcast formulations on MCN-BC,
//! ABC-DIMM (2 and 3 DIMMs per channel), AIM-BC, and DIMM-Link. Paper:
//! DIMM-Link is 2.58x faster than MCN-BC and 1.77x faster than ABC-DIMM;
//! AIM-BC (an idealized single-transaction bus broadcast) outperforms
//! DIMM-Link.

use dimm_link::config::{IdcKind, SystemConfig};
use dimm_link::runner::simulate;
use dl_bench::{fmt_x, geo, print_table, save_json, Args};
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    workload: String,
    system: String,
    speedup_vs_mcn_bc: f64,
}

fn main() {
    let args = Args::parse();
    println!("Figure 12: broadcast performance (scale {})", args.scale);

    // 16 DIMMs; ABC-DIMM's reach depends on DIMMs-per-channel.
    let sys16_8 = SystemConfig::nmp(16, 8); // 2 DPC
    let mut cells = Vec::new();
    let mut rows = Vec::new();
    let mut per_sys: Vec<(&str, Vec<f64>)> = ["ABC-2DPC", "AIM-BC", "DIMM-Link"]
        .iter()
        .map(|&s| (s, Vec::new()))
        .collect();
    for kind in WorkloadKind::BROADCAST_SET {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            broadcast: true,
            ..WorkloadParams::small(16)
        };
        let wl = kind.build(&params);
        let mcn = simulate(&wl, &sys16_8.clone().with_idc(IdcKind::CpuForwarding));
        let base = mcn.elapsed.as_ps() as f64;
        let runs = [
            ("ABC-2DPC", simulate(&wl, &sys16_8.clone().with_idc(IdcKind::AbcDimm))),
            ("AIM-BC", simulate(&wl, &sys16_8.clone().with_idc(IdcKind::DedicatedBus))),
            ("DIMM-Link", simulate(&wl, &sys16_8.clone().with_idc(IdcKind::DimmLink))),
        ];
        let mut row = vec![format!("{kind}-BC"), fmt_x(1.0)];
        for (i, (name, r)) in runs.iter().enumerate() {
            let s = base / r.elapsed.as_ps() as f64;
            per_sys[i].1.push(s);
            row.push(fmt_x(s));
            cells.push(Cell {
                workload: kind.to_string(),
                system: name.to_string(),
                speedup_vs_mcn_bc: s,
            });
        }
        rows.push(row);
    }
    let mut geo_row = vec!["geomean".to_string(), fmt_x(1.0)];
    for (_, v) in &per_sys {
        geo_row.push(fmt_x(geo(v)));
    }
    rows.push(geo_row);
    print_table(
        "Fig.12 speedup over MCN-BC at 16 DIMMs (paper: DL 2.58x vs MCN-BC, 1.77x vs ABC; AIM-BC idealized best)",
        &["workload", "MCN-BC", "ABC-DIMM", "AIM-BC", "DIMM-Link"],
        &rows,
    );

    // 3-DPC variant: 12 DIMMs over 4 channels gives ABC-DIMM longer reach.
    let sys12_4 = SystemConfig::nmp(12, 4);
    let mut rows3 = Vec::new();
    for kind in WorkloadKind::BROADCAST_SET {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            broadcast: true,
            ..WorkloadParams::small(12)
        };
        let wl = kind.build(&params);
        let mcn = simulate(&wl, &sys12_4.clone().with_idc(IdcKind::CpuForwarding));
        let abc = simulate(&wl, &sys12_4.clone().with_idc(IdcKind::AbcDimm));
        let dl = simulate(&wl, &sys12_4.clone().with_idc(IdcKind::DimmLink));
        let base = mcn.elapsed.as_ps() as f64;
        rows3.push(vec![
            format!("{kind}-BC"),
            fmt_x(base / abc.elapsed.as_ps() as f64),
            fmt_x(base / dl.elapsed.as_ps() as f64),
        ]);
    }
    print_table(
        "Fig.12 3-DPC slice (12D-4C): ABC-DIMM reach grows, DIMM-Link still leads",
        &["workload", "ABC-3DPC", "DIMM-Link"],
        &rows3,
    );
    save_json("fig12_broadcast", &cells);
}
