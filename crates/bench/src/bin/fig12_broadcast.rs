#![forbid(unsafe_code)]
//! Figure 12 — broadcast performance.
//!
//! PR, SSSP and SpMV in their explicit-broadcast formulations on MCN-BC,
//! ABC-DIMM (2 and 3 DIMMs per channel), AIM-BC, and DIMM-Link. Paper:
//! DIMM-Link is 2.58x faster than MCN-BC and 1.77x faster than ABC-DIMM;
//! AIM-BC (an idealized single-transaction bus broadcast) outperforms
//! DIMM-Link.

use dimm_link::config::{IdcKind, SystemConfig};
use dl_bench::sweep::Sweep;
use dl_bench::{fmt_x, geo, print_table, run_sweep, save_json, Args};
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Cell {
    workload: String,
    system: String,
    speedup_vs_mcn_bc: f64,
}

const SYSTEMS_2DPC: [(&str, IdcKind); 3] = [
    ("ABC-2DPC", IdcKind::AbcDimm),
    ("AIM-BC", IdcKind::DedicatedBus),
    ("DIMM-Link", IdcKind::DimmLink),
];

fn main() {
    let args = Args::parse();
    println!("Figure 12: broadcast performance (scale {})", args.scale);

    // 16 DIMMs (2 DPC) plus the 3-DPC slice: 12 DIMMs over 4 channels gives
    // ABC-DIMM longer reach.
    let sys16_8 = SystemConfig::nmp(16, 8);
    let sys12_4 = SystemConfig::nmp(12, 4);

    let mut sweep = Sweep::new("fig12_broadcast");
    // (workload, MCN index, [ABC, AIM, DL] indices)
    let mut groups = Vec::new();
    for kind in WorkloadKind::BROADCAST_SET {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            broadcast: true,
            ..WorkloadParams::small(16)
        };
        let mcn = sweep.simulate(
            format!("2DPC / {kind}-BC / MCN-BC"),
            kind,
            params,
            sys16_8.clone().with_idc(IdcKind::CpuForwarding),
        );
        let idx: Vec<usize> = SYSTEMS_2DPC
            .iter()
            .map(|&(name, idc)| {
                sweep.simulate(
                    format!("2DPC / {kind}-BC / {name}"),
                    kind,
                    params,
                    sys16_8.clone().with_idc(idc),
                )
            })
            .collect();
        groups.push((kind, mcn, idx));
    }
    let mut groups3 = Vec::new();
    for kind in WorkloadKind::BROADCAST_SET {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            broadcast: true,
            ..WorkloadParams::small(12)
        };
        let idx: Vec<usize> = [
            ("MCN-BC", IdcKind::CpuForwarding),
            ("ABC-3DPC", IdcKind::AbcDimm),
            ("DIMM-Link", IdcKind::DimmLink),
        ]
        .iter()
        .map(|&(name, idc)| {
            sweep.simulate(
                format!("3DPC / {kind}-BC / {name}"),
                kind,
                params,
                sys12_4.clone().with_idc(idc),
            )
        })
        .collect();
        groups3.push((kind, idx));
    }

    let out = run_sweep(sweep, &args);

    let mut cells = Vec::new();
    let mut rows = Vec::new();
    let mut per_sys: Vec<Vec<f64>> = vec![Vec::new(); SYSTEMS_2DPC.len()];
    for (kind, mcn, idx) in &groups {
        let base = out.records[*mcn].elapsed_f64();
        let mut row = vec![format!("{kind}-BC"), fmt_x(1.0)];
        for (i, &ri) in idx.iter().enumerate() {
            let s = base / out.records[ri].elapsed_f64();
            per_sys[i].push(s);
            row.push(fmt_x(s));
            cells.push(Cell {
                workload: kind.to_string(),
                system: SYSTEMS_2DPC[i].0.to_string(),
                speedup_vs_mcn_bc: s,
            });
        }
        rows.push(row);
    }
    let mut geo_row = vec!["geomean".to_string(), fmt_x(1.0)];
    for v in &per_sys {
        geo_row.push(fmt_x(geo(v)));
    }
    rows.push(geo_row);
    print_table(
        "Fig.12 speedup over MCN-BC at 16 DIMMs (paper: DL 2.58x vs MCN-BC, 1.77x vs ABC; AIM-BC idealized best)",
        &["workload", "MCN-BC", "ABC-DIMM", "AIM-BC", "DIMM-Link"],
        &rows,
    );

    let mut rows3 = Vec::new();
    for (kind, idx) in &groups3 {
        let base = out.records[idx[0]].elapsed_f64();
        rows3.push(vec![
            format!("{kind}-BC"),
            fmt_x(base / out.records[idx[1]].elapsed_f64()),
            fmt_x(base / out.records[idx[2]].elapsed_f64()),
        ]);
    }
    print_table(
        "Fig.12 3-DPC slice (12D-4C): ABC-DIMM reach grows, DIMM-Link still leads",
        &["workload", "ABC-3DPC", "DIMM-Link"],
        &rows3,
    );
    save_json("fig12_broadcast", &cells);
}
