#![forbid(unsafe_code)]
//! Figure 1 — IDC performance exploration on a UPMEM-like platform.
//!
//! (a) Point-to-point IDC bandwidth through CPU forwarding as a function of
//!     transfer size: saturates at a few GB/s (the paper measures 3.14 GB/s
//!     on real UPMEM hardware).
//! (b) Aggregate NMP bandwidth vs. achievable P2P IDC bandwidth at 16 DIMMs:
//!     the paper reports a ~51x gap.

use dimm_link::config::{IdcKind, SystemConfig};
use dimm_link::runner::RunResult;
use dimm_link::system::{natural_placement, NmpSystem};
use dimm_link::EnergyBreakdown;
use dl_bench::sweep::Sweep;
use dl_bench::{gbps, print_table, run_sweep, save_json, Args};
use dl_engine::Ps;
use dl_workloads::{synth, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    transfer_bytes: u64,
    idc_gbps: f64,
}

fn raw_run(wl: &dl_workloads::Workload, cfg: &SystemConfig) -> RunResult {
    let placement = natural_placement(wl);
    let run = NmpSystem::new(wl, cfg, &placement, None).run();
    RunResult {
        elapsed: run.elapsed,
        profiling: Ps::ZERO,
        stats: run.stats,
        energy: EnergyBreakdown::default(),
        status: run.status,
    }
}

fn main() {
    let args = Args::parse();
    println!("Figure 1: CPU-forwarding IDC exploration (UPMEM-like system)");

    let sizes: &[u64] = if args.quick {
        &[4 * 1024, 64 * 1024, 1024 * 1024]
    } else {
        &[
            1024,
            4 * 1024,
            16 * 1024,
            64 * 1024,
            256 * 1024,
            1024 * 1024,
            4 * 1024 * 1024,
        ]
    };

    // (a) P2P bandwidth vs transfer size through host forwarding; these are
    // raw NmpSystem runs, so they go in as custom points.
    let mut sweep = Sweep::new("fig01_motivation");
    for &bytes in sizes {
        sweep.custom(
            format!("bulk-copy {} KiB", bytes / 1024),
            "16D-8C MCN bulk-copy",
            move || {
                let params = WorkloadParams {
                    threads_per_dimm: 1,
                    ..WorkloadParams::small(16)
                };
                let wl = synth::bulk_copy(&params, bytes / 8); // 8 concurrent pairs
                let cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::CpuForwarding);
                raw_run(&wl, &cfg)
            },
        );
    }

    // (b) Aggregate NMP bandwidth vs IDC bandwidth at 16 DIMMs.
    let messages = if args.quick { 2_000 } else { 20_000 };
    let local_idx = sweep.custom("uniform local traffic", "16D-8C MCN all-local", move || {
        let params = WorkloadParams {
            threads_per_dimm: 4,
            ..WorkloadParams::small(16)
        };
        let local = synth::uniform_random(&params, messages, 0.0);
        let cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::CpuForwarding);
        raw_run(&local, &cfg)
    });

    let out = run_sweep(sweep, &args);

    let mut points = Vec::new();
    let mut rows = Vec::new();
    for (i, &bytes) in sizes.iter().enumerate() {
        // Each of the 8 pairs copies bytes/8: total payload moved = bytes.
        let bw = gbps(bytes, out.records[i].elapsed());
        rows.push(vec![
            format!("{} KiB", bytes / 1024),
            format!("{bw:.2} GB/s"),
        ]);
        points.push(Point {
            transfer_bytes: bytes,
            idc_gbps: bw,
        });
    }
    print_table(
        "Fig.1(a) P2P IDC bandwidth vs transfer size (paper: saturates ~3.14 GB/s)",
        &["total transfer", "IDC bandwidth"],
        &rows,
    );

    let local = &out.records[local_idx];
    let local_bytes = local.stats.get("traffic.local_bytes").unwrap_or(0.0) as u64;
    let nmp_bw = gbps(local_bytes, local.elapsed());
    let idc_bw = points.last().map(|p| p.idc_gbps).unwrap_or(1.0);
    print_table(
        "Fig.1(b) bandwidth gap at 16 DIMMs (paper: 1.28 TB/s NMP vs ~25 GB/s IDC, 51x)",
        &["metric", "value"],
        &[
            vec![
                "aggregate NMP bandwidth".into(),
                format!("{nmp_bw:.1} GB/s"),
            ],
            vec!["bulk P2P IDC bandwidth".into(), format!("{idc_bw:.2} GB/s")],
            vec!["gap".into(), format!("{:.0}x", nmp_bw / idc_bw.max(1e-9))],
        ],
    );
    save_json("fig01_motivation", &points);
}
