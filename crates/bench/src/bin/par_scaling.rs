#![forbid(unsafe_code)]
//! Wall-clock scaling of the intra-run parallel engine.
//!
//! Runs the evaluation-scale workloads on a 16D-8C DIMM-Link system at
//! `--sim-threads` 1, 2, 4 and 8 and reports wall-clock speedup over the
//! sequential run, checking along the way that every parallel run is
//! byte-identical to the sequential one (elapsed + full stat set). This is
//! a host-machine measurement, not a simulated metric: numbers vary with
//! the machine, the byte-identity check does not.
//!
//! Each point is run `REPS` times and the fastest repetition is kept, so a
//! cold file cache or a scheduler hiccup doesn't masquerade as a scaling
//! cliff.

use dimm_link::config::{IdcKind, SystemConfig};
use dimm_link::runner::simulate_with;
use dl_bench::{fmt_x, print_table, save_json, Args};
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;
use std::time::Instant;

const THREAD_POINTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;

#[derive(Serialize)]
struct Point {
    workload: String,
    sim_threads: usize,
    host_cores: usize,
    wall_ms: f64,
    speedup_vs_sequential: f64,
}

fn main() {
    let args = Args::parse();
    // The engine's parallelism comes from DIMM partitions, so measure on
    // the evaluation system (16 DIMMs = 16 partitions) at full scale
    // unless --quick/--scale says otherwise.
    let scale = if args.quick {
        args.scale
    } else {
        args.scale.max(14)
    };
    let params = WorkloadParams {
        scale,
        seed: args.seed,
        ..WorkloadParams::evaluation(16)
    };
    let cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!(
        "Intra-run DES scaling: 16D-8C DIMM-Link, scale {scale}, {REPS} reps/point, \
         {cores} host core(s)"
    );
    if cores < 2 {
        println!("note: single-core host — parallel runs can only measure overhead here");
    }

    let kinds = [
        WorkloadKind::Pagerank,
        WorkloadKind::Sssp,
        WorkloadKind::Bfs,
    ];
    let mut points: Vec<Point> = Vec::new();
    let mut rows = Vec::new();
    for kind in kinds {
        let wl = kind.build(&params);
        let mut row = vec![kind.to_string()];
        let mut base_ms = 0.0;
        let mut golden: Option<String> = None;
        for &n in &THREAD_POINTS {
            let mut best_ms = f64::INFINITY;
            for _ in 0..REPS {
                let t0 = Instant::now();
                let r = simulate_with(&wl, &cfg, n);
                best_ms = best_ms.min(t0.elapsed().as_secs_f64() * 1e3);
                let fp = format!("{} {:?}", r.elapsed, r.stats);
                match &golden {
                    None => golden = Some(fp),
                    Some(g) => assert_eq!(
                        g, &fp,
                        "{kind} diverged from sequential at --sim-threads {n}"
                    ),
                }
            }
            if n == 1 {
                base_ms = best_ms;
            }
            let speedup = base_ms / best_ms;
            row.push(format!("{best_ms:.0} ms ({})", fmt_x(speedup)));
            points.push(Point {
                workload: kind.to_string(),
                sim_threads: n,
                host_cores: cores,
                wall_ms: best_ms,
                speedup_vs_sequential: speedup,
            });
        }
        rows.push(row);
    }
    print_table(
        "Wall-clock per run (speedup vs --sim-threads 1)",
        &[
            "workload",
            "1 thread",
            "2 threads",
            "4 threads",
            "8 threads",
        ],
        &rows,
    );
    println!("\nAll parallel runs byte-identical to sequential.");
    save_json("par_scaling", &points);
}
