#![forbid(unsafe_code)]
//! Figure 14 — synchronization sensitivity.
//!
//! (a) Synthetic sweep over the synchronization interval: speedup of
//!     DIMM-Link-Hier over MCN, AIM and DIMM-Link-Central as barriers get
//!     denser. Paper: at a 500-instruction interval, Hier beats MCN by 5.3x
//!     and AIM by 2.2x.
//! (b) End-to-end TS.Pow (SynCron's task). Paper: 1.46-1.74x over MCN.

use dimm_link::config::{IdcKind, SyncScheme, SystemConfig};
use dimm_link::runner::simulate;
use dl_bench::sweep::Sweep;
use dl_bench::{fmt_x, print_table, run_sweep, save_json, Args};
use dl_workloads::{synth, WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    interval_cycles: u32,
    mcn_over_hier: f64,
    aim_over_hier: f64,
    central_over_hier: f64,
}

fn main() {
    let args = Args::parse();
    println!("Figure 14: synchronization sensitivity");

    let base = SystemConfig::nmp(16, 8);
    let hier = base.clone().with_idc(IdcKind::DimmLink);
    let mut central = hier.clone();
    central.sync = SyncScheme::Central;
    let mcn = base.clone().with_idc(IdcKind::CpuForwarding);
    let aim = base.clone().with_idc(IdcKind::DedicatedBus);
    let systems = [
        ("DL-Hier", hier),
        ("DL-Central", central),
        ("MCN", mcn),
        ("AIM", aim),
    ];

    let mut sweep = Sweep::new("fig14_sync");

    // (a) Interval sweep: the synthetic workload comes from `synth`, not
    // from a WorkloadKind, so these are custom points.
    let intervals = [500u32, 1000, 2000, 5000, 10000];
    let rounds = if args.quick { 40 } else { 200 };
    for &interval in &intervals {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            ..WorkloadParams::small(16)
        };
        for (name, cfg) in &systems {
            let cfg = cfg.clone();
            sweep.custom(
                format!("interval {interval} / {name}"),
                format!("16D-8C {} sync-sweep", cfg.idc),
                move || {
                    let wl = synth::sync_sweep(&params, interval, rounds);
                    simulate(&wl, &cfg)
                },
            );
        }
    }

    // (b) TS.Pow end-to-end. The lock-update frequency (and thus the
    // synchronization pressure SynCron targets) falls off with series
    // length, so this experiment caps the scale at the sync-rich regime.
    let ts_params = WorkloadParams {
        scale: args.scale.min(11),
        seed: args.seed,
        ..WorkloadParams::small(16)
    };
    let ts_base = sweep.len();
    for (name, cfg) in &systems {
        sweep.simulate(
            format!("ts.pow / {name}"),
            WorkloadKind::TsPow,
            ts_params,
            cfg.clone(),
        );
    }

    let out = run_sweep(sweep, &args);
    let elapsed = |i: usize| out.records[i].elapsed_f64();

    let mut rows = Vec::new();
    let mut points = Vec::new();
    for (n, &interval) in intervals.iter().enumerate() {
        let i = n * systems.len();
        let (t_hier, t_central, t_mcn, t_aim) =
            (elapsed(i), elapsed(i + 1), elapsed(i + 2), elapsed(i + 3));
        rows.push(vec![
            interval.to_string(),
            fmt_x(t_mcn / t_hier),
            fmt_x(t_aim / t_hier),
            fmt_x(t_central / t_hier),
        ]);
        points.push(Point {
            interval_cycles: interval,
            mcn_over_hier: t_mcn / t_hier,
            aim_over_hier: t_aim / t_hier,
            central_over_hier: t_central / t_hier,
        });
    }
    print_table(
        "Fig.14(a) DIMM-Link-Hier speedup vs sync interval (paper @500: 5.3x over MCN, 2.2x over AIM)",
        &["interval (instr)", "vs MCN", "vs AIM", "vs DL-Central"],
        &rows,
    );

    let t_hier = elapsed(ts_base);
    print_table(
        "Fig.14(b) TS.Pow end-to-end (paper: DL-Hier 1.46-1.74x over MCN)",
        &["system", "speedup of DL-Hier"],
        &[
            vec!["vs MCN".into(), fmt_x(elapsed(ts_base + 2) / t_hier)],
            vec!["vs AIM".into(), fmt_x(elapsed(ts_base + 3) / t_hier)],
            vec!["vs DL-Central".into(), fmt_x(elapsed(ts_base + 1) / t_hier)],
        ],
    );
    save_json("fig14_sync", &points);
}
