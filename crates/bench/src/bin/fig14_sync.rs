//! Figure 14 — synchronization sensitivity.
//!
//! (a) Synthetic sweep over the synchronization interval: speedup of
//!     DIMM-Link-Hier over MCN, AIM and DIMM-Link-Central as barriers get
//!     denser. Paper: at a 500-instruction interval, Hier beats MCN by 5.3x
//!     and AIM by 2.2x.
//! (b) End-to-end TS.Pow (SynCron's task). Paper: 1.46-1.74x over MCN.

use dimm_link::config::{IdcKind, SyncScheme, SystemConfig};
use dimm_link::runner::simulate;
use dl_bench::{fmt_x, print_table, save_json, Args};
use dl_workloads::{synth, WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    interval_cycles: u32,
    mcn_over_hier: f64,
    aim_over_hier: f64,
    central_over_hier: f64,
}

fn main() {
    let args = Args::parse();
    println!("Figure 14: synchronization sensitivity");

    let base = SystemConfig::nmp(16, 8);
    let hier = base.clone().with_idc(IdcKind::DimmLink);
    let mut central = hier.clone();
    central.sync = SyncScheme::Central;
    let mcn = base.clone().with_idc(IdcKind::CpuForwarding);
    let aim = base.clone().with_idc(IdcKind::DedicatedBus);

    // (a) Interval sweep.
    let rounds = if args.quick { 40 } else { 200 };
    let mut rows = Vec::new();
    let mut points = Vec::new();
    for &interval in &[500u32, 1000, 2000, 5000, 10000] {
        let params = WorkloadParams { scale: args.scale, seed: args.seed, ..WorkloadParams::small(16) };
        let wl = synth::sync_sweep(&params, interval, rounds);
        let t_hier = simulate(&wl, &hier).elapsed.as_ps() as f64;
        let t_central = simulate(&wl, &central).elapsed.as_ps() as f64;
        let t_mcn = simulate(&wl, &mcn).elapsed.as_ps() as f64;
        let t_aim = simulate(&wl, &aim).elapsed.as_ps() as f64;
        rows.push(vec![
            interval.to_string(),
            fmt_x(t_mcn / t_hier),
            fmt_x(t_aim / t_hier),
            fmt_x(t_central / t_hier),
        ]);
        points.push(Point {
            interval_cycles: interval,
            mcn_over_hier: t_mcn / t_hier,
            aim_over_hier: t_aim / t_hier,
            central_over_hier: t_central / t_hier,
        });
    }
    print_table(
        "Fig.14(a) DIMM-Link-Hier speedup vs sync interval (paper @500: 5.3x over MCN, 2.2x over AIM)",
        &["interval (instr)", "vs MCN", "vs AIM", "vs DL-Central"],
        &rows,
    );

    // (b) TS.Pow end-to-end. The lock-update frequency (and thus the
    // synchronization pressure SynCron targets) falls off with series
    // length, so this experiment caps the scale at the sync-rich regime.
    let params = WorkloadParams {
        scale: args.scale.min(11),
        seed: args.seed,
        ..WorkloadParams::small(16)
    };
    let wl = WorkloadKind::TsPow.build(&params);
    let t_hier = simulate(&wl, &hier).elapsed.as_ps() as f64;
    let t_mcn = simulate(&wl, &mcn).elapsed.as_ps() as f64;
    let t_aim = simulate(&wl, &aim).elapsed.as_ps() as f64;
    let t_central = simulate(&wl, &central).elapsed.as_ps() as f64;
    print_table(
        "Fig.14(b) TS.Pow end-to-end (paper: DL-Hier 1.46-1.74x over MCN)",
        &["system", "speedup of DL-Hier"],
        &[
            vec!["vs MCN".into(), fmt_x(t_mcn / t_hier)],
            vec!["vs AIM".into(), fmt_x(t_aim / t_hier)],
            vec!["vs DL-Central".into(), fmt_x(t_central / t_hier)],
        ],
    );
    save_json("fig14_sync", &points);
}
