#![forbid(unsafe_code)]
//! Ablation — packet-level vs flit-level network fidelity.
//!
//! The big sweeps use the packet-level model (`PacketNet`); this ablation
//! cross-checks it against the cycle-accurate flit-level router model
//! (`FlitNet`), BookSim-style: same traffic in, latencies compared.
//!
//! Two parts:
//! 1. the original curated chain-of-8 pattern table (human-readable
//!    sanity check), and
//! 2. the randomized differential suite from [`dl_bench::fidelity`] —
//!    every topology × scale × pattern × seed — asserting the documented
//!    error bounds and writing `target/sweeps/fidelity_diff.jsonl`.
//!
//! Exits non-zero if any case is outside the bound, so CI can gate on it.

use dimm_link::runner::RunResult;
use dimm_link::EnergyBreakdown;
use dl_bench::fidelity::{self, FidelityReport};
use dl_bench::sweep::Sweep;
use dl_bench::{print_table, run_sweep, save_json, Args};
use dl_engine::stats::StatSet;
use dl_engine::Ps;
use dl_noc::{FlitNet, FlitNetConfig, LinkParams, PacketNet, Topology, TopologyKind};
use dl_protocol::FLIT_BYTES;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    pattern: String,
    packet_level_ns: f64,
    flit_level_ns: f64,
    ratio: f64,
}

#[derive(Serialize)]
struct Summary {
    curated: Vec<Row>,
    differential: FidelityReport,
}

const PACKET_FLITS: u32 = 17; // max-size packets

fn wrap(makespan: Ps) -> RunResult {
    RunResult {
        elapsed: makespan,
        profiling: Ps::ZERO,
        stats: StatSet::new(),
        energy: EnergyBreakdown::default(),
        status: dl_engine::RunStatus::Completed,
    }
}

fn packet_makespan(pairs: &[(usize, usize)]) -> Ps {
    let topo = Topology::new(TopologyKind::Chain, 8);
    let mut pnet = PacketNet::new(&topo, LinkParams::grs_25gbps());
    let mut last = Ps::ZERO;
    for &(s, d) in pairs {
        last = last.max(pnet.send(Ps::ZERO, s, d, PACKET_FLITS as u64 * FLIT_BYTES as u64));
    }
    last
}

fn flit_makespan(pairs: &[(usize, usize)]) -> Ps {
    let topo = Topology::new(TopologyKind::Chain, 8);
    let mut fnet = FlitNet::new(&topo, FlitNetConfig::grs_25gbps());
    for (i, &(s, d)) in pairs.iter().enumerate() {
        fnet.inject(i as u64, s, d, PACKET_FLITS);
    }
    let deliveries = fnet.run_until_idle(10_000_000);
    let cycles = deliveries.iter().map(|d| d.cycle).max().unwrap_or(0);
    fnet.time_of(cycles)
}

fn main() {
    let args = Args::parse();
    println!("Ablation: packet-level vs flit-level network model");

    // --- Part 1: curated chain-of-8 table ---------------------------------
    let patterns: Vec<(&str, Vec<(usize, usize)>)> = vec![
        ("single 1-hop", vec![(0, 1)]),
        ("single 7-hop", vec![(0, 7)]),
        ("4 disjoint pairs", vec![(0, 1), (2, 3), (4, 5), (6, 7)]),
        (
            "hot link (4 -> middle)",
            vec![(0, 4), (1, 4), (2, 4), (3, 4)],
        ),
        ("all-to-one", (0..7).map(|s| (s, 7)).collect()),
        (
            "uniform 28 pairs",
            (0..8)
                .flat_map(|s| (0..8).filter(move |&d| d != s).map(move |d| (s, d)))
                .take(28)
                .collect(),
        ),
    ];

    // Two points per pattern: the fast packet-level model and the
    // cycle-accurate flit-level cross-check.
    let mut sweep = Sweep::new("ablation_fidelity");
    for (name, pairs) in &patterns {
        let p = pairs.clone();
        sweep.custom(
            format!("{name} / packet"),
            "chain-8 packet-level",
            move || wrap(packet_makespan(&p)),
        );
        let p = pairs.clone();
        sweep.custom(format!("{name} / flit"), "chain-8 flit-level", move || {
            wrap(flit_makespan(&p))
        });
    }
    let result = run_sweep(sweep, &args);

    let mut rows = Vec::new();
    let mut curated = Vec::new();
    for (i, (name, _)) in patterns.iter().enumerate() {
        let p = result.records[2 * i].elapsed().as_ns_f64();
        let f = result.records[2 * i + 1].elapsed().as_ns_f64();
        let ratio = p / f.max(1e-9);
        rows.push(vec![
            name.to_string(),
            format!("{p:.1}"),
            format!("{f:.1}"),
            format!("{ratio:.2}"),
        ]);
        curated.push(Row {
            pattern: name.to_string(),
            packet_level_ns: p,
            flit_level_ns: f,
            ratio,
        });
    }
    print_table(
        "Makespan comparison (17-flit packets); ratios near 1.0 validate the fast model",
        &["pattern", "packet-level (ns)", "flit-level (ns)", "ratio"],
        &rows,
    );

    // --- Part 2: randomized differential suite ----------------------------
    let seeds = if args.quick { 2 } else { 5 };
    let cases = fidelity::default_suite(seeds);
    println!(
        "\nDifferential suite: {} randomized cases (chain/ring/mesh/torus x \
         3 scales x 4 patterns x {seeds} seeds)",
        cases.len()
    );
    let diff = run_sweep(fidelity::build_sweep(&cases), &args);
    let report = fidelity::evaluate(&diff.records);
    println!(
        "fidelity: {} cases, max rel err {:.3}, mean rel err {:.3}, {} violation(s)",
        report.cases,
        report.max_rel_err,
        report.mean_rel_err,
        report.violations.len()
    );
    for v in &report.violations {
        println!(
            "  OUT OF BOUND {}: packet {:.1} ns vs flit {:.1} ns (rel {:.3}, bw {:.3})",
            v.label, v.packet_ns, v.flit_ns, v.rel_err, v.bw_rel_err
        );
    }

    let pass = report.pass;
    save_json(
        "fidelity_summary",
        &Summary {
            curated,
            differential: report,
        },
    );
    if !pass {
        eprintln!("fidelity differential suite FAILED (see fidelity_diff.jsonl)");
        std::process::exit(1);
    }
    println!("fidelity differential suite PASSED");
}
