#![forbid(unsafe_code)]
//! Figure 17 / Section VI — DL-group topology exploration at 16D-8C.
//!
//! Paper: relative to the practical chain ("half-ring") baseline, Ring
//! accelerates P2P IDC by 1.11x, Mesh by 1.19x, Torus by 1.27x on average.

use dimm_link::config::{IdcKind, SystemConfig};
use dimm_link::runner::simulate;
use dl_bench::sweep::Sweep;
use dl_bench::{fmt_x, geo, print_table, run_sweep, save_json, Args};
use dl_noc::TopologyKind;
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    ring: f64,
    mesh: f64,
    torus: f64,
}

fn cfg_with(topo: TopologyKind) -> SystemConfig {
    let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
    cfg.topology = topo;
    cfg
}

fn main() {
    let args = Args::parse();
    println!(
        "Figure 17: topology exploration at 16D-8C (scale {})",
        args.scale
    );
    let all_topos = [
        TopologyKind::Chain,
        TopologyKind::Ring,
        TopologyKind::Mesh,
        TopologyKind::Torus,
    ];

    let mut sweep = Sweep::new("fig17_topology");
    for kind in WorkloadKind::P2P_SET {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            ..WorkloadParams::small(16)
        };
        for topo in all_topos {
            sweep.simulate(format!("{kind} / {topo:?}"), kind, params, cfg_with(topo));
        }
    }

    // Supplementary: the diameter effect in isolation. With two DL groups
    // the inter-group host path hides intra-group hop savings; a single
    // 16-DIMM group (chain diameter 15) under a uniform IDC stress exposes
    // exactly the congestion/diameter problem Section VI discusses.
    let stress_base = sweep.len();
    {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            ..WorkloadParams::small(16)
        };
        let messages = if args.quick { 500 } else { 4000 };
        for topo in all_topos {
            let mut cfg = cfg_with(topo);
            cfg.groups = 1;
            sweep.custom(
                format!("uniform-stress / {topo:?}"),
                format!("16D-8C single-group {topo:?}"),
                move || {
                    let stress = dl_workloads::synth::uniform_random(&params, messages, 0.9);
                    simulate(&stress, &cfg)
                },
            );
        }
    }

    let out = run_sweep(sweep, &args);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut per_topo: Vec<Vec<f64>> = vec![Vec::new(); all_topos.len() - 1];
    for (w, kind) in WorkloadKind::P2P_SET.iter().enumerate() {
        let runs = &out.records[w * all_topos.len()..(w + 1) * all_topos.len()];
        let base = runs[0].elapsed_f64();
        let mut speeds = Vec::new();
        for (i, r) in runs[1..].iter().enumerate() {
            let s = base / r.elapsed_f64();
            per_topo[i].push(s);
            speeds.push(s);
        }
        rows.push(vec![
            kind.to_string(),
            fmt_x(speeds[0]),
            fmt_x(speeds[1]),
            fmt_x(speeds[2]),
        ]);
        json.push(Row {
            workload: kind.to_string(),
            ring: speeds[0],
            mesh: speeds[1],
            torus: speeds[2],
        });
    }
    rows.push(vec![
        "geomean".into(),
        fmt_x(geo(&per_topo[0])),
        fmt_x(geo(&per_topo[1])),
        fmt_x(geo(&per_topo[2])),
    ]);
    print_table(
        "Fig.17 speedup over the chain baseline (paper: Ring 1.11x, Mesh 1.19x, Torus 1.27x)",
        &["workload", "Ring", "Mesh", "Torus"],
        &rows,
    );

    let stress = &out.records[stress_base..stress_base + all_topos.len()];
    let base = stress[0].elapsed_f64();
    let mut srow = vec!["uniform-IDC stress".to_string()];
    for r in &stress[1..] {
        srow.push(fmt_x(base / r.elapsed_f64()));
    }
    print_table(
        "Fig.17 supplement: one 16-DIMM group (diameter 15), uniform IDC stress",
        &["workload", "Ring", "Mesh", "Torus"],
        &[srow],
    );
    save_json("fig17_topology", &json);
}
