//! Figure 17 / Section VI — DL-group topology exploration at 16D-8C.
//!
//! Paper: relative to the practical chain ("half-ring") baseline, Ring
//! accelerates P2P IDC by 1.11x, Mesh by 1.19x, Torus by 1.27x on average.

use dimm_link::config::{IdcKind, SystemConfig};
use dimm_link::runner::simulate;
use dl_bench::{fmt_x, geo, print_table, save_json, Args};
use dl_noc::TopologyKind;
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    ring: f64,
    mesh: f64,
    torus: f64,
}

fn main() {
    let args = Args::parse();
    println!("Figure 17: topology exploration at 16D-8C (scale {})", args.scale);
    let topos = [TopologyKind::Ring, TopologyKind::Mesh, TopologyKind::Torus];

    let mut rows = Vec::new();
    let mut out = Vec::new();
    let mut per_topo: Vec<Vec<f64>> = vec![Vec::new(); topos.len()];
    for kind in WorkloadKind::P2P_SET {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            ..WorkloadParams::small(16)
        };
        let wl = kind.build(&params);
        let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
        cfg.topology = TopologyKind::Chain;
        let base = simulate(&wl, &cfg).elapsed.as_ps() as f64;
        let mut speeds = Vec::new();
        for (i, &topo) in topos.iter().enumerate() {
            let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
            cfg.topology = topo;
            let t = simulate(&wl, &cfg).elapsed.as_ps() as f64;
            let s = base / t;
            per_topo[i].push(s);
            speeds.push(s);
        }
        rows.push(vec![
            kind.to_string(),
            fmt_x(speeds[0]),
            fmt_x(speeds[1]),
            fmt_x(speeds[2]),
        ]);
        out.push(Row {
            workload: kind.to_string(),
            ring: speeds[0],
            mesh: speeds[1],
            torus: speeds[2],
        });
    }
    rows.push(vec![
        "geomean".into(),
        fmt_x(geo(&per_topo[0])),
        fmt_x(geo(&per_topo[1])),
        fmt_x(geo(&per_topo[2])),
    ]);
    print_table(
        "Fig.17 speedup over the chain baseline (paper: Ring 1.11x, Mesh 1.19x, Torus 1.27x)",
        &["workload", "Ring", "Mesh", "Torus"],
        &rows,
    );

    // Supplementary: the diameter effect in isolation. With two DL groups
    // the inter-group host path hides intra-group hop savings; a single
    // 16-DIMM group (chain diameter 15) under a uniform IDC stress exposes
    // exactly the congestion/diameter problem Section VI discusses.
    let params = WorkloadParams {
        scale: args.scale,
        seed: args.seed,
        ..WorkloadParams::small(16)
    };
    let stress = dl_workloads::synth::uniform_random(&params, if args.quick { 500 } else { 4000 }, 0.9);
    let mut srow = vec!["uniform-IDC stress".to_string()];
    let mut base = 0.0;
    for topo in [TopologyKind::Chain, TopologyKind::Ring, TopologyKind::Mesh, TopologyKind::Torus] {
        let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
        cfg.topology = topo;
        cfg.groups = 1;
        let t = simulate(&stress, &cfg).elapsed.as_ps() as f64;
        if base == 0.0 {
            base = t;
            continue;
        }
        srow.push(fmt_x(base / t));
    }
    print_table(
        "Fig.17 supplement: one 16-DIMM group (diameter 15), uniform IDC stress",
        &["workload", "Ring", "Mesh", "Torus"],
        &[srow],
    );
    save_json("fig17_topology", &out);
}
