//! Ablation — DRAM controller policies.
//!
//! DESIGN.md calls out three controller design choices; this ablation
//! quantifies each at the system level:
//! * FR-FCFS hit-streak cap (1 ~ FCFS, 4 default, 16 hit-first),
//! * row policy (open- vs closed-page),
//! * address mapping (plain vs XOR bank permutation).

use dimm_link::config::{IdcKind, SystemConfig};
use dimm_link::runner::simulate;
use dl_bench::{fmt_x, print_table, save_json, Args};
use dl_mem::{MappingScheme, RowPolicy};
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    cap1_vs_cap4: f64,
    cap16_vs_cap4: f64,
}

fn main() {
    let args = Args::parse();
    println!("Ablation: FR-FCFS hit-streak cap (16D-8C DIMM-Link, scale {})", args.scale);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for kind in [WorkloadKind::Pagerank, WorkloadKind::Hotspot, WorkloadKind::KMeans] {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            ..WorkloadParams::small(16)
        };
        let wl = kind.build(&params);
        let run = |cap: u32| {
            let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
            cfg.dram.hit_streak_cap = cap;
            simulate(&wl, &cfg).elapsed.as_ps() as f64
        };
        let t1 = run(1);
        let t4 = run(4);
        let t16 = run(16);
        rows.push(vec![kind.to_string(), fmt_x(t4 / t1), fmt_x(t4 / t16)]);
        out.push(Row {
            workload: kind.to_string(),
            cap1_vs_cap4: t4 / t1,
            cap16_vs_cap4: t4 / t16,
        });
    }
    print_table(
        "Speedup relative to the default cap of 4 (>1 means the variant is faster)",
        &["workload", "cap=1 (FCFS-ish)", "cap=16 (hit-first)"],
        &rows,
    );

    // Row policy and mapping scheme.
    let mut rows2 = Vec::new();
    for kind in [WorkloadKind::Pagerank, WorkloadKind::Hotspot, WorkloadKind::KMeans] {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            ..WorkloadParams::small(16)
        };
        let wl = kind.build(&params);
        let base = {
            let cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
            simulate(&wl, &cfg).elapsed.as_ps() as f64
        };
        let closed = {
            let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
            cfg.dram.row_policy = RowPolicy::Closed;
            simulate(&wl, &cfg).elapsed.as_ps() as f64
        };
        let xor = {
            let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
            cfg.dram.mapping = MappingScheme::BankXor;
            simulate(&wl, &cfg).elapsed.as_ps() as f64
        };
        rows2.push(vec![kind.to_string(), fmt_x(base / closed), fmt_x(base / xor)]);
    }
    print_table(
        "Row policy / mapping vs the open-page + plain default",
        &["workload", "closed-page", "XOR bank mapping"],
        &rows2,
    );
    save_json("ablation_sched", &out);
}
