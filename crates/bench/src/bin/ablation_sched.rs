#![forbid(unsafe_code)]
//! Ablation — DRAM controller policies.
//!
//! DESIGN.md calls out three controller design choices; this ablation
//! quantifies each at the system level:
//! * FR-FCFS hit-streak cap (1 ~ FCFS, 4 default, 16 hit-first),
//! * row policy (open- vs closed-page),
//! * address mapping (plain vs XOR bank permutation).

use dimm_link::config::{IdcKind, SystemConfig};
use dl_bench::sweep::Sweep;
use dl_bench::{fmt_x, print_table, run_sweep, save_json, Args};
use dl_mem::{MappingScheme, RowPolicy};
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    cap1_vs_cap4: f64,
    cap16_vs_cap4: f64,
}

const WORKLOADS: [WorkloadKind; 3] = [
    WorkloadKind::Pagerank,
    WorkloadKind::Hotspot,
    WorkloadKind::KMeans,
];

fn main() {
    let args = Args::parse();
    println!(
        "Ablation: FR-FCFS hit-streak cap (16D-8C DIMM-Link, scale {})",
        args.scale
    );

    // Five variants per workload: three hit-streak caps, closed-page, and
    // XOR bank mapping. The cap=4 run is the stock configuration, so it
    // doubles as the open-page + plain-mapping baseline.
    let mut sweep = Sweep::new("ablation_sched");
    for kind in WORKLOADS {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            ..WorkloadParams::small(16)
        };
        for cap in [1u32, 4, 16] {
            let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
            cfg.dram.hit_streak_cap = cap;
            sweep.simulate(format!("{kind} / cap={cap}"), kind, params, cfg);
        }
        let base = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
        let mut closed = base.clone();
        closed.dram.row_policy = RowPolicy::Closed;
        let mut xor = base;
        xor.dram.mapping = MappingScheme::BankXor;
        sweep.simulate(format!("{kind} / closed-page"), kind, params, closed);
        sweep.simulate(format!("{kind} / xor-mapping"), kind, params, xor);
    }
    let out = run_sweep(sweep, &args);
    const PER_WORKLOAD: usize = 5;

    let mut rows = Vec::new();
    let mut json = Vec::new();
    let mut rows2 = Vec::new();
    for (w, kind) in WORKLOADS.iter().enumerate() {
        let runs = &out.records[w * PER_WORKLOAD..(w + 1) * PER_WORKLOAD];
        let (t1, t4, t16) = (
            runs[0].elapsed_f64(),
            runs[1].elapsed_f64(),
            runs[2].elapsed_f64(),
        );
        rows.push(vec![kind.to_string(), fmt_x(t4 / t1), fmt_x(t4 / t16)]);
        json.push(Row {
            workload: kind.to_string(),
            cap1_vs_cap4: t4 / t1,
            cap16_vs_cap4: t4 / t16,
        });
        rows2.push(vec![
            kind.to_string(),
            fmt_x(t4 / runs[3].elapsed_f64()),
            fmt_x(t4 / runs[4].elapsed_f64()),
        ]);
    }
    print_table(
        "Speedup relative to the default cap of 4 (>1 means the variant is faster)",
        &["workload", "cap=1 (FCFS-ish)", "cap=16 (hit-first)"],
        &rows,
    );
    print_table(
        "Row policy / mapping vs the open-page + plain default",
        &["workload", "closed-page", "XOR bank mapping"],
        &rows2,
    );
    save_json("ablation_sched", &json);
}
