#![forbid(unsafe_code)]
//! Figure 13 — energy consumption of the IDC methods at 16D-8C.
//!
//! Paper: DIMM-Link consumes 1.76x less energy than MCN on average (mostly
//! from reduced IDC energy) and 1.07x less than AIM (whose bus is cheap per
//! bit but whose runs are longer).

use dimm_link::config::{IdcKind, SystemConfig};
use dl_bench::sweep::Sweep;
use dl_bench::{fmt_x, geo, print_table, run_sweep, save_json, Args};
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    system: String,
    dram_mj: f64,
    bus_mj: f64,
    idc_mj: f64,
    cores_mj: f64,
    host_mj: f64,
    total_mj: f64,
}

fn mj(j: f64) -> f64 {
    j * 1e3
}

const SYSTEMS: [(&str, IdcKind); 3] = [
    ("MCN", IdcKind::CpuForwarding),
    ("AIM", IdcKind::DedicatedBus),
    ("DIMM-Link", IdcKind::DimmLink),
];

fn main() {
    let args = Args::parse();
    println!("Figure 13: energy at 16D-8C (scale {})", args.scale);
    let base = SystemConfig::nmp(16, 8);

    let mut sweep = Sweep::new("fig13_energy");
    for kind in WorkloadKind::P2P_SET {
        let params = WorkloadParams {
            scale: args.scale,
            seed: args.seed,
            ..WorkloadParams::small(16)
        };
        for (name, idc) in SYSTEMS {
            sweep.simulate(
                format!("{kind} / {name}"),
                kind,
                params,
                base.clone().with_idc(idc),
            );
        }
    }
    let result = run_sweep(sweep, &args);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    let mut ratios_mcn = Vec::new();
    let mut ratios_aim = Vec::new();
    for (w, kind) in WorkloadKind::P2P_SET.iter().enumerate() {
        let runs = &result.records[w * SYSTEMS.len()..(w + 1) * SYSTEMS.len()];
        let totals: Vec<f64> = runs.iter().map(|r| r.energy.total()).collect();
        ratios_mcn.push(totals[0] / totals[2]);
        ratios_aim.push(totals[1] / totals[2]);
        for ((name, _), r) in SYSTEMS.iter().zip(runs) {
            let e = r.energy;
            rows.push(vec![
                kind.to_string(),
                name.to_string(),
                format!("{:.3}", mj(e.dram_j)),
                format!("{:.3}", mj(e.bus_j)),
                format!("{:.3}", mj(e.idc_j)),
                format!("{:.3}", mj(e.nmp_cores_j)),
                format!("{:.3}", mj(e.host_j)),
                format!("{:.3}", mj(e.total())),
            ]);
            out.push(Row {
                workload: kind.to_string(),
                system: name.to_string(),
                dram_mj: mj(e.dram_j),
                bus_mj: mj(e.bus_j),
                idc_mj: mj(e.idc_j),
                cores_mj: mj(e.nmp_cores_j),
                host_mj: mj(e.host_j),
                total_mj: mj(e.total()),
            });
        }
    }
    print_table(
        "Fig.13 energy breakdown (mJ)",
        &[
            "workload",
            "system",
            "DRAM",
            "mem-bus",
            "IDC",
            "NMP cores",
            "host",
            "total",
        ],
        &rows,
    );
    print_table(
        "Fig.13 energy ratios (paper: MCN/DL 1.76x, AIM/DL 1.07x)",
        &["metric", "measured", "paper"],
        &[
            vec![
                "MCN / DIMM-Link".into(),
                fmt_x(geo(&ratios_mcn)),
                "1.76x".into(),
            ],
            vec![
                "AIM / DIMM-Link".into(),
                fmt_x(geo(&ratios_aim)),
                "1.07x".into(),
            ],
        ],
    );
    save_json("fig13_energy", &out);
}
