#![forbid(unsafe_code)]
//! Figure 16 — DIMM-Link bandwidth exploration, 4 GB/s to 64 GB/s.
//!
//! Paper: the benefit of extra link bandwidth grows with the system size;
//! at 16D-8C, HS and BFS improve almost linearly — evidence that the large
//! chain diameter causes congestion that bandwidth relieves.

use dimm_link::config::{IdcKind, SystemConfig};
use dl_bench::sweep::Sweep;
use dl_bench::{fmt_x, print_table, run_sweep, save_json, Args};
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    config: String,
    workload: String,
    link_gbps: u64,
    speedup_vs_4gbps: f64,
}

fn main() {
    let args = Args::parse();
    println!("Figure 16: link-bandwidth sweep (scale {})", args.scale);
    let bandwidths: &[u64] = &[4, 8, 16, 25, 32, 64];
    let workloads = [
        WorkloadKind::Hotspot,
        WorkloadKind::Bfs,
        WorkloadKind::Pagerank,
    ];
    let configs = [("4D-2C", 4usize, 2usize), ("16D-8C", 16, 8)];

    let mut sweep = Sweep::new("fig16_bandwidth");
    for (cfg_name, dimms, channels) in configs {
        for kind in workloads {
            let params = WorkloadParams {
                scale: args.scale,
                seed: args.seed,
                ..WorkloadParams::small(dimms)
            };
            for &gb in bandwidths {
                let mut cfg = SystemConfig::nmp(dimms, channels).with_idc(IdcKind::DimmLink);
                cfg.link = cfg.link.with_bandwidth(gb * 1_000_000_000);
                sweep.simulate(
                    format!("{cfg_name} / {kind} / {gb} GB/s"),
                    kind,
                    params,
                    cfg,
                );
            }
        }
    }
    let result = run_sweep(sweep, &args);

    let mut out = Vec::new();
    let mut idx = 0;
    for (cfg_name, _, _) in configs {
        let mut rows = Vec::new();
        for kind in workloads {
            let mut row = vec![kind.to_string()];
            let base_ps = result.records[idx].elapsed_f64();
            for &gb in bandwidths {
                let s = base_ps / result.records[idx].elapsed_f64();
                idx += 1;
                row.push(fmt_x(s));
                out.push(Point {
                    config: cfg_name.to_string(),
                    workload: kind.to_string(),
                    link_gbps: gb,
                    speedup_vs_4gbps: s,
                });
            }
            rows.push(row);
        }
        print_table(
            &format!("Fig.16 {cfg_name}: speedup vs 4 GB/s links"),
            &["workload", "4", "8", "16", "25", "32", "64 GB/s"],
            &rows,
        );
    }
    println!("\nExpected shape: gains grow with system size (16D-8C > 4D-2C).");
    save_json("fig16_bandwidth", &out);
}
