#![forbid(unsafe_code)]
//! Ablation — profiling-fraction sensitivity of Algorithm 1.
//!
//! The paper profiles the first 1 % of memory accesses (following TOM).
//! This ablation sweeps the fraction: too little profiling mis-places
//! threads; too much wastes time in the profiling phase (which is charged
//! to the end-to-end result).

use dimm_link::config::{IdcKind, SystemConfig};
use dl_bench::sweep::Sweep;
use dl_bench::{fmt_pct, fmt_x, print_table, run_sweep, save_json, Args};
use dl_workloads::{WorkloadKind, WorkloadParams};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    fraction: f64,
    speedup_vs_base: f64,
    profiling_share: f64,
}

fn main() {
    let args = Args::parse();
    println!(
        "Ablation: Algorithm 1 profiling fraction (PR, 16D-8C, scale {})",
        args.scale
    );
    let params = WorkloadParams {
        scale: args.scale,
        seed: args.seed,
        ..WorkloadParams::small(16)
    };
    let base_cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
    let fractions = [0.001, 0.005, 0.01, 0.05, 0.10];

    let mut sweep = Sweep::new("ablation_profile");
    sweep.simulate(
        "pr / DL-base",
        WorkloadKind::Pagerank,
        params,
        base_cfg.clone(),
    );
    for &frac in &fractions {
        let mut cfg = base_cfg.clone();
        cfg.profile_fraction = frac;
        sweep.simulate_optimized(
            format!("pr / DL-opt frac={frac}"),
            WorkloadKind::Pagerank,
            params,
            cfg,
        );
    }
    let out = run_sweep(sweep, &args);
    let base = out.records[0].elapsed_f64();

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (i, &frac) in fractions.iter().enumerate() {
        let r = &out.records[1 + i];
        let share = r.profiling_ps as f64 / r.elapsed_f64();
        let speedup = base / r.elapsed_f64();
        rows.push(vec![fmt_pct(frac), fmt_x(speedup), fmt_pct(share)]);
        json.push(Row {
            fraction: frac,
            speedup_vs_base: speedup,
            profiling_share: share,
        });
    }
    print_table(
        "DL-opt vs DL-base (natural placement) as the profiled fraction grows",
        &[
            "profiled fraction",
            "speedup vs DL-base",
            "time in profiling",
        ],
        &rows,
    );
    println!(
        "\nNote: the natural placement used by DL-base is already data-affine in \
         this reproduction, so Algorithm 1's value here is recovering that \
         placement from a random start at small profiling cost (the paper's \
         baseline mapping is less affine, giving it the extra 1.12x headroom)."
    );
    save_json("ablation_profile", &json);
}
