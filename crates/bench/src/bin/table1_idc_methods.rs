#![forbid(unsafe_code)]
//! Table I — maximum-bandwidth comparison of the IDC methods.
//!
//! Prints the paper's analytic maxima (β = one channel's bandwidth) next to
//! bandwidths measured with a saturating stream microbench on each
//! mechanism.

use dimm_link::config::{IdcKind, SystemConfig};
use dimm_link::host::HostPath;
use dimm_link::idc::Interconnect;
use dimm_link::runner::RunResult;
use dimm_link::EnergyBreakdown;
use dl_bench::sweep::Sweep;
use dl_bench::{gbps, print_table, run_sweep, save_json, Args};
use dl_engine::stats::StatSet;
use dl_engine::Ps;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    method: String,
    analytic: String,
    analytic_gbps: f64,
    measured_gbps: f64,
}

const BYTES: u64 = 272; // max-size packet

/// Saturates a mechanism with concurrent neighbour-to-neighbour streams;
/// the returned elapsed time is the last arrival, from which the aggregate
/// delivered bandwidth follows.
fn measure(kind: IdcKind, packets: u64) -> RunResult {
    let cfg = SystemConfig::nmp(16, 8).with_idc(kind);
    let mut idc = Interconnect::new(&cfg);
    let mut host = HostPath::new(&cfg, &idc.proxy_channels(&cfg));
    let mut last = Ps::ZERO;
    // 8 disjoint adjacent pairs stream concurrently.
    for round in 0..packets {
        let t = Ps::from_ns(round); // arrival pacing well above capacity
        for pair in 0..8usize {
            let src = 2 * pair;
            let (arrival, _) = idc.unicast(&mut host, &cfg, t, src, src + 1, BYTES);
            last = last.max(arrival);
        }
    }
    RunResult {
        elapsed: last,
        profiling: Ps::ZERO,
        stats: StatSet::new(),
        energy: EnergyBreakdown::default(),
        status: dl_engine::RunStatus::Completed,
    }
}

fn main() {
    let args = Args::parse();
    let packets = if args.quick { 2_000 } else { 20_000 };
    let beta = 19.2; // GB/s per channel

    let rows_data = [
        (
            IdcKind::CpuForwarding,
            "#Channel x beta/2",
            8.0 * beta / 2.0,
        ),
        (IdcKind::AbcDimm, "#DIMM x beta (broadcast)", 16.0 * beta),
        (IdcKind::DedicatedBus, "beta", beta),
        (IdcKind::DimmLink, "#Link x beta_link", 14.0 * 25.0),
    ];

    // ABC-DIMM's point-to-point path is CPU forwarding; its analytic
    // entry refers to broadcast (measured in fig12). Measure P2P here.
    let mut sweep = Sweep::new("table1_idc_methods");
    for (kind, _, _) in rows_data {
        sweep.custom(
            format!("{kind} / stream"),
            format!("16D-8C {kind} saturating stream"),
            move || measure(kind, packets),
        );
    }
    let result = run_sweep(sweep, &args);

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for ((kind, formula, analytic), record) in rows_data.into_iter().zip(&result.records) {
        let measured = gbps(BYTES * packets * 8, record.elapsed());
        rows.push(vec![
            kind.to_string(),
            formula.to_string(),
            format!("{analytic:.1} GB/s"),
            format!("{measured:.1} GB/s"),
        ]);
        out.push(Row {
            method: kind.to_string(),
            analytic: formula.to_string(),
            analytic_gbps: analytic,
            measured_gbps: measured,
        });
    }
    print_table(
        "Table I: maximum P2P IDC bandwidth (16D-8C; analytic vs measured stream)",
        &["method", "formula", "analytic", "measured P2P"],
        &rows,
    );
    println!(
        "\nNotes: MCN/ABC measured P2P includes polling discovery and the host \
         round trip, so it sits below the channel-count bound; DIMM-Link's \
         adjacent-pair stream exercises 8 of the 14 links."
    );
    save_json("table1_idc_methods", &out);
}
