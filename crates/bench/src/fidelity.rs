//! Cross-fidelity differential validation: `PacketNet` vs `FlitNet`.
//!
//! The figure sweeps all run on the fast packet-level model; this module is
//! the harness that keeps it honest against the cycle-accurate flit-level
//! router model (the role BookSim plays for MultiPIM). A deterministic,
//! seeded traffic generator produces *identical* workloads — unicast
//! bursts, broadcasts, congestion hot-spots, mixed packet sizes — and each
//! case runs through both models over the same topology, asserting that
//! makespan latency and aggregate bandwidth agree within the documented
//! bound below.
//!
//! # Error bound
//!
//! The two models are intentionally different abstractions, so agreement
//! is bounded, not exact. The residual, *documented* divergences are:
//!
//! * **Endpoint pipeline accounting.** `FlitNet` charges the full
//!   13-cycle wire/router pipeline on every hop including the last, while
//!   `PacketNet` charges `router_latency` only at intermediate routers —
//!   a fixed ≈3 ns offset per case, dominant for short single-packet
//!   cases. This is covered by [`ABS_ERR_FLOOR`].
//! * **Cycle quantization.** 8 ns of per-hop latency rounds up to 13
//!   cycles of 640 ps (8.32 ns), plus switch/ejection alignment cycles.
//! * **Arbitration micro-behaviour.** Wormhole VC arbitration and credit
//!   round-trips under congestion vs. gap-splitting bandwidth reservation
//!   (`PacketNet` interleaves link occupancy across idle gaps; real
//!   wormhole arbitration grants whole-flit slots and can stall on
//!   credits) diverge on *ordering*, which shifts makespans by a bounded
//!   factor captured in [`REL_ERR_BOUND`].
//!
//! A case passes when its latency error is inside [`REL_ERR_BOUND`] and
//! its bandwidth error inside [`BW_REL_ERR_BOUND`] (the same bound mapped
//! into reciprocal space), **or** its absolute latency error is under
//! [`ABS_ERR_FLOOR`]; the suite additionally requires the mean relative
//! error to stay under [`MEAN_REL_ERR_BOUND`], which catches systematic
//! drift that per-case slack would hide.
//!
//! Run `cargo run --release -p dl-bench --bin ablation_fidelity` to execute
//! the full suite; divergences land in `target/sweeps/fidelity_diff.jsonl`.

use crate::sweep::{RunRecord, Sweep};
use dimm_link::runner::RunResult;
use dimm_link::EnergyBreakdown;
use dl_engine::stats::StatSet;
use dl_engine::{DetRng, Ps};
use dl_noc::{FlitNet, FlitNetConfig, LinkParams, PacketNet, Topology, TopologyKind};
use dl_protocol::FLIT_BYTES;
use serde::Serialize;

/// Per-case relative-error bound on latency (see module docs).
pub const REL_ERR_BOUND: f64 = 0.25;
/// Per-case relative-error bound on aggregate bandwidth. Bandwidth is the
/// reciprocal of makespan, so a latency divergence of `r` (flit model as
/// reference) appears as `r / (1 - r)` in bandwidth space (packet model as
/// reference); the bound is transformed the same way to keep the two views
/// consistent — otherwise packet-faster cases would face a silently tighter
/// latency bound than packet-slower ones.
pub const BW_REL_ERR_BOUND: f64 = REL_ERR_BOUND / (1.0 - REL_ERR_BOUND);
/// Per-case absolute latency slack covering the fixed endpoint-accounting
/// offset between the models (≈3 ns router + cycle alignment).
pub const ABS_ERR_FLOOR: Ps = Ps::from_ns(15);
/// Suite-wide mean relative-error bound (systematic-drift detector).
pub const MEAN_REL_ERR_BOUND: f64 = 0.10;

/// Maximum packet size in flits (8 B header + 256 B payload + 8 B tail).
pub const MAX_FLITS: u32 = 17;

/// Traffic shapes the generator produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Pattern {
    /// Random source/destination pairs, max-size packets.
    UnicastBurst,
    /// Concurrent broadcasts from random sources.
    Broadcast,
    /// Every node fires at one random destination (congestion).
    HotSpot,
    /// Random mix of unicast sizes plus occasional broadcasts.
    Mixed,
}

impl Pattern {
    /// All patterns, in suite order.
    pub const ALL: [Pattern; 4] = [
        Pattern::UnicastBurst,
        Pattern::Broadcast,
        Pattern::HotSpot,
        Pattern::Mixed,
    ];

    /// Short label used in sweep-point names.
    pub fn label(&self) -> &'static str {
        match self {
            Pattern::UnicastBurst => "burst",
            Pattern::Broadcast => "bcast",
            Pattern::HotSpot => "hotspot",
            Pattern::Mixed => "mixed",
        }
    }
}

/// One differential test case: a topology, a traffic pattern, and a seed.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct FidelityCase {
    /// Network shape.
    pub kind: TopologyKind,
    /// Node count.
    pub nodes: usize,
    /// Traffic shape.
    pub pattern: Pattern,
    /// Generator seed; the case is fully determined by these four fields.
    pub seed: u64,
}

impl FidelityCase {
    /// The sweep-point label, e.g. `"torus16/hotspot/s3"`.
    pub fn label(&self) -> String {
        format!(
            "{}{}/{}/s{}",
            self.kind,
            self.nodes,
            self.pattern.label(),
            self.seed
        )
    }
}

/// One network operation, identical for both models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Point-to-point transfer of `flits` 16-byte flits.
    Unicast {
        /// Source node.
        src: usize,
        /// Destination node.
        dst: usize,
        /// Packet length in flits.
        flits: u32,
    },
    /// Broadcast of `flits` 16-byte flits over the BFS tree.
    Broadcast {
        /// Source node.
        src: usize,
        /// Packet length in flits.
        flits: u32,
    },
}

/// Expands a case into its concrete operation list (deterministic in the
/// case fields alone — this is what makes the differential fair: both
/// models consume exactly this list).
pub fn ops_for(case: &FidelityCase) -> Vec<Op> {
    let n = case.nodes;
    let mut rng = DetRng::seed(case.seed).stream(&case.label());
    let mut ops = Vec::new();
    match case.pattern {
        Pattern::UnicastBurst => {
            for _ in 0..2 * n {
                let src = rng.below(n as u64) as usize;
                let mut dst = rng.below(n as u64) as usize;
                if dst == src {
                    dst = (dst + 1) % n;
                }
                ops.push(Op::Unicast {
                    src,
                    dst,
                    flits: MAX_FLITS,
                });
            }
        }
        Pattern::Broadcast => {
            for _ in 0..2 {
                let src = rng.below(n as u64) as usize;
                ops.push(Op::Broadcast {
                    src,
                    flits: MAX_FLITS,
                });
            }
        }
        Pattern::HotSpot => {
            let dst = rng.below(n as u64) as usize;
            for src in (0..n).filter(|&s| s != dst) {
                for _ in 0..2 {
                    ops.push(Op::Unicast {
                        src,
                        dst,
                        flits: MAX_FLITS,
                    });
                }
            }
        }
        Pattern::Mixed => {
            for _ in 0..3 * n {
                let flits = 1 + rng.below(MAX_FLITS as u64) as u32;
                if rng.below(10) == 0 {
                    let src = rng.below(n as u64) as usize;
                    ops.push(Op::Broadcast { src, flits });
                } else {
                    let src = rng.below(n as u64) as usize;
                    let mut dst = rng.below(n as u64) as usize;
                    if dst == src {
                        dst = (dst + 1) % n;
                    }
                    ops.push(Op::Unicast { src, dst, flits });
                }
            }
        }
    }
    ops
}

/// Both models' results for one case.
#[derive(Debug, Clone, Copy)]
pub struct CaseMeasurement {
    /// Packet-level makespan.
    pub packet: Ps,
    /// Flit-level makespan.
    pub flit: Ps,
    /// Bytes moved across all links (identical in both models by
    /// construction: same routes, same trees, same packet sizes).
    pub link_bytes: u64,
}

impl CaseMeasurement {
    /// Relative makespan error, flit model as reference.
    pub fn rel_err(&self) -> f64 {
        let p = self.packet.as_ps() as f64;
        let f = self.flit.as_ps() as f64;
        (p - f).abs() / f.max(1.0)
    }

    /// Absolute makespan error.
    pub fn abs_err(&self) -> Ps {
        Ps::from_ps(self.packet.as_ps().abs_diff(self.flit.as_ps()))
    }

    /// Relative aggregate-bandwidth error (bandwidth = link bytes over
    /// makespan, so this is the reciprocal-space view of the same delta).
    pub fn bw_rel_err(&self) -> f64 {
        let bp = self.link_bytes as f64 / (self.packet.as_ps() as f64).max(1.0);
        let bf = self.link_bytes as f64 / (self.flit.as_ps() as f64).max(1.0);
        (bp - bf).abs() / bf.max(f64::MIN_POSITIVE)
    }

    /// Whether this case is inside the documented mixed bound.
    pub fn in_bound(&self) -> bool {
        self.abs_err() <= ABS_ERR_FLOOR
            || (self.rel_err() <= REL_ERR_BOUND && self.bw_rel_err() <= BW_REL_ERR_BOUND)
    }
}

/// Runs one case through both models.
pub fn run_case(case: &FidelityCase) -> CaseMeasurement {
    let ops = ops_for(case);
    let topo = Topology::new(case.kind, case.nodes);

    // Packet level: all operations issued at t = 0.
    let mut pnet = PacketNet::new(&topo, LinkParams::grs_25gbps());
    let mut packet = Ps::ZERO;
    for op in &ops {
        match *op {
            Op::Unicast { src, dst, flits } => {
                packet =
                    packet.max(pnet.send(Ps::ZERO, src, dst, flits as u64 * FLIT_BYTES as u64));
            }
            Op::Broadcast { src, flits } => {
                let arrivals = pnet.broadcast(Ps::ZERO, src, flits as u64 * FLIT_BYTES as u64);
                for (node, a) in arrivals.iter().enumerate() {
                    if node != src {
                        packet = packet.max(*a);
                    }
                }
            }
        }
    }

    // Flit level: same operations injected at cycle 0.
    let mut fnet = FlitNet::new(&topo, FlitNetConfig::for_topology(case.kind));
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Unicast { src, dst, flits } => {
                fnet.inject(i as u64, src, dst, flits);
            }
            Op::Broadcast { src, flits } => fnet.inject_broadcast(i as u64, src, flits),
        }
    }
    let deliveries = fnet.run_until_idle(50_000_000);
    let last = deliveries.iter().map(|d| d.cycle).max().unwrap_or(0);

    CaseMeasurement {
        packet,
        flit: fnet.time_of(last),
        link_bytes: pnet.link_bytes(),
    }
}

/// The randomized differential suite: every topology × scale × pattern ×
/// `seeds` seeds. With the default 5 seeds and scales `[4, 8, 16]` this is
/// 240 cases.
pub fn default_suite(seeds: u64) -> Vec<FidelityCase> {
    let kinds = [
        TopologyKind::Chain,
        TopologyKind::Ring,
        TopologyKind::Mesh,
        TopologyKind::Torus,
    ];
    let mut cases = Vec::new();
    for kind in kinds {
        for nodes in [4usize, 8, 16] {
            for pattern in Pattern::ALL {
                for seed in 0..seeds {
                    cases.push(FidelityCase {
                        kind,
                        nodes,
                        pattern,
                        seed,
                    });
                }
            }
        }
    }
    cases
}

/// Builds the `fidelity_diff` sweep: one point per case, each running both
/// models and recording the divergence stats. The artifact lands at
/// `<out>/fidelity_diff.jsonl`.
pub fn build_sweep(cases: &[FidelityCase]) -> Sweep {
    let mut sweep = Sweep::new("fidelity_diff");
    for case in cases {
        let case = *case;
        sweep.custom(
            case.label(),
            format!("{} n={} differential", case.kind, case.nodes),
            move || {
                let m = run_case(&case);
                let mut stats = StatSet::new();
                stats.set("fidelity.packet_ps", m.packet.as_ps() as f64);
                stats.set("fidelity.flit_ps", m.flit.as_ps() as f64);
                stats.set("fidelity.rel_err", m.rel_err());
                stats.set("fidelity.abs_err_ps", m.abs_err().as_ps() as f64);
                stats.set("fidelity.bw_rel_err", m.bw_rel_err());
                stats.set("fidelity.link_bytes", m.link_bytes as f64);
                stats.set("fidelity.in_bound", if m.in_bound() { 1.0 } else { 0.0 });
                RunResult {
                    elapsed: m.flit,
                    profiling: Ps::ZERO,
                    stats,
                    energy: EnergyBreakdown::default(),
                    status: dl_engine::RunStatus::Completed,
                }
            },
        );
    }
    sweep
}

/// A case outside the documented bound.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Sweep-point label of the offending case.
    pub label: String,
    /// Packet-level makespan, ns.
    pub packet_ns: f64,
    /// Flit-level makespan, ns.
    pub flit_ns: f64,
    /// Relative latency error.
    pub rel_err: f64,
    /// Relative bandwidth error.
    pub bw_rel_err: f64,
}

/// Suite verdict over the finished sweep records.
#[derive(Debug, Clone, Serialize)]
pub struct FidelityReport {
    /// Number of cases evaluated.
    pub cases: usize,
    /// Largest per-case relative latency error.
    pub max_rel_err: f64,
    /// Mean per-case relative latency error.
    pub mean_rel_err: f64,
    /// Cases outside the per-case bound.
    pub violations: Vec<Violation>,
    /// Whether the suite passes: no per-case violations and the mean
    /// under [`MEAN_REL_ERR_BOUND`].
    pub pass: bool,
}

/// Evaluates finished sweep records against the documented bounds.
pub fn evaluate(records: &[RunRecord]) -> FidelityReport {
    let mut violations = Vec::new();
    let mut max_rel_err = 0.0f64;
    let mut sum_rel_err = 0.0f64;
    for r in records {
        let g = |k: &str| r.stats.get(k).unwrap_or(0.0);
        let rel = g("fidelity.rel_err");
        max_rel_err = max_rel_err.max(rel);
        sum_rel_err += rel;
        if g("fidelity.in_bound") == 0.0 {
            violations.push(Violation {
                label: r.label.clone(),
                packet_ns: g("fidelity.packet_ps") / 1e3,
                flit_ns: g("fidelity.flit_ps") / 1e3,
                rel_err: rel,
                bw_rel_err: g("fidelity.bw_rel_err"),
            });
        }
    }
    let cases = records.len();
    let mean_rel_err = if cases == 0 {
        0.0
    } else {
        sum_rel_err / cases as f64
    };
    FidelityReport {
        cases,
        max_rel_err,
        mean_rel_err,
        pass: violations.is_empty() && mean_rel_err <= MEAN_REL_ERR_BOUND,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepOptions;

    #[test]
    fn op_generation_is_deterministic_and_in_range() {
        for kind in [
            TopologyKind::Chain,
            TopologyKind::Ring,
            TopologyKind::Mesh,
            TopologyKind::Torus,
        ] {
            for pattern in Pattern::ALL {
                let case = FidelityCase {
                    kind,
                    nodes: 8,
                    pattern,
                    seed: 3,
                };
                let a = ops_for(&case);
                let b = ops_for(&case);
                assert_eq!(a, b, "generation must be pure in the case");
                assert!(!a.is_empty());
                for op in a {
                    match op {
                        Op::Unicast { src, dst, flits } => {
                            assert!(src < 8 && dst < 8 && src != dst);
                            assert!((1..=MAX_FLITS).contains(&flits));
                        }
                        Op::Broadcast { src, flits } => {
                            assert!(src < 8);
                            assert!((1..=MAX_FLITS).contains(&flits));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn single_packet_cases_agree_within_floor() {
        // The simplest possible differential: one unicast, no contention.
        // Everything beyond the documented endpoint offset is a bug.
        for kind in [
            TopologyKind::Chain,
            TopologyKind::Ring,
            TopologyKind::Mesh,
            TopologyKind::Torus,
        ] {
            let topo = Topology::new(kind, 8);
            let mut pnet = PacketNet::new(&topo, LinkParams::grs_25gbps());
            let packet = pnet.send(Ps::ZERO, 0, 5, MAX_FLITS as u64 * FLIT_BYTES as u64);
            let mut fnet = FlitNet::new(&topo, FlitNetConfig::for_topology(kind));
            fnet.inject(0, 0, 5, MAX_FLITS);
            let done = fnet.run_until_idle(1_000_000);
            let flit = fnet.time_of(done[0].cycle);
            let m = CaseMeasurement {
                packet,
                flit,
                link_bytes: 0,
            };
            assert!(
                m.abs_err() <= ABS_ERR_FLOOR,
                "{kind}: packet {packet} vs flit {flit} (err {})",
                m.abs_err()
            );
        }
    }

    #[test]
    fn reduced_suite_is_in_bound() {
        // One seed over every topology / scale / pattern: 48 cases. The
        // full 240-case suite runs in the ablation_fidelity binary and CI.
        let cases = default_suite(1);
        assert_eq!(cases.len(), 48);
        let sweep = build_sweep(&cases);
        let out = sweep
            .run_with(&SweepOptions {
                quiet: true,
                ..SweepOptions::default()
            })
            .unwrap();
        let report = evaluate(&out.records);
        assert!(
            report.pass,
            "max_rel_err {:.3}, mean {:.3}, violations: {:#?}",
            report.max_rel_err, report.mean_rel_err, report.violations
        );
    }

    #[test]
    fn fidelity_sweep_is_thread_count_invariant() {
        // The jsonl artifact must be byte-identical for 1 and 4 workers.
        let dir = std::env::temp_dir().join(format!("dl-fidelity-det-{}", std::process::id()));
        let cases: Vec<FidelityCase> = default_suite(1)
            .into_iter()
            .filter(|c| c.nodes <= 8)
            .collect();
        let run = |threads: usize, sub: &str| {
            let out = build_sweep(&cases)
                .run_with(&SweepOptions {
                    threads: Some(threads),
                    out_dir: Some(dir.join(sub)),
                    quiet: false,
                    ..SweepOptions::default()
                })
                .unwrap();
            std::fs::read(out.path.expect("artifact written")).unwrap()
        };
        let serial = run(1, "t1");
        let parallel = run(4, "t4");
        assert!(!serial.is_empty());
        assert_eq!(
            serial, parallel,
            "fidelity artifact depends on thread count"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
