#![forbid(unsafe_code)]
//! Offline stand-in for the `serde` crate.
//!
//! The containers this workspace builds in have no crates.io access, so the
//! external `serde` dependency is replaced by this vendored implementation.
//! It keeps the names the workspace actually uses — the [`Serialize`] /
//! [`Deserialize`] traits, their derive macros, and the `#[serde(transparent)]`
//! / `#[serde(skip)]` attributes — but simplifies the data model: instead of
//! serde's visitor architecture, serialization goes through the JSON-shaped
//! [`Value`] tree directly (the workspace only ever serializes to JSON).
//!
//! Not supported (not used by this workspace): non-self-describing formats,
//! zero-copy deserialization, rename/flatten/tag attributes, type generics on
//! derived items (lifetime generics are supported).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error from any message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON number: integral values keep full integer precision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    U(u64),
    I(i64),
    F(f64),
    U128(u128),
}

impl Number {
    /// Wraps an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Number(N::U(v))
    }

    /// Wraps a signed integer (normalized to unsigned when non-negative).
    pub fn from_i64(v: i64) -> Self {
        if v >= 0 {
            Number(N::U(v as u64))
        } else {
            Number(N::I(v))
        }
    }

    /// Wraps a 128-bit unsigned integer.
    pub fn from_u128(v: u128) -> Self {
        if let Ok(small) = u64::try_from(v) {
            Number(N::U(small))
        } else {
            Number(N::U128(v))
        }
    }

    /// Wraps a float.
    pub fn from_f64(v: f64) -> Self {
        Number(N::F(v))
    }

    /// The value as `f64` (always succeeds; kept `Option` for serde_json
    /// signature compatibility).
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::U(v) => v as f64,
            N::I(v) => v as f64,
            N::F(v) => v,
            N::U128(v) => v as f64,
        })
    }

    /// The value as `u64`, if integral and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(v) => Some(v),
            N::I(v) => u64::try_from(v).ok(),
            N::U128(v) => u64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    /// The value as `i64`, if integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::U(v) => i64::try_from(v).ok(),
            N::I(v) => Some(v),
            N::U128(v) => i64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    /// The value as `u128`, if integral.
    pub fn as_u128(&self) -> Option<u128> {
        match self.0 {
            N::U(v) => Some(v as u128),
            N::I(v) => u128::try_from(v).ok(),
            N::U128(v) => Some(v),
            N::F(_) => None,
        }
    }

    /// Whether the number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::F(_))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::U(v) => write!(f, "{v}"),
            N::I(v) => write!(f, "{v}"),
            N::U128(v) => write!(f, "{v}"),
            N::F(v) => {
                if v.is_finite() {
                    // `{:?}` prints a round-trippable shortest form and keeps
                    // the ".0" suffix on integral floats, like serde_json.
                    write!(f, "{v:?}")
                } else {
                    // serde_json rejects non-finite floats; emit null so the
                    // output stays valid JSON.
                    write!(f, "null")
                }
            }
        }
    }
}

/// A JSON object with sorted, deterministic key order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: BTreeMap<String, Value>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts a key/value pair, returning any previous value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.entries.insert(key, value)
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Iterates keys in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.keys()
    }

    /// Iterates values in key order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.values()
    }

    /// Iterates entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// A JSON value tree — the serialization data model of this vendored serde.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object.
    Object(Map),
}

impl Value {
    /// The value as `f64` when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The value as `u64` when it is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64` when it is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str` when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array when it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object when it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects and missing keys),
    /// mirroring upstream `serde_json::Value::get`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                use fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            Value::String(s) => write_json_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        const STEP: usize = 2;
        match self {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + STEP);
                    item.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(map) if !map.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    push_indent(out, indent + STEP);
                    write_json_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + STEP);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    /// Compact JSON text of this value.
    pub fn to_json_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Pretty-printed JSON text of this value (two-space indent).
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push(' ');
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_json_compact())
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Builds the value tree for `self`.
    fn to_content(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `self` out of a value tree.
    fn from_content(v: &Value) -> Result<Self, Error>;

    /// The value to use when an object field is absent (`None` means the
    /// field is required). Overridden by `Option<T>`.
    fn missing() -> Option<Self> {
        None
    }
}

/// Looks up and deserializes an object field; used by derived impls.
pub fn field<T: Deserialize>(map: &Map, key: &str) -> Result<T, Error> {
    match map.get(key) {
        Some(v) => T::from_content(v),
        None => T::missing().ok_or_else(|| Error::msg(format!("missing field '{key}'"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_content(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_content(&self) -> Value {
        Value::Number(Number::from_u128(*self))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Value {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Value {
        match self {
            Some(v) => v.to_content(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Value {
        (**self).to_content()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_content());
        }
        Value::Object(m)
    }
}

impl<V: Serialize> Serialize for std::collections::HashMap<String, V> {
    fn to_content(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_content());
        }
        Value::Object(m)
    }
}

macro_rules! ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_content()),+])
            }
        }
    };
}
ser_tuple!(A: 0);
ser_tuple!(A: 0, B: 1);
ser_tuple!(A: 0, B: 1, C: 2);
ser_tuple!(A: 0, B: 1, C: 2, D: 3);
ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_content(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_content(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::msg("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::msg("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for u128 {
    fn from_content(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => n.as_u128().ok_or_else(|| Error::msg("expected integer")),
            _ => Err(Error::msg("expected integer")),
        }
    }
}

impl Deserialize for f32 {
    fn from_content(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected number"))
    }
}

impl Deserialize for f64 {
    fn from_content(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Deserialize for String {
    fn from_content(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Deserialize for char {
    fn from_content(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::msg("expected string"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }

    fn missing() -> Option<Self> {
        Some(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| Error::msg("expected array"))?;
        items.iter().map(T::from_content).collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(v: &Value) -> Result<Self, Error> {
        T::from_content(v).map(Box::new)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(v: &Value) -> Result<Self, Error> {
        let map = v.as_object().ok_or_else(|| Error::msg("expected object"))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for std::collections::HashMap<String, V> {
    fn from_content(v: &Value) -> Result<Self, Error> {
        let map = v.as_object().ok_or_else(|| Error::msg("expected object"))?;
        map.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
            .collect()
    }
}

macro_rules! de_tuple {
    ($len:expr; $($name:ident : $idx:tt),+) => {
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(v: &Value) -> Result<Self, Error> {
                let items = v.as_array().ok_or_else(|| Error::msg("expected array"))?;
                if items.len() != $len {
                    return Err(Error::msg("tuple length mismatch"));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    };
}
de_tuple!(1; A: 0);
de_tuple!(2; A: 0, B: 1);
de_tuple!(3; A: 0, B: 1, C: 2);
de_tuple!(4; A: 0, B: 1, C: 2, D: 3);

// ---------------------------------------------------------------------------
// JSON text parsing (used by the vendored serde_json)
// ---------------------------------------------------------------------------

/// Parses JSON text into a [`Value`].
pub fn parse_json(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.bump()?;
        if got != b {
            return Err(Error::msg(format!(
                "expected '{}', found '{}' at byte {}",
                b as char,
                got as char,
                self.pos - 1
            )));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), Error> {
        for &b in word.as_bytes() {
            self.expect(b)?;
        }
        Ok(())
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self
            .peek()
            .ok_or_else(|| Error::msg("unexpected end of input"))?
        {
            b'n' => {
                self.literal("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.literal("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.literal("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::msg(format!(
                "unexpected character '{}'",
                other as char
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b']' => return Ok(Value::Array(items)),
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or ']', found '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump()? {
                b',' => continue,
                b'}' => return Ok(Value::Object(map)),
                other => {
                    return Err(Error::msg(format!(
                        "expected ',' or '}}', found '{}'",
                        other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.bump()?;
            match b {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let first = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&first) {
                            // Surrogate pair.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let second = self.hex4()?;
                            0x10000 + ((first - 0xD800) << 10) + (second.wrapping_sub(0xDC00))
                        } else {
                            first
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| Error::msg("invalid \\u escape"))?,
                        );
                    }
                    other => {
                        return Err(Error::msg(format!("invalid escape '\\{}'", other as char)))
                    }
                },
                _ => {
                    // Re-decode UTF-8 from the raw bytes.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    for _ in 1..len {
                        self.bump()?;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let b = self.bump()?;
            let digit = (b as char)
                .to_digit(16)
                .ok_or_else(|| Error::msg("invalid hex digit"))?;
            code = code * 16 + digit;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        let number = if is_float {
            Number::from_f64(text.parse().map_err(|_| Error::msg("invalid float"))?)
        } else if let Ok(u) = text.parse::<u64>() {
            Number::from_u64(u)
        } else if let Ok(i) = text.parse::<i64>() {
            Number::from_i64(i)
        } else if let Ok(u) = text.parse::<u128>() {
            Number::from_u128(u)
        } else {
            Number::from_f64(text.parse().map_err(|_| Error::msg("invalid number"))?)
        };
        Ok(Value::Number(number))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Compatibility module mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    pub use crate::Deserialize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Number(Number::from_i64(-3)),
        ] {
            let text = v.to_json_compact();
            assert_eq!(parse_json(&text).unwrap(), v);
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Value::String("a\"b\\c\nd\te\u{1}f — π".to_string());
        let text = v.to_json_compact();
        assert_eq!(parse_json(&text).unwrap(), v);
    }

    #[test]
    fn float_formatting_keeps_type() {
        assert_eq!(Number::from_f64(2.0).to_string(), "2.0");
        assert_eq!(Number::from_f64(2.5).to_string(), "2.5");
        assert_eq!(Number::from_f64(f64::NAN).to_string(), "null");
    }

    #[test]
    fn nested_structure_roundtrip() {
        let text = r#"{"a": [1, 2.5, "x"], "b": {"c": null, "d": false}}"#;
        let v = parse_json(text).unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["b"]["d"].as_bool(), Some(false));
        assert_eq!(parse_json(&v.to_json_pretty()).unwrap(), v);
        assert_eq!(parse_json(&v.to_json_compact()).unwrap(), v);
    }

    #[test]
    fn collections_serialize() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 1.5f64);
        let v = m.to_content();
        assert_eq!(v["k"].as_f64(), Some(1.5));
        let back: BTreeMap<String, f64> = Deserialize::from_content(&v).unwrap();
        assert_eq!(back, m);

        let pairs = vec![(1u64, 2.5f64), (3, 4.5)];
        let v = pairs.to_content();
        assert_eq!(v[1][0].as_u64(), Some(3));
    }

    #[test]
    fn option_fields_default_to_none() {
        let m = Map::new();
        let got: Option<u32> = field(&m, "absent").unwrap();
        assert_eq!(got, None);
        let missing: Result<u32, _> = field(&m, "absent");
        assert!(missing.is_err());
    }

    #[test]
    fn u64_precision_is_preserved() {
        let big = u64::MAX - 1;
        let text = Value::Number(Number::from_u64(big)).to_json_compact();
        assert_eq!(parse_json(&text).unwrap().as_u64(), Some(big));
    }
}
