#![forbid(unsafe_code)]
//! Offline stand-in for the `criterion` crate.
//!
//! Provides the builder/group/bencher surface and the `criterion_group!` /
//! `criterion_main!` macros so `cargo bench` compiles and runs, with a
//! simple mean-of-samples timer instead of criterion's statistical engine.
//! No HTML reports, no outlier analysis — one line per benchmark:
//! `name  mean <t>  (<n> samples)`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export so call sites written against `criterion::black_box` work.
pub use std::hint::black_box;

/// Benchmark runner settings (a small subset of criterion's builder).
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the target number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Caps the total time spent timing one benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Caps the warm-up time before timing starts.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.clone(),
            _parent: self,
        }
    }
}

/// A named set of benchmarks sharing (optionally overridden) settings.
pub struct BenchmarkGroup<'c> {
    name: String,
    settings: Criterion,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.settings.sample_size = n;
        self
    }

    /// Overrides the measurement-time cap for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Runs a benchmark inside the group (reported as `group/id`).
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        let mut settings = self.settings.clone();
        run_one(&label, &mut settings, &mut f);
        self
    }

    /// Closes the group (kept for API compatibility; no-op here).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; times the routine under test.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample, until the sample target or the
    /// measurement-time cap is reached.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let run_start = Instant::now();
        while self.samples.len() < self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if run_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

fn run_one(label: &str, settings: &mut Criterion, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size: settings.sample_size,
        measurement_time: settings.measurement_time,
        warm_up_time: settings.warm_up_time,
        samples: Vec::new(),
    };
    f(&mut bencher);
    let n = bencher.samples.len();
    if n == 0 {
        println!("{label:<40}  (no samples recorded)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n as u32;
    println!(
        "{label:<40}  mean {:>12}  ({n} samples)",
        fmt_duration(mean)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    let mut out = String::new();
    if ns < 1_000 {
        let _ = write!(out, "{ns} ns");
    } else if ns < 1_000_000 {
        let _ = write!(out, "{:.2} us", ns as f64 / 1e3);
    } else if ns < 1_000_000_000 {
        let _ = write!(out, "{:.2} ms", ns as f64 / 1e6);
    } else {
        let _ = write!(out, "{:.2} s", ns as f64 / 1e9);
    }
    out
}

/// Bundles benchmark functions into a named group runner. Supports both the
/// positional form and the `name = .. ; config = .. ; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main()` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group! {
        name = group_block_form;
        config = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        targets = tiny
    }

    criterion_group!(group_positional, tiny);

    #[test]
    fn groups_run() {
        group_block_form();
        group_positional();
    }

    #[test]
    fn group_overrides_apply() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function(format!("case_{}", 1), |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }
}
