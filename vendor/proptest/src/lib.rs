#![forbid(unsafe_code)]
//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range / `any` / `Just` / tuple / collection strategies, the
//! `prop_oneof!` union, and the `proptest!` test runner with
//! `prop_assert*` / `prop_assume!`. Failing cases are reported with their
//! generated inputs' Debug output where available, but there is **no
//! shrinking** — failures print the raw case only.
//!
//! Case generation is deterministic: every test function draws from a
//! ChaCha8 stream seeded from the `PROPTEST_SEED` environment variable
//! (default 0) so CI runs are reproducible.

pub mod test_runner {
    use rand::SeedableRng;

    /// Runner configuration (cases only — no fork/timeout/shrink knobs).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's preconditions were not met (`prop_assume!`); the
        /// runner draws a replacement case.
        Reject(String),
        /// An assertion failed; the runner panics with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed-assertion error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
        /// A rejected-precondition error.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic source of randomness for strategies.
    pub struct TestRng(rand_chacha::ChaCha8Rng);

    impl TestRng {
        /// An RNG seeded from `PROPTEST_SEED` (default 0).
        pub fn deterministic() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0u64);
            TestRng(rand_chacha::ChaCha8Rng::seed_from_u64(seed))
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.0)
        }

        /// Uniform sample in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            rand::Rng::gen_range(&mut self.0, 0..bound)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy (used by `prop_oneof!`).
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! range_strategy_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as i64) as $t
                }
            }
        )*};
    }
    range_strategy_int!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Draws a uniformly random value over the full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    /// Strategy for an [`Arbitrary`] type.
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`, e.g. `any::<u64>()`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Namespaced strategy modules (`prop::collection::vec`).
pub mod prop {
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::{Range, RangeInclusive};

        /// Inclusive bounds on a generated collection's length.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            min: usize,
            max: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { min: n, max: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    min: r.start,
                    max: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    min: *r.start(),
                    max: *r.end(),
                }
            }
        }

        /// Strategy producing `Vec`s of `element` values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max - self.size.min) as u64;
                let len = self.size.min
                    + if span == 0 {
                        0
                    } else {
                        rng.below(span + 1) as usize
                    };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `Vec` strategy with a length in `size` (a `usize`, `a..b`, or
        /// `a..=b`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(binding in strategy, ...) { ... }` items.
#[macro_export]
macro_rules! proptest {
    // Internal: no more functions.
    (@funcs $cfg:expr;) => {};
    // Internal: one function, then recurse on the rest.
    (@funcs $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases.saturating_mul(100).max(10_000),
                            "{}: too many prop_assume! rejections ({} accepted)",
                            stringify!($name),
                            accepted
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed in {} (after {} passing cases): {}",
                            stringify!($name),
                            accepted,
                            msg
                        );
                    }
                }
            }
        }
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    // Entry with a config attribute.
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs $cfg; $($rest)*);
    };
    // Entry without a config attribute.
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "assertion failed: both sides equal {:?}", l);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "{}: both sides equal {:?}", format!($($fmt)+), l);
    }};
}

/// Discards the current case (drawing a replacement) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 1u8..=255, z in -5i32..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y >= 1);
            prop_assert!((-5..5).contains(&z));
        }

        #[test]
        fn assume_filters(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u32), Just(2), Just(3)].prop_map(|x| x * 10)) {
            prop_assert!(v == 10 || v == 20 || v == 30);
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(any::<u8>(), 2..=5), w in prop::collection::vec(any::<u8>(), 4)) {
            prop_assert!((2..=5).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
            prop_assert_ne!(v.len(), 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_tuples((a, b) in (0u8..10, 10u8..20)) {
            prop_assert!(a < 10 && (10..20).contains(&b));
        }
    }
}
