#![forbid(unsafe_code)]
//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 stream generator.
//!
//! Implements the ChaCha block function (IETF variant, 32-bit counter +
//! 96-bit nonce layout collapsed to a 64-bit counter as rand_chacha does)
//! with 8 rounds, exposed through the vendored `rand` traits. Output bytes
//! are the little-endian keystream words in order, like the real crate.
//! Note: the exact stream is not guaranteed to match upstream `rand_chacha`
//! bit-for-bit; determinism within this workspace is what matters.

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 rounds, keyed by a 256-bit seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; BLOCK_WORDS],
    /// Next unread word index in `buf`; `BLOCK_WORDS` means buffer exhausted.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; BLOCK_WORDS];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;

        let mut working = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of (column round, diagonal round).
            quarter(&mut working, 0, 4, 8, 12);
            quarter(&mut working, 1, 5, 9, 13);
            quarter(&mut working, 2, 6, 10, 14);
            quarter(&mut working, 3, 7, 11, 15);
            quarter(&mut working, 0, 5, 10, 15);
            quarter(&mut working, 1, 6, 11, 12);
            quarter(&mut working, 2, 7, 8, 13);
            quarter(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buf.iter_mut().zip(working.iter().zip(state.iter())) {
            *out = w.wrapping_add(*s);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.index];
        self.index += 1;
        w
    }

    /// Current 64-bit block counter (next block to be generated).
    pub fn get_word_pos(&self) -> u128 {
        (self.counter as u128) * BLOCK_WORDS as u128 + self.index as u128
    }
}

#[inline(always)]
fn quarter(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_word().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(ChaCha8Rng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        for chunk in buf.chunks_exact(4) {
            assert_eq!(
                u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]),
                b.next_u32()
            );
        }
    }

    #[test]
    fn keystream_spread() {
        // Sanity: output is not trivially degenerate.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut ones = 0u32;
        for _ in 0..64 {
            ones += rng.next_u64().count_ones();
        }
        // 4096 bits total; expect roughly half set.
        assert!((1600..2500).contains(&ones), "ones = {ones}");
    }
}
