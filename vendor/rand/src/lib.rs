#![forbid(unsafe_code)]
//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! Provides the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng`], and [`Rng::gen_range`] over integer and float ranges —
//! with unbiased uniform sampling. Generators live in downstream crates
//! (`rand_chacha` vendors ChaCha8).

use std::fmt;
use std::ops::Range;

/// Error type for fallible RNG operations (infallible in this stand-in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed, expanded with SplitMix64
    /// (the same expansion the real rand 0.8 uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> T;
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (sample_u64_below(rng, span) as $t)
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(sample_u64_below(rng, span) as i64)) as $t
            }
        }
    )*};
}
range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut (impl RngCore + ?Sized)) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

/// Unbiased uniform sample in `[0, bound)` by rejection (Lemire-style
/// widening multiply).
fn sample_u64_below(rng: &mut (impl RngCore + ?Sized), bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        let low = m as u64;
        if low >= bound || low >= (bound.wrapping_neg() % bound) {
            return (m >> 64) as u64;
        }
    }
}

/// Convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(0.0..1.0)`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniformly random bool.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Step(u64);
    impl RngCore for Step {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Step(1);
        for _ in 0..2000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn all_residues_reachable() {
        let mut rng = Step(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
