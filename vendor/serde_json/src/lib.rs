#![forbid(unsafe_code)]
//! Offline stand-in for the `serde_json` crate.
//!
//! A thin facade over the vendored `serde` crate, whose data model is already
//! a JSON [`Value`] tree: this crate adds the `to_string` / `to_string_pretty`
//! / `from_str` / `from_slice` entry points and re-exports the value types
//! under their `serde_json` names.

pub use serde::{Map, Number, Value};

/// Serialization/deserialization error (same type as the vendored serde's).
pub type Error = serde::Error;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_content().to_json_compact())
}

/// Serializes `value` as pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(value.to_content().to_json_pretty())
}

/// Serializes `value` into a generic [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_content())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    T::from_content(&serde::parse_json(text)?)
}

/// Parses JSON bytes into any deserializable type.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let text = std::str::from_utf8(bytes).map_err(|_| Error::msg("input is not UTF-8"))?;
    from_str(text)
}

/// Reconstructs a typed value from a generic [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T> {
    T::from_content(&value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_text() {
        let v: Value = from_str(r#"{"x": [1, 2, 3], "y": "z"}"#).unwrap();
        assert_eq!(v["x"][2].as_u64(), Some(3));
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Value = from_str(r#"{"a": {"b": [true, null]}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_entry_points() {
        let pairs = vec![(1u64, 0.5f64), (2, 1.5)];
        let text = to_string(&pairs).unwrap();
        assert_eq!(text, "[[1,0.5],[2,1.5]]");
        let back: Vec<(u64, f64)> = from_str(&text).unwrap();
        assert_eq!(back, pairs);
    }
}
