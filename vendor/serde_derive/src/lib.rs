#![forbid(unsafe_code)]
//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! vendored `serde` crate's [`Value`]-tree data model, parsing the item with a
//! hand-rolled token walker (the real implementation's `syn`/`quote` stack is
//! unavailable offline).
//!
//! Supported shapes — everything this workspace derives on:
//! * structs with named fields (plus `#[serde(transparent)]` and field-level
//!   `#[serde(skip)]`),
//! * tuple structs (newtypes serialize as their inner value, like serde),
//! * enums with unit, tuple, and struct variants (externally tagged),
//! * lifetime generics on `Serialize` items.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (vendored data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (vendored data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

struct Field {
    name: String,
    skip: bool,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    generics: String,
    transparent: bool,
    data: Data,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Returns true if the attribute group body is `serde(...)` containing `word`.
fn serde_attr_contains(group_tokens: &[TokenTree], word: &str) -> bool {
    match group_tokens {
        [TokenTree::Ident(head), TokenTree::Group(args)] if head.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == word)),
        _ => false,
    }
}

/// Consumes leading `#[...]` attributes starting at `*i`; reports whether any
/// was `#[serde(<word>)]` for each word queried.
fn eat_attrs(tokens: &[TokenTree], i: &mut usize, words: &[&str]) -> Vec<bool> {
    let mut found = vec![false; words.len()];
    while *i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[*i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        for (w, flag) in words.iter().zip(found.iter_mut()) {
            if serde_attr_contains(&inner, w) {
                *flag = true;
            }
        }
        *i += 2;
    }
    found
}

fn eat_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens[*i..], [TokenTree::Ident(id), ..] if id.to_string() == "pub") {
        *i += 1;
        if matches!(&tokens[*i..], [TokenTree::Group(g), ..] if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match &tokens[*i] {
        TokenTree::Ident(id) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other}"),
    }
}

/// Consumes `<...>` generics if present, returning their source text.
fn eat_generics(tokens: &[TokenTree], i: &mut usize) -> String {
    if !matches!(&tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return String::new();
    }
    let mut depth = 0usize;
    let mut text = String::new();
    while *i < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*i] {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                _ => {}
            }
        }
        text.push_str(&tokens[*i].to_string());
        *i += 1;
        if depth == 0 {
            break;
        }
    }
    text
}

/// Parses `name: Type,` sequences inside a brace group.
fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let flags = eat_attrs(tokens, &mut i, &["skip", "skip_serializing"]);
        let skip = flags.iter().any(|&f| f);
        if i >= tokens.len() {
            break;
        }
        eat_visibility(tokens, &mut i);
        let name = expect_ident(tokens, &mut i);
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected ':' after field '{name}', found {other}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth zero.
        let mut depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts the comma-separated types of a tuple struct/variant body.
fn count_tuple_fields(tokens: &[TokenTree]) -> usize {
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    count
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        eat_attrs(tokens, &mut i, &[]);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(tokens, &mut i);
        let mut fields = VariantFields::Unit;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            fields = match g.delimiter() {
                Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantFields::Tuple(count_tuple_fields(&inner))
                }
                Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantFields::Named(parse_named_fields(&inner))
                }
                _ => panic!("serde_derive: unexpected variant delimiter"),
            };
            i += 1;
        }
        // Skip an optional `= discriminant` and the trailing comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let flags = eat_attrs(&tokens, &mut i, &["transparent"]);
    let transparent = flags[0];
    eat_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let generics = eat_generics(&tokens, &mut i);
    let data = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Data::NamedStruct(parse_named_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Data::TupleStruct(count_tuple_fields(&inner))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::UnitStruct,
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Data::Enum(parse_variants(&inner))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for '{other}' items"),
    };
    Item {
        name,
        generics,
        transparent,
        data,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let generics = &item.generics;
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if item.transparent {
                let f = active
                    .first()
                    .unwrap_or_else(|| panic!("transparent struct {name} needs a field"));
                format!("::serde::Serialize::to_content(&self.{})", f.name)
            } else {
                let mut s = String::from("let mut map = ::serde::Map::new();\n");
                for f in &active {
                    s.push_str(&format!(
                        "map.insert(\"{0}\".to_string(), ::serde::Serialize::to_content(&self.{0}));\n",
                        f.name
                    ));
                }
                s.push_str("::serde::Value::Object(map)");
                s
            }
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Data::UnitStruct => "::serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_content(f0)".to_string()
                        } else {
                            let items: Vec<String> = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(\"{vn}\".to_string(), {inner});\n\
                             ::serde::Value::Object(map)\n}},\n",
                            binds = binders.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let binders: Vec<&str> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| f.name.as_str())
                            .collect();
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for b in &binders {
                            inner.push_str(&format!(
                                "inner.insert(\"{b}\".to_string(), ::serde::Serialize::to_content({b}));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} .. }} => {{\n{inner}\
                             let mut map = ::serde::Map::new();\n\
                             map.insert(\"{vn}\".to_string(), ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(map)\n}},\n",
                            binds = binders.iter().map(|b| format!("{b}, ")).collect::<String>()
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl {generics} ::serde::Serialize for {name} {generics} {{\n\
         fn to_content(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    assert!(
        item.generics.is_empty(),
        "serde_derive (vendored): derive(Deserialize) does not support generics on {name}"
    );
    let body = match &item.data {
        Data::NamedStruct(fields) => {
            let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let skipped: Vec<&Field> = fields.iter().filter(|f| f.skip).collect();
            let defaults: String = skipped
                .iter()
                .map(|f| format!("{}: ::std::default::Default::default(),\n", f.name))
                .collect();
            if item.transparent {
                let f = active
                    .first()
                    .unwrap_or_else(|| panic!("transparent struct {name} needs a field"));
                format!(
                    "::std::result::Result::Ok({name} {{\n\
                     {fname}: ::serde::Deserialize::from_content(v)?,\n{defaults}}})",
                    fname = f.name
                )
            } else {
                let mut inits = String::new();
                for f in &active {
                    inits.push_str(&format!("{0}: ::serde::field(map, \"{0}\")?,\n", f.name));
                }
                format!(
                    "let map = v.as_object().ok_or_else(|| ::serde::Error::msg(\
                     \"expected object for {name}\"))?;\n\
                     ::std::result::Result::Ok({name} {{\n{inits}{defaults}}})"
                )
            }
        }
        Data::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_content(v)?))")
        }
        Data::TupleStruct(n) => {
            let fields: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::msg(\
                 \"expected array for {name}\"))?;\n\
                 if items.len() != {n} {{\n\
                 return ::std::result::Result::Err(::serde::Error::msg(\
                 \"wrong tuple length for {name}\"));\n}}\n\
                 ::std::result::Result::Ok({name}({fields}))",
                fields = fields.join(", ")
            )
        }
        Data::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    VariantFields::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantFields::Tuple(1) => data_arms.push_str(&format!(
                        "if let ::std::option::Option::Some(inner) = map.get(\"{vn}\") {{\n\
                         return ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_content(inner)?));\n}}\n"
                    )),
                    VariantFields::Tuple(n) => {
                        let fields: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_content(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "if let ::std::option::Option::Some(inner) = map.get(\"{vn}\") {{\n\
                             let items = inner.as_array().ok_or_else(|| ::serde::Error::msg(\
                             \"expected array for {name}::{vn}\"))?;\n\
                             if items.len() != {n} {{\n\
                             return ::std::result::Result::Err(::serde::Error::msg(\
                             \"wrong tuple length for {name}::{vn}\"));\n}}\n\
                             return ::std::result::Result::Ok({name}::{vn}({fields}));\n}}\n",
                            fields = fields.join(", ")
                        ));
                    }
                    VariantFields::Named(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::std::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{0}: ::serde::field(fields, \"{0}\")?,\n",
                                    f.name
                                ));
                            }
                        }
                        data_arms.push_str(&format!(
                            "if let ::std::option::Option::Some(inner) = map.get(\"{vn}\") {{\n\
                             let fields = inner.as_object().ok_or_else(|| ::serde::Error::msg(\
                             \"expected object for {name}::{vn}\"))?;\n\
                             return ::std::result::Result::Ok({name}::{vn} {{\n{inits}}});\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(s) => match s.as_str() {{\n{unit_arms}\
                 other => ::std::result::Result::Err(::serde::Error::msg(\
                 format!(\"unknown {name} variant '{{other}}'\"))),\n}},\n\
                 ::serde::Value::Object(map) => {{\n{data_arms}\
                 ::std::result::Result::Err(::serde::Error::msg(\
                 \"unknown {name} variant object\"))\n}},\n\
                 _ => ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected string or object for {name}\")),\n}}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
