#![forbid(unsafe_code)]
//! # dimm-link-repro
//!
//! Facade crate of the DIMM-Link (HPCA 2023) reproduction workspace: it
//! re-exports every member crate and hosts the repository-level integration
//! tests (`tests/`) and runnable examples (`examples/`).
//!
//! Start with [`dimm_link`] (the system model and experiment runner) and
//! [`dl_workloads`] (the benchmark workloads); the substrates
//! ([`dl_engine`], [`dl_mem`], [`dl_noc`], [`dl_protocol`],
//! [`dl_placement`]) are usable standalone.
//!
//! ```
//! use dimm_link_repro::dimm_link::config::{IdcKind, SystemConfig};
//! use dimm_link_repro::dimm_link::runner::simulate;
//! use dimm_link_repro::dl_workloads::{WorkloadKind, WorkloadParams};
//!
//! let params = WorkloadParams { scale: 8, ..WorkloadParams::small(4) };
//! let wl = WorkloadKind::Bfs.build(&params);
//! let run = simulate(&wl, &SystemConfig::nmp(4, 2).with_idc(IdcKind::DimmLink));
//! assert!(run.elapsed > dimm_link_repro::dl_engine::Ps::ZERO);
//! ```

pub use dimm_link;
pub use dl_engine;
pub use dl_mem;
pub use dl_noc;
pub use dl_placement;
pub use dl_protocol;
pub use dl_workloads;
