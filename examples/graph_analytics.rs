//! Graph analytics across system sizes — a miniature of the paper's Fig. 10
//! study for one workload, showing how each IDC mechanism scales as DIMMs
//! are added.
//!
//! ```text
//! cargo run --release --example graph_analytics [-- <scale>]
//! ```

use dimm_link::config::{IdcKind, SystemConfig};
use dimm_link::runner::{host_baseline, simulate};
use dl_workloads::{WorkloadKind, WorkloadParams};

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let kind = WorkloadKind::Sssp;
    println!("SSSP scaling study (R-MAT scale {scale}, LiveJournal substitute)\n");

    let host = host_baseline(kind, scale, 42);
    println!("16-core host CPU: {}\n", host.elapsed);
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>14}",
        "system", "MCN", "AIM", "DIMM-Link", "DL idc-stall"
    );

    for (name, cfg) in SystemConfig::p2p_sweep() {
        let params = WorkloadParams {
            dimms: cfg.dimms,
            scale,
            ..WorkloadParams::small(cfg.dimms)
        };
        let wl = kind.build(&params);
        let speedup = |idc: IdcKind| {
            let r = simulate(&wl, &cfg.clone().with_idc(idc));
            (host.elapsed.as_ps() as f64 / r.elapsed.as_ps() as f64, r)
        };
        let (mcn, _) = speedup(IdcKind::CpuForwarding);
        let (aim, _) = speedup(IdcKind::DedicatedBus);
        let (dl, dl_run) = speedup(IdcKind::DimmLink);
        println!(
            "{name:>8} {mcn:>11.2}x {aim:>11.2}x {dl:>11.2}x {:>13.1}%",
            dl_run.idc_stall_frac() * 100.0
        );
    }
    println!(
        "\nExpected shape (paper Fig. 10): DIMM-Link leads and keeps scaling; \
         AIM's shared bus saturates; MCN is bounded by host forwarding."
    );
}
