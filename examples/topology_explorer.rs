//! Topology and bandwidth exploration (paper Fig. 16/17 and Section VI):
//! what would DIMM-Link gain from ring/mesh/torus bridges or faster SerDes?
//!
//! ```text
//! cargo run --release --example topology_explorer
//! ```

use dimm_link::config::{IdcKind, SystemConfig};
use dimm_link::runner::simulate;
use dl_noc::{Topology, TopologyKind};
use dl_workloads::{WorkloadKind, WorkloadParams};

fn main() {
    let scale = 11;
    let params = WorkloadParams {
        scale,
        ..WorkloadParams::small(16)
    };
    let wl = WorkloadKind::Pagerank.build(&params);

    println!("DL-group topology exploration (PR, 16D-8C)\n");
    println!(
        "{:>8} {:>10} {:>12} {:>10}",
        "topology", "diameter", "links/group", "speedup"
    );
    let mut base = 0.0;
    for kind in [
        TopologyKind::Chain,
        TopologyKind::Ring,
        TopologyKind::Mesh,
        TopologyKind::Torus,
    ] {
        let topo = Topology::new(kind, 8); // one group of 8 DIMMs
        let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
        cfg.topology = kind;
        let t = simulate(&wl, &cfg).elapsed.as_ps() as f64;
        if base == 0.0 {
            base = t;
        }
        println!(
            "{:>8} {:>10} {:>12} {:>9.2}x",
            kind.to_string(),
            topo.diameter(),
            topo.link_count(),
            base / t
        );
    }

    println!("\nLink-bandwidth sweep on the chain (paper Fig. 16):");
    println!("{:>10} {:>10}", "bandwidth", "speedup");
    let mut base = 0.0;
    for gb in [4u64, 8, 16, 25, 32, 64] {
        let mut cfg = SystemConfig::nmp(16, 8).with_idc(IdcKind::DimmLink);
        cfg.link = cfg.link.with_bandwidth(gb * 1_000_000_000);
        let t = simulate(&wl, &cfg).elapsed.as_ps() as f64;
        if base == 0.0 {
            base = t;
        }
        println!("{:>7} GB/s {:>9.2}x", gb, base / t);
    }
    println!(
        "\nThe paper ships the chain: richer topologies help (lower diameter) \
         but need long-reach SerDes or multi-port bridges (Section VI)."
    );
}
