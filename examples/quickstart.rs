//! Quickstart: build a workload, run it on a DIMM-Link NMP system, and
//! compare against the host-CPU baseline and the MCN (CPU-forwarding) IDC
//! mechanism.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dimm_link::config::{IdcKind, SystemConfig};
use dimm_link::runner::{host_baseline, simulate, simulate_optimized};
use dl_workloads::{WorkloadKind, WorkloadParams};

fn main() {
    // A PageRank workload over 16 DIMMs (4 NMP cores each), R-MAT scale 11.
    let params = WorkloadParams {
        scale: 11,
        ..WorkloadParams::small(16)
    };
    let workload = WorkloadKind::Pagerank.build(&params);
    println!(
        "workload: {} — {} threads, {} ops, {:.1}% remote accesses",
        workload.name(),
        workload.traces().len(),
        workload.total_ops(),
        workload.remote_fraction() * 100.0
    );

    // The fixed 16-core host CPU of the paper's Fig. 10.
    let host = host_baseline(WorkloadKind::Pagerank, params.scale, params.seed);
    println!("\n16-core host CPU        : {}", host.elapsed);

    // The same work on the NMP system under three IDC mechanisms.
    let base = SystemConfig::nmp(16, 8);
    for idc in [
        IdcKind::CpuForwarding,
        IdcKind::DedicatedBus,
        IdcKind::DimmLink,
    ] {
        let r = simulate(&workload, &base.clone().with_idc(idc));
        println!(
            "NMP + {:<18}: {} ({:.2}x vs host, {:.0}% cycles stalled on IDC)",
            idc.to_string(),
            r.elapsed,
            host.elapsed.as_ps() as f64 / r.elapsed.as_ps() as f64,
            r.idc_stall_frac() * 100.0
        );
    }

    // DIMM-Link with Algorithm 1's distance-aware task mapping.
    let opt = simulate_optimized(&workload, &base.with_idc(IdcKind::DimmLink));
    println!(
        "NMP + DIMM-Link-opt     : {} ({:.2}x vs host; profiling cost {})",
        opt.elapsed,
        host.elapsed.as_ps() as f64 / opt.elapsed.as_ps() as f64,
        opt.profiling
    );

    let (local, link, fwd, _) = opt.traffic_breakdown();
    println!(
        "\ntraffic breakdown (DL-opt): {:.0}% local DRAM, {:.0}% DIMM-Link, {:.0}% CPU-forwarded",
        local * 100.0,
        link * 100.0,
        fwd * 100.0
    );
    println!("energy: {:.3} mJ total", opt.energy.total() * 1e3);
}
