//! Broadcast-style communication: PageRank in its explicit-broadcast
//! formulation (paper Fig. 12) next to K-Means, a broadcast-*unfriendly*
//! task — showing why DIMM-Link's support for both P2P and broadcast
//! matters.
//!
//! ```text
//! cargo run --release --example broadcast_kmeans
//! ```

use dimm_link::config::{IdcKind, SystemConfig};
use dimm_link::runner::simulate;
use dl_workloads::{WorkloadKind, WorkloadParams};

fn run_row(label: &str, wl: &dl_workloads::Workload) {
    let base = SystemConfig::nmp(16, 8);
    let mcn = simulate(wl, &base.clone().with_idc(IdcKind::CpuForwarding));
    let abc = simulate(wl, &base.clone().with_idc(IdcKind::AbcDimm));
    let dl = simulate(wl, &base.clone().with_idc(IdcKind::DimmLink));
    let b = mcn.elapsed.as_ps() as f64;
    println!(
        "{label:>28}: MCN 1.00x | ABC-DIMM {:>5.2}x | DIMM-Link {:>5.2}x",
        b / abc.elapsed.as_ps() as f64,
        b / dl.elapsed.as_ps() as f64,
    );
}

fn main() {
    let scale = 11;
    println!("Broadcast-friendly vs broadcast-unfriendly workloads at 16D-8C\n");

    // PageRank, point-to-point formulation.
    let p2p = WorkloadParams {
        scale,
        ..WorkloadParams::small(16)
    };
    run_row("PR (P2P formulation)", &WorkloadKind::Pagerank.build(&p2p));

    // PageRank, explicit-broadcast formulation (replicas refreshed by
    // Broadcast ops) — where ABC-DIMM's channel broadcast shines and
    // DIMM-Link's tree broadcast shines brighter.
    let bc = WorkloadParams {
        scale,
        broadcast: true,
        ..WorkloadParams::small(16)
    };
    run_row("PR-BC (broadcast)", &WorkloadKind::Pagerank.build(&bc));

    // K-Means: scattered point-to-point snapshots + atomics. Broadcasting
    // doesn't help it (the paper's "broadcast-unfriendly" class).
    run_row(
        "KM (broadcast-unfriendly)",
        &WorkloadKind::KMeans.build(&p2p),
    );

    println!(
        "\nABC-DIMM only accelerates the broadcast-formulated workload; \
         DIMM-Link accelerates both modes (paper Table I, Fig. 12)."
    );
}
